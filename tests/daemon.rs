//! Process-level end-to-end tests for DP-as-a-service: the `easyhps
//! serve` daemon and its client subcommands as *real OS processes*
//! joined only by sockets.
//!
//! These are the acceptance drills for the daemon:
//!
//! * N concurrent `easyhps submit --wait` child processes with duplicate
//!   jobs all complete bit-identical to the sequential kernel, and the
//!   daemon's `serve_cache_hits`/`serve_jobs_coalesced` counters prove
//!   the duplicates collapsed into one computation;
//! * `kill -9` on the daemon mid-queue, then a restart on the same state
//!   directory: every job whose acceptance was acknowledged completes,
//!   bit-identical to its sequential reference.

#![cfg(unix)]

use easyhps::dp::DpProblem;
use easyhps::dp::EditDistance;
use easyhps::net::crc32c;
use easyhps::TileRegion;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_easyhps");

/// The `matrix-crc:` value the daemon must report for an editdist job on
/// `(a, b)`: CRC of the sequential kernel's full-matrix encoding.
fn expected_crc(a: &str, b: &str) -> String {
    let m = EditDistance::new(a.as_bytes().to_vec(), b.as_bytes().to_vec()).solve_sequential();
    let d = m.dims();
    format!(
        "{:#010x}",
        crc32c(&m.encode_region(TileRegion::new(0, d.rows, 0, d.cols)))
    )
}

/// A spawned `easyhps serve` whose `serving:` line has been consumed.
/// Killed on drop so a failing test never leaks the process.
struct DaemonProc {
    child: Child,
    addr: String,
}

impl DaemonProc {
    /// SIGKILL the daemon — the crash being drilled. Dropping afterwards
    /// is harmless (killing a reaped child is a no-op).
    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL daemon");
        self.child.wait().expect("reap daemon");
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(state_dir: &str, extra: &[&str]) -> DaemonProc {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--slaves",
            "2",
            "--state-dir",
            state_dir,
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read serving line");
    assert!(n > 0, "daemon exited before printing a serving line");
    let addr = line
        .strip_prefix("serving: ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_string();
    DaemonProc { child, addr }
}

/// Run a client subcommand to completion, asserting success; returns
/// stdout.
fn client(args: &[&str]) -> String {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("run client command");
    assert!(
        out.status.success(),
        "`easyhps {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn submit_wait(addr: &str, tenant: &str, a: &str, b: &str) -> Child {
    Command::new(BIN)
        .args([
            "submit",
            "--connect",
            addr,
            "--tenant",
            tenant,
            "--wait",
            "editdist",
            a,
            b,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn submit")
}

fn line_value<'a>(output: &'a str, prefix: &str) -> &'a str {
    output
        .lines()
        .find_map(|l| l.strip_prefix(prefix))
        .unwrap_or_else(|| panic!("no `{prefix}` line in {output:?}"))
        .trim()
}

/// Value of a plain counter in the `stats` exposition.
fn stat(stats: &str, name: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .map(|v| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

/// Six concurrent submissions from six child processes — four of them
/// the identical job — all complete with the sequential kernel's exact
/// CRC, and the counters show the four duplicates cost one computation.
#[test]
fn concurrent_duplicate_submissions_collapse_into_one_computation() {
    let dir = std::env::temp_dir().join(format!("easyhps-serve-e2e-co-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = spawn_daemon(&dir.display().to_string(), &[]);

    let dup = ("the shared submission text", "every tenant wants this one");
    let solo = ("a different job entirely", "computed on its own");
    let want_dup = expected_crc(dup.0, dup.1);
    let want_solo = expected_crc(solo.0, solo.1);

    let mut children = Vec::new();
    for tenant in ["alice", "bob", "carol", "dave"] {
        children.push((
            want_dup.clone(),
            submit_wait(&daemon.addr, tenant, dup.0, dup.1),
        ));
    }
    children.push((
        want_solo.clone(),
        submit_wait(&daemon.addr, "alice", solo.0, solo.1),
    ));
    children.push((
        expected_crc(solo.1, solo.0),
        submit_wait(&daemon.addr, "bob", solo.1, solo.0),
    ));

    for (want, child) in children {
        let out = child.wait_with_output().expect("reap submit");
        assert!(
            out.status.success(),
            "submit failed:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert_eq!(
            line_value(&stdout, "matrix-crc: "),
            want,
            "daemon result must match the sequential reference"
        );
    }

    let stats = client(&["stats", "--connect", &daemon.addr]);
    let deduped = stat(&stats, "serve_cache_hits") + stat(&stats, "serve_jobs_coalesced");
    assert_eq!(
        deduped, 3,
        "4 identical submissions must cost exactly 1 computation:\n{stats}"
    );
    assert_eq!(stat(&stats, "serve_jobs_submitted"), 6);
    assert_eq!(stat(&stats, "serve_jobs_failed"), 0);

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL the daemon mid-queue, restart it on the same state directory:
/// every acknowledged job — including a long one likely caught mid-run
/// and a duplicate pair — completes bit-identical to its sequential
/// reference, without recomputing the duplicate.
#[test]
fn kill9_daemon_mid_queue_restart_completes_bit_identically() {
    let dir = std::env::temp_dir().join(format!("easyhps-serve-e2e-k9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    // Small checkpoint cadence so even the long job's partial progress
    // survives the kill.
    let mut daemon = spawn_daemon(&dir_s, &["--checkpoint-every", "4"]);

    // A long fleet-path job first (likely mid-run when the kill lands),
    // then small distinct jobs, then a duplicate pair — all accepted
    // (durably, by protocol: the daemon persists before acknowledging).
    let long_a = "x".repeat(300);
    let long_b = "y".repeat(290);
    let mut jobs: Vec<(u64, String)> = Vec::new();
    let mut accept = |tenant: &str, a: &str, b: &str, extra: &[&str]| {
        let mut args = vec![
            "submit",
            "--connect",
            &daemon.addr,
            "--tenant",
            tenant,
            "editdist",
            a,
            b,
        ];
        args.extend_from_slice(extra);
        let out = client(&args);
        let id: u64 = line_value(&out, "accepted: job ")
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .expect("job id");
        jobs.push((id, expected_crc(a, b)));
    };
    accept("alice", &long_a, &long_b, &["--pps", "8", "--tps", "4"]);
    accept(
        "alice",
        "first small job",
        "queued behind the long one",
        &[],
    );
    accept("bob", "second small job", "also waiting its turn", &[]);
    accept("bob", "the duplicated job", "accepted twice", &[]);
    accept("carol", "the duplicated job", "accepted twice", &[]);

    // kill -9, mid-queue: the long job is at best part-done, the small
    // ones still waiting.
    daemon.kill9();

    // Restart on the same state directory (fresh port).
    let daemon2 = spawn_daemon(&dir_s, &["--checkpoint-every", "4"]);
    let stats = client(&["stats", "--connect", &daemon2.addr]);
    assert!(
        stat(&stats, "serve_jobs_recovered") >= 1,
        "restart must recover the unfinished jobs:\n{stats}"
    );

    // Every acknowledged job completes with its exact reference CRC.
    let deadline = Instant::now() + Duration::from_secs(120);
    for (id, want) in &jobs {
        loop {
            let out = client(&["status", "--connect", &daemon2.addr, &id.to_string()]);
            if let Some(rest) = out.trim().split("matrix-crc ").nth(1) {
                let crc = rest.trim_end_matches(')').trim();
                assert_eq!(crc, want, "job {id} must recover bit-identical");
                break;
            }
            assert!(
                !out.contains("failed"),
                "job {id} failed after restart: {out}"
            );
            assert!(
                Instant::now() < deadline,
                "job {id} not done after restart: {out}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    drop(daemon2);
    let _ = std::fs::remove_dir_all(&dir);
}
