//! Fast-scale checks that every figure's *qualitative shape* holds — the
//! same claims EXPERIMENTS.md verifies at full paper scale.

use easyhps::sim::{
    bcw_ratio_series, node_comparison_series, scaling_series, sequential_ns, simulate,
    speedup_series, CostModel, Experiment, SimWorkload,
};

fn swgg() -> SimWorkload {
    SimWorkload::swgg(2_000, 100, 10)
}

fn nussinov() -> SimWorkload {
    SimWorkload::nussinov(2_000, 100, 10)
}

/// Figs. 13/14: elapsed time falls as cores grow, for every node count and
/// both workloads.
#[test]
fn fig13_14_elapsed_falls_with_cores() {
    for w in [swgg(), nussinov()] {
        for series in scaling_series(&w, CostModel::tianhe1a()) {
            assert!(series.points.len() >= 10, "{}: full ct sweep", series.label);
            let first = series.points.first().unwrap().1;
            let last = series.points.last().unwrap().1;
            assert!(
                last < first * 0.5,
                "{} ({}): expected at least 2x improvement over the ct sweep ({first} -> {last})",
                w.name,
                series.label
            );
        }
    }
}

/// Fig. 15: with a small core budget fewer nodes win (more computing cores
/// survive the scheduling tax); with a large budget more nodes win (more
/// process-level parallelism).
#[test]
fn fig15_grouping_crossover_direction() {
    let w = swgg();
    let cost = CostModel::tianhe1a();
    let series = node_comparison_series(&w, cost, &[14, 20, 40, 46]);
    let y = |nodes: usize, cores: f64| series[nodes - 2].y_at(cores);
    // Small budget: fewer nodes win — at 14 cores, 3 nodes beat 5 (too many
    // scheduling cores eat the budget); at 20 cores, 4 nodes beat 5 (the
    // paper's first observation).
    let (b3, b5) = (y(3, 14.0).unwrap(), y(5, 14.0).unwrap());
    assert!(b3 < b5, "at 14 cores: {b3} vs {b5}");
    let (c4, c5) = (y(4, 20.0).unwrap(), y(5, 20.0).unwrap());
    assert!(c4 < c5, "at 20 cores: {c4} vs {c5}");
    // Large budget: more nodes win — at 40 cores, 5 nodes beat 4 (the
    // paper's second observation; 4 nodes saturate the 11-thread cap).
    let (d4, d5) = (y(4, 40.0).unwrap(), y(5, 40.0).unwrap());
    assert!(d5 < d4, "at 40 cores: {d5} vs {d4}");
}

/// Fig. 16: speedup with the best grouping keeps growing through 50 cores
/// and reaches a substantial fraction of the core count.
#[test]
fn fig16_speedup_magnitude_and_growth() {
    let cost = CostModel::tianhe1a();
    for (w, min_speedup) in [(swgg(), 14.0), (nussinov(), 10.0)] {
        let (_, speedup) = speedup_series(&w, cost, 53);
        let s50 = speedup.y_at(50.0).unwrap();
        assert!(
            s50 > min_speedup,
            "{}: speedup at 50 cores {s50} below {min_speedup}",
            w.name
        );
        let s20 = speedup.y_at(20.0).unwrap();
        assert!(s50 > s20, "{}: speedup still growing past 20 cores", w.name);
    }
}

/// Fig. 17: the BCW/EasyHPS ratio is above 1.0 for at least 90% of points,
/// for both workloads.
#[test]
fn fig17_dynamic_beats_static() {
    let cost = CostModel::tianhe1a();
    for w in [swgg(), nussinov()] {
        let all: Vec<f64> = bcw_ratio_series(&w, cost)
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        let above = all.iter().filter(|&&r| r >= 1.0).count();
        assert!(
            above * 10 >= all.len() * 9,
            "{}: {above}/{} ratios above 1.0",
            w.name,
            all.len()
        );
        assert!(
            all.iter().all(|&r| r > 0.9),
            "{}: no catastrophic dips",
            w.name
        );
    }
}

/// The simulator is exactly deterministic — a prerequisite for regenerating
/// figures byte-identically.
#[test]
fn figures_are_deterministic() {
    let w = nussinov();
    let e = Experiment::new(4, 24);
    let cost = CostModel::tianhe1a();
    let a = simulate(&w, &e.config(cost));
    let b = simulate(&w, &e.config(cost));
    assert_eq!(a, b);
}

/// Parallel runs always beat the sequential baseline at these scales.
#[test]
fn parallel_always_beats_sequential() {
    let cost = CostModel::tianhe1a();
    for w in [swgg(), nussinov()] {
        let seq = sequential_ns(&w, &cost);
        for x in [2u32, 3, 4, 5] {
            let e = Experiment::from_ct(x, 4);
            let r = simulate(&w, &e.config(cost));
            assert!(
                r.makespan_ns < seq,
                "{} {}: {} >= {}",
                w.name,
                e.label(),
                r.makespan_ns,
                seq
            );
        }
    }
}
