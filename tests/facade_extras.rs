//! Facade-level tests for the beyond-the-paper features: EasyPDP mode,
//! DAG analysis, trace rendering, and the checkpoint workflow through the
//! re-exported API.

use easyhps::dp::sequence::{random_sequence, Alphabet};
use easyhps::dp::{DpProblem, Lcs, Nussinov};
use easyhps::runtime::{Checkpoint, EasyPdp, MemoryMode};
use easyhps::EasyHps;

#[test]
fn easypdp_through_the_facade() {
    let a = random_sequence(Alphabet::Dna, 30, 80);
    let b = random_sequence(Alphabet::Dna, 34, 81);
    let p = Lcs::new(a.clone(), b.clone());
    let reference = p.solve_sequential();
    let out = EasyPdp::new(Lcs::new(a, b))
        .partition((6, 7))
        .threads(3)
        .run()
        .unwrap();
    assert_eq!(out.matrix, reference);
    assert!(out.busy_ns > 0 || out.subtasks > 0);
}

#[test]
fn dag_analysis_guides_partition_choice() {
    let rna = random_sequence(Alphabet::Rna, 100, 82);
    let p = Nussinov::new(rna);
    // Coarse partition: little parallelism. Fine partition: much more.
    let coarse = easyhps::DagDataDrivenModel::builder(p.pattern())
        .process_partition_size(easyhps::GridDims::square(50))
        .build()
        .master_dag()
        .analyze()
        .unwrap();
    let fine = easyhps::DagDataDrivenModel::builder(p.pattern())
        .process_partition_size(easyhps::GridDims::square(10))
        .build()
        .master_dag()
        .analyze()
        .unwrap();
    assert!(fine.max_width > coarse.max_width);
    assert!(fine.avg_parallelism > coarse.avg_parallelism);
    assert_eq!(coarse.vertices, 3); // 2x2 triangle
    assert_eq!(fine.vertices, 55); // 10x10 triangle
}

#[test]
fn trace_gantt_is_renderable_from_report() {
    let a = random_sequence(Alphabet::Dna, 30, 83);
    let b = random_sequence(Alphabet::Dna, 30, 84);
    let out = EasyHps::new(Lcs::new(a, b))
        .process_partition((8, 8))
        .thread_partition((4, 4))
        .slaves(2)
        .threads_per_slave(1)
        .run()
        .unwrap();
    let g = out.report.trace.gantt(50);
    assert!(g.contains("slave0"));
    assert!(g.lines().count() >= 3);
}

#[test]
fn checkpoint_workflow_with_sparse_memory() {
    // Sparse node storage and checkpoint/restart compose.
    let rna = random_sequence(Alphabet::Rna, 80, 85);
    let reference = Nussinov::new(rna.clone()).solve_sequential();
    let pattern = Nussinov::new(rna.clone()).pattern();

    let partial = EasyHps::new(Nussinov::new(rna.clone()))
        .process_partition((20, 20))
        .thread_partition((5, 5))
        .slaves(2)
        .threads_per_slave(2)
        .memory_mode(MemoryMode::Sparse)
        .tile_budget(4)
        .run()
        .unwrap();
    let cp = partial.checkpoint.expect("stopped early");
    let cp = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();

    let full = EasyHps::new(Nussinov::new(rna))
        .process_partition((20, 20))
        .thread_partition((5, 5))
        .slaves(2)
        .threads_per_slave(2)
        .memory_mode(MemoryMode::Sparse)
        .resume_from(cp)
        .run()
        .unwrap();
    assert!(full.checkpoint.is_none());
    for pos in reference.dims().iter() {
        if pattern.contains(pos) {
            assert_eq!(full.matrix.at(pos), reference.at(pos), "cell {pos}");
        }
    }
}
