//! Cross-crate integration tests: the facade API, runtime/simulator
//! agreement, and fault paths that cross the net/runtime boundary.

use easyhps::dp::sequence::{parse_fasta, random_sequence, to_fasta, Alphabet};
use easyhps::dp::{DpProblem, Nussinov, SmithWatermanGeneralGap};
use easyhps::net::FaultPlan;
use easyhps::sim::{simulate, SimConfig, SimWorkload};
use easyhps::{EasyHps, ScheduleMode};
use std::time::Duration;

#[test]
fn facade_reexports_compose() {
    // Build a model through the facade types end to end.
    let model = easyhps::DagDataDrivenModel::from_library(
        easyhps::PatternKind::Wavefront2D,
        easyhps::GridDims::square(30),
        easyhps::GridDims::square(10),
        easyhps::GridDims::square(5),
    );
    let dag: easyhps::TaskDag = model.master_dag();
    assert_eq!(dag.len(), 9);
    let mut count = 0;
    easyhps::DagParser::drain_sequential(&dag, |_| count += 1);
    assert_eq!(count, 9);
}

#[test]
fn fasta_to_alignment_pipeline() {
    // FASTA in, alignment out — the workflow a bioinformatics user runs.
    let records = vec![
        ("query".to_string(), random_sequence(Alphabet::Dna, 50, 1)),
        ("subject".to_string(), random_sequence(Alphabet::Dna, 55, 2)),
    ];
    let fasta = to_fasta(&records);
    let parsed = parse_fasta(&fasta);
    assert_eq!(parsed.len(), 2);

    let problem = SmithWatermanGeneralGap::dna(parsed[0].1.clone(), parsed[1].1.clone());
    let reference = problem.solve_sequential();
    let out = EasyHps::new(SmithWatermanGeneralGap::dna(
        parsed[0].1.clone(),
        parsed[1].1.clone(),
    ))
    .process_partition((12, 12))
    .thread_partition((4, 4))
    .slaves(2)
    .threads_per_slave(2)
    .run()
    .unwrap();
    assert_eq!(out.matrix, reference);
}

#[test]
fn runtime_and_simulator_agree_on_task_counts() {
    // The real runtime and the simulator must execute the same number of
    // tiles for the same model, and the simulator's per-tile work must sum
    // to the problem's total work.
    let len = 120u32;
    let (pps, tps) = (30u32, 10u32);
    let rna = random_sequence(Alphabet::Rna, len as usize, 7);
    let out = EasyHps::new(Nussinov::new(rna))
        .process_partition((pps, pps))
        .thread_partition((tps, tps))
        .slaves(3)
        .threads_per_slave(2)
        .run()
        .unwrap();

    let workload = SimWorkload::nussinov(len, pps, tps);
    let sim = simulate(&workload, &SimConfig::uniform(3, 2));

    assert_eq!(out.report.master.completed, sim.tiles);
    // Sub-sub-task counts agree too: both partition each tile the same way.
    let mut sim_subtasks = 0u64;
    let dag = workload.model.master_dag();
    for (_, v) in dag.iter() {
        sim_subtasks += workload.model.slave_dag(v.pos).len() as u64;
    }
    assert_eq!(out.report.total_subtasks(), sim_subtasks);
}

#[test]
fn lossy_slave_is_survived() {
    // Slave 1 silently drops 60% of its outgoing messages (results and
    // idle signals vanish). The master's timeout-based fault tolerance
    // must route around it and still finish exactly.
    let a = random_sequence(Alphabet::Dna, 40, 3);
    let b = random_sequence(Alphabet::Dna, 40, 4);
    let problem = easyhps::dp::EditDistance::new(a, b);
    let reference = problem.solve_sequential();
    let out = EasyHps::new(problem)
        .process_partition((10, 10))
        .thread_partition((5, 5))
        .slaves(3)
        .threads_per_slave(1)
        .task_timeout(Duration::from_millis(250))
        .inject_fault(1, FaultPlan::lossy(0.6, 99))
        .run()
        .expect("lossy slave must not sink the run");
    assert_eq!(out.matrix, reference);
}

#[test]
fn mixed_modes_between_levels() {
    // Dynamic across nodes, static block-cyclic across threads (and vice
    // versa) — both must stay correct.
    let rna = random_sequence(Alphabet::Rna, 60, 5);
    let reference = Nussinov::new(rna.clone()).solve_sequential();
    for (pm, tm) in [
        (
            ScheduleMode::Dynamic,
            ScheduleMode::BlockCyclic { block: 1 },
        ),
        (
            ScheduleMode::BlockCyclic { block: 2 },
            ScheduleMode::Dynamic,
        ),
        (
            ScheduleMode::ColumnWavefront,
            ScheduleMode::BlockCyclic { block: 2 },
        ),
    ] {
        let p = Nussinov::new(rna.clone());
        let pattern = p.pattern();
        let out = EasyHps::new(p)
            .process_partition((12, 12))
            .thread_partition((4, 4))
            .slaves(2)
            .threads_per_slave(3)
            .process_mode(pm)
            .thread_mode(tm)
            .run()
            .unwrap();
        for pos in reference.dims().iter() {
            if pattern.contains(pos) {
                assert_eq!(
                    out.matrix.at(pos),
                    reference.at(pos),
                    "{pm:?}/{tm:?} cell {pos}"
                );
            }
        }
    }
}

#[test]
fn deployment_core_accounting_is_exposed() {
    let p = easyhps::dp::EditDistance::new(b"ab".to_vec(), b"cd".to_vec());
    let e = EasyHps::new(p).slaves(4).threads_per_slave(11);
    // X = 5 nodes, ct = 11: the paper's Experiment_5_53.
    assert_eq!(e.deployment().total_cores(), 53);
}
