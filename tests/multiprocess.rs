//! Multi-process end-to-end tests: the `easyhps master` / `easyhps
//! slave` CLI as *real OS processes* joined only by sockets.
//!
//! These are the acceptance drills for the socket transport:
//!
//! * a master plus two slave processes over TCP and over a Unix-domain
//!   socket produce a matrix bit-identical (by CRC) to the sequential
//!   kernel run in this process;
//! * `kill -9` on a slave mid-run: the master excludes it, redispatches,
//!   and still completes with the right matrix;
//! * `kill -9` on the *master* mid-run with durable checkpointing on:
//!   restarting with `--resume` (and fresh slaves) recovers bit-identical.

#![cfg(unix)]

use easyhps::dp::sequence::{random_sequence, Alphabet};
use easyhps::dp::{DpProblem, EditDistance};
use easyhps::net::crc32c;
use easyhps::TileRegion;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_easyhps");

fn seqs() -> (Vec<u8>, Vec<u8>) {
    (
        random_sequence(Alphabet::Dna, 200, 7),
        random_sequence(Alphabet::Dna, 203, 8),
    )
}

/// The `matrix-crc:` value the master must print: CRC of the sequential
/// kernel's full-matrix encoding (the runtime is exact, so any correct
/// run — in-process or multi-process — matches this).
fn expected_crc() -> String {
    let (a, b) = seqs();
    let m = EditDistance::new(a, b).solve_sequential();
    let d = m.dims();
    format!(
        "{:#010x}",
        crc32c(&m.encode_region(TileRegion::new(0, d.rows, 0, d.cols)))
    )
}

/// A spawned `easyhps master` whose `listening:` line has been consumed.
struct MasterProc {
    child: Child,
    addr: String,
    reader: BufReader<std::process::ChildStdout>,
}

fn spawn_master(extra: &[&str]) -> MasterProc {
    let (a, b) = seqs();
    let mut cmd = Command::new(BIN);
    cmd.args([
        "master",
        "--slaves",
        "2",
        "--pps",
        "12",
        "--tps",
        "4",
        "--task-timeout-ms",
        "1000",
    ])
    .args(extra)
    .args(["editdist"])
    .arg(String::from_utf8(a).unwrap())
    .arg(String::from_utf8(b).unwrap())
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn master");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    // A resuming master prints its restore summary first; scan to the
    // listening line.
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read listening line");
        assert!(n > 0, "master exited before printing a listening line");
        if let Some(addr) = line.strip_prefix("listening: ") {
            break addr.trim().to_string();
        }
    };
    MasterProc {
        child,
        addr,
        reader,
    }
}

impl MasterProc {
    /// Wait for exit and return (success, remaining stdout).
    fn finish(mut self) -> (bool, String) {
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest).unwrap();
        let status = self.child.wait().unwrap();
        (status.success(), rest)
    }
}

fn spawn_slave(addr: &str, rank: u32) -> Child {
    Command::new(BIN)
        .args(["slave", "--connect", addr, "--rank", &rank.to_string()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn slave")
}

/// Reap `child` within `timeout`, SIGKILLing on expiry. Returns whether
/// it exited successfully on its own.
fn reap(mut child: Child, timeout: Duration) -> bool {
    let t0 = Instant::now();
    loop {
        match child.try_wait().unwrap() {
            Some(status) => return status.success(),
            None if t0.elapsed() > timeout => {
                let _ = child.kill();
                let _ = child.wait();
                return false;
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn crc_line(output: &str) -> &str {
    output
        .lines()
        .find_map(|l| l.strip_prefix("matrix-crc: "))
        .unwrap_or_else(|| panic!("no matrix-crc line in {output:?}"))
        .trim()
}

fn run_cluster(listen: &str) -> String {
    let master = spawn_master(&["--listen", listen]);
    let s1 = spawn_slave(&master.addr, 1);
    let s2 = spawn_slave(&master.addr, 2);
    let (ok, out) = master.finish();
    assert!(ok, "master failed:\n{out}");
    assert!(reap(s1, Duration::from_secs(30)), "slave 1 failed");
    assert!(reap(s2, Duration::from_secs(30)), "slave 2 failed");
    crc_line(&out).to_string()
}

#[test]
fn tcp_cluster_is_bit_identical_to_sequential() {
    assert_eq!(run_cluster("127.0.0.1:0"), expected_crc());
}

#[test]
fn uds_cluster_is_bit_identical_to_sequential() {
    let path = std::env::temp_dir().join(format!("easyhps-e2e-{}.sock", std::process::id()));
    let listen = format!("uds:{}", path.display());
    assert_eq!(run_cluster(&listen), expected_crc());
}

/// SIGKILL one slave mid-run: the master must exclude it, redispatch its
/// tiles to the survivor, and still produce the exact matrix.
#[test]
fn kill9_slave_mid_run_completes_exactly() {
    let master = spawn_master(&[
        "--listen",
        "127.0.0.1:0",
        "--heartbeat-ms",
        "20",
        "--heartbeat-timeout-ms",
        "150",
        "--task-timeout-ms",
        "400",
    ]);
    let mut s1 = spawn_slave(&master.addr, 1);
    let s2 = spawn_slave(&master.addr, 2);
    // Let the run get going, then hard-kill slave 1. If the run happened
    // to finish first the kill is a no-op and this degenerates to the
    // clean two-slave case — still a valid pass.
    std::thread::sleep(Duration::from_millis(120));
    let _ = s1.kill();
    let _ = s1.wait();
    let (ok, out) = master.finish();
    assert!(ok, "master failed after slave kill:\n{out}");
    assert_eq!(crc_line(&out), expected_crc());
    assert!(reap(s2, Duration::from_secs(30)), "surviving slave failed");
}

/// The `fleet:` line an elastic master prints, parsed into
/// (rejoins, stale-epoch fences, socket reconnects).
fn fleet_line(output: &str) -> (u64, u64, u64) {
    let line = output
        .lines()
        .find_map(|l| l.strip_prefix("fleet: "))
        .unwrap_or_else(|| panic!("no fleet line in {output:?}"));
    let nums: Vec<u64> = line
        .split_whitespace()
        .filter_map(|w| w.parse().ok())
        .collect();
    assert_eq!(nums.len(), 3, "malformed fleet line: {line:?}");
    (nums[0], nums[1], nums[2])
}

fn signal(child: &Child, sig: &str) {
    let ok = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(ok, "kill {sig} failed");
}

/// The elastic-membership drill (DESIGN.md §17), over real processes and
/// TCP: SIGKILL a slave mid-run and start a replacement process on the
/// same rank. The master (running with a reconnect window) must admit
/// the new incarnation as a rejoin — epoch bumped, in-flight work rolled
/// back and redistributed — and the run must still finish bit-identical
/// with no slave permanently excluded from the result.
#[test]
fn killed_slave_replaced_on_same_rank_rejoins_and_run_is_exact() {
    // Tiny tiles keep the run latency-bound (~1 s even in release), so
    // the kill below reliably lands mid-run rather than after the last
    // DONE. Duplicate flags are last-wins, overriding spawn_master's.
    let master = spawn_master(&[
        "--listen",
        "127.0.0.1:0",
        "--pps",
        "2",
        "--tps",
        "1",
        "--reconnect-ms",
        "10000",
        "--heartbeat-ms",
        "20",
        "--heartbeat-timeout-ms",
        "300",
        "--task-timeout-ms",
        "600",
    ]);
    let mut s1 = spawn_slave(&master.addr, 1);
    let s2 = spawn_slave(&master.addr, 2);
    // Let the first incarnation take work, then hard-kill it and start
    // its replacement immediately: a fresh session on the same rank.
    std::thread::sleep(Duration::from_millis(80));
    let _ = s1.kill();
    let _ = s1.wait();
    let s1b = spawn_slave(&master.addr, 1);
    let (ok, out) = master.finish();
    assert!(ok, "master failed across the rejoin:\n{out}");
    assert_eq!(crc_line(&out), expected_crc());
    let (rejoins, _fenced, _reconnects) = fleet_line(&out);
    assert!(
        rejoins >= 1,
        "the replacement incarnation must register as a rejoin:\n{out}"
    );
    // The replacement served to the end of the run; the survivor too.
    assert!(
        reap(s1b, Duration::from_secs(30)),
        "replacement slave failed"
    );
    assert!(reap(s2, Duration::from_secs(30)), "surviving slave failed");
}

/// The same drill over a Unix-domain socket: the membership protocol is
/// transport-agnostic.
#[test]
fn uds_killed_slave_replaced_on_same_rank_rejoins() {
    let path = std::env::temp_dir().join(format!("easyhps-e2e-rejoin-{}.sock", std::process::id()));
    let listen = format!("uds:{}", path.display());
    let master = spawn_master(&[
        "--listen",
        &listen,
        "--pps",
        "2",
        "--tps",
        "1",
        "--reconnect-ms",
        "10000",
        "--heartbeat-ms",
        "20",
        "--heartbeat-timeout-ms",
        "300",
        "--task-timeout-ms",
        "600",
    ]);
    let mut s1 = spawn_slave(&master.addr, 1);
    let s2 = spawn_slave(&master.addr, 2);
    std::thread::sleep(Duration::from_millis(80));
    let _ = s1.kill();
    let _ = s1.wait();
    let s1b = spawn_slave(&master.addr, 1);
    let (ok, out) = master.finish();
    assert!(ok, "master failed across the rejoin:\n{out}");
    assert_eq!(crc_line(&out), expected_crc());
    let (rejoins, _, _) = fleet_line(&out);
    assert!(rejoins >= 1, "no rejoin observed:\n{out}");
    assert!(
        reap(s1b, Duration::from_secs(30)),
        "replacement slave failed"
    );
    assert!(reap(s2, Duration::from_secs(30)), "surviving slave failed");
}

/// SIGSTOP/SIGCONT re-admission: freeze a slave past the heartbeat
/// timeout (excluded as silent), thaw it (heard again, re-admitted), and
/// require the bit-identical matrix. The frozen incarnation never died,
/// so this exercises the exclusion/re-admission path rather than the
/// epoch fence — any DONE it wakes up holding is either still current or
/// a plain stale completion, and both are idempotent.
#[test]
fn sigstopped_slave_is_readmitted_and_run_is_exact() {
    let master = spawn_master(&[
        "--listen",
        "127.0.0.1:0",
        "--pps",
        "2",
        "--tps",
        "1",
        "--heartbeat-ms",
        "20",
        "--heartbeat-timeout-ms",
        "200",
        "--task-timeout-ms",
        "400",
    ]);
    let s1 = spawn_slave(&master.addr, 1);
    let s2 = spawn_slave(&master.addr, 2);
    std::thread::sleep(Duration::from_millis(100));
    signal(&s1, "-STOP");
    // Well past heartbeat-timeout: the master judges rank 1 silent.
    std::thread::sleep(Duration::from_millis(600));
    signal(&s1, "-CONT");
    let (ok, out) = master.finish();
    assert!(ok, "master failed across the freeze:\n{out}");
    assert_eq!(crc_line(&out), expected_crc());
    assert!(reap(s1, Duration::from_secs(30)), "thawed slave failed");
    assert!(reap(s2, Duration::from_secs(30)), "surviving slave failed");
}

/// SIGKILL the master mid-run with durable checkpointing, then restart
/// with `--resume` and fresh slaves: recovery must be bit-identical.
#[test]
fn kill9_master_then_resume_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("easyhps-e2e-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    // Phase 1: checkpoint every accepted tile, kill the master mid-run.
    let mut master = spawn_master(&[
        "--listen",
        "127.0.0.1:0",
        "--checkpoint-dir",
        &dir_s,
        "--checkpoint-every",
        "1",
    ]);
    let s1 = spawn_slave(&master.addr, 1);
    let s2 = spawn_slave(&master.addr, 2);
    std::thread::sleep(Duration::from_millis(150));
    let _ = master.child.kill();
    let _ = master.child.wait();
    // Orphaned slaves notice the dead master (failed heartbeat sends)
    // and exit on their own; don't require success, just exit.
    reap(s1, Duration::from_secs(30));
    reap(s2, Duration::from_secs(30));

    // Phase 2: recover from the directory alone.
    let master = spawn_master(&[
        "--listen",
        "127.0.0.1:0",
        "--checkpoint-dir",
        &dir_s,
        "--resume",
    ]);
    let s1 = spawn_slave(&master.addr, 1);
    let s2 = spawn_slave(&master.addr, 2);
    let (ok, out) = master.finish();
    assert!(ok, "resumed master failed:\n{out}");
    assert_eq!(crc_line(&out), expected_crc());
    assert!(reap(s1, Duration::from_secs(30)), "slave 1 failed");
    assert!(reap(s2, Duration::from_secs(30)), "slave 2 failed");
    let _ = std::fs::remove_dir_all(&dir);
}
