//! End-to-end tests of the `easyhps` CLI binary.

use std::process::Command;

fn easyhps(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_easyhps"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn editdist_prints_the_distance() {
    let (ok, stdout, _) = easyhps(&["editdist", "kitten", "sitting"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "3");
}

#[test]
fn align_on_fasta_file() {
    let dir = std::env::temp_dir().join(format!("easyhps-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pair.fa");
    std::fs::write(&path, ">q\nACGTACGTTTACGG\n>s\nTTACGTACGTTTAC\n").unwrap();
    let (ok, stdout, stderr) = easyhps(&["align", path.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("score"), "{stdout}");
    assert!(stdout.contains('|'), "midline rendered");

    // Global mode also works.
    let (ok, stdout, _) = easyhps(&[
        "align",
        path.to_str().unwrap(),
        "--global",
        "--gap",
        "linear:2",
    ]);
    assert!(ok);
    assert!(stdout.contains("score"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fold_prints_dot_bracket() {
    let dir = std::env::temp_dir().join(format!("easyhps-cli-fold-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rna.fa");
    std::fs::write(&path, ">hairpin\nGGGGAAAACCCC\n").unwrap();
    let (ok, stdout, stderr) = easyhps(&["fold", path.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("base pairs"), "{stdout}");
    assert!(stdout.contains('('), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn align_exports_trace_and_metrics() {
    let dir = std::env::temp_dir().join(format!("easyhps-cli-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fasta = dir.join("pair.fa");
    std::fs::write(&fasta, ">q\nACGTACGTTTACGGAGTC\n>s\nTTACGTACGTTTACGATG\n").unwrap();
    let trace = dir.join("trace.json");
    let (ok, stdout, stderr) = easyhps(&[
        "align",
        fasta.to_str().unwrap(),
        "--metrics",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("score"), "{stdout}");
    assert!(
        stdout.contains("master_tiles_completed"),
        "--metrics prints the exposition: {stdout}"
    );
    assert!(
        stdout.contains("# TYPE master_tile_latency_ns summary"),
        "{stdout}"
    );

    let text = std::fs::read_to_string(&trace).expect("--trace-out writes the file");
    let summary = easyhps::obs::validate_chrome_trace(&text).expect("valid Chrome trace");
    assert!(summary.pids >= 3, "master + 2 slaves in the trace");
    assert!(summary.count("dispatch") >= 1);
    assert!(summary.count("compute") >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_reports_and_gantt() {
    let dir = std::env::temp_dir().join(format!("easyhps-cli-sim-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("sim-trace.json");
    let (ok, stdout, stderr) = easyhps(&[
        "sim",
        "--workload",
        "nussinov",
        "--len",
        "600",
        "--nodes",
        "3",
        "--cores",
        "12",
        "--gantt",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("speedup"), "{stdout}");
    assert!(stdout.contains("node0"), "gantt lanes rendered");

    // The simulator's virtual-time schedule exports as a Chrome trace too.
    let text = std::fs::read_to_string(&trace).expect("sim --trace-out writes the file");
    let summary = easyhps::obs::validate_chrome_trace(&text).expect("valid Chrome trace");
    assert!(summary.events > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (ok, _, stderr) = easyhps(&["sim", "--nodes", "2", "--cores", "3"]);
    assert!(!ok);
    assert!(stderr.contains("not realizable"));

    let (ok, _, stderr) = easyhps(&["align", "/nonexistent/file.fa"]);
    assert!(!ok);
    assert!(stderr.contains("error"));

    let (ok, _, stderr) = easyhps(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, _) = easyhps(&["editdist", "onlyone"]);
    assert!(!ok);
}

#[test]
fn analyze_reports_dag_structure() {
    let (ok, stdout, stderr) = easyhps(&[
        "analyze",
        "--workload",
        "nussinov",
        "--len",
        "1000",
        "--pps",
        "100",
        "--tps",
        "10",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("critical path"), "{stdout}");
    assert!(
        stdout.contains("sub-tasks:        55"),
        "10x10 triangle: {stdout}"
    );
    assert!(stdout.contains("max width:        10"), "{stdout}");
}
