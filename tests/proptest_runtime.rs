//! Property test over the full stack: for random problems, partitions and
//! deployments, the multilevel runtime result equals the sequential
//! reference.

use easyhps::dp::sequence::{random_sequence, Alphabet};
use easyhps::dp::{DpProblem, EditDistance, Nussinov};
use easyhps::EasyHps;
use proptest::prelude::*;

proptest! {
    // Each case spawns a virtual cluster of OS threads; keep the count
    // modest but the parameter space wide.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn runtime_matches_sequential_wavefront(
        la in 5usize..40,
        lb in 5usize..40,
        seed in 0u64..10_000,
        pp in 3u32..15,
        tp in 1u32..6,
        slaves in 1usize..4,
        threads in 1usize..4,
    ) {
        // A thread tile larger than its process tile is now a refused
        // configuration, so keep the draw inside the legal space (ragged
        // non-dividing sizes remain legal and exercised).
        let tp = tp.min(pp);
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        let problem = EditDistance::new(a, b);
        let reference = problem.solve_sequential();
        let out = EasyHps::new(problem)
            .process_partition((pp, pp))
            .thread_partition((tp, tp))
            .slaves(slaves)
            .threads_per_slave(threads)
            .run()
            .unwrap();
        prop_assert_eq!(out.matrix, reference);
    }

    #[test]
    fn runtime_matches_sequential_triangular(
        len in 5usize..40,
        seed in 0u64..10_000,
        pp in 3u32..12,
        tp in 1u32..5,
        slaves in 1usize..4,
    ) {
        let tp = tp.min(pp);
        let rna = random_sequence(Alphabet::Rna, len, seed);
        let problem = Nussinov::new(rna);
        let pattern = problem.pattern();
        let reference = problem.solve_sequential();
        let out = EasyHps::new(problem)
            .process_partition((pp, pp))
            .thread_partition((tp, tp))
            .slaves(slaves)
            .threads_per_slave(2)
            .run()
            .unwrap();
        for pos in reference.dims().iter() {
            if pattern.contains(pos) {
                prop_assert_eq!(out.matrix.at(pos), reference.at(pos), "cell {}", pos);
            }
        }
    }
}
