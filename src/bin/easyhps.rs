//! `easyhps` — command-line front end to the runtime and the simulator.
//!
//! ```text
//! easyhps align <fasta>   [--global] [--gap log:4,2|affine:4,1|linear:2]
//!                         [--slaves N] [--threads N] [--pps N] [--tps N]
//! easyhps fold  <fasta>   [--min-loop N] [--slaves N] [--threads N]
//! easyhps editdist <a> <b>
//! easyhps sim   [--workload swgg|nussinov|wavefront] [--len N]
//!               [--nodes X] [--cores Y] [--policy dynamic|bcw|cw] [--gantt]
//!               [--trace-out PATH]
//! easyhps analyze [--workload swgg|nussinov|wavefront] [--len N]
//!               [--pps N] [--tps N]
//! easyhps explore [--workload swgg|nussinov|wavefront] [--len N]
//!               [--pps N] [--tps N] [--slaves N] [--mode dynamic|bcw|cw]
//!               [--depth N] [--max-schedules N] [--reorder-window N]
//!               [--rejoin SLAVE@AFTER]... [--drain SLAVE@AFTER]...
//! easyhps stress [--seed N | --seeds N [--start N]] [--kill-master]
//!               [--mode dynamic|bcw|cw] [--slaves N] [--transport inproc|tcp|uds]
//!               [--workload editdist|swgg|nussinov|nw|lcs] [--clauses i,j|none]
//!               [--hang-timeout SECS] [--no-shrink] [--list]
//! easyhps master --listen ADDR --slaves N <editdist|lcs|nw|swgg|nussinov>
//!               [SEQ...] [--len N --seed S] [--pps N] [--tps N] [--threads N]
//!               [--mode dynamic|bcw|cw] [--gap SPEC] [--min-loop N] [--sparse]
//!               [--task-timeout-ms N] [--heartbeat-ms N] [--heartbeat-timeout-ms N]
//!               [--reconnect-ms N]
//! easyhps slave --connect ADDR [--rank R] [--threads N] [--sparse]
//!               [--reconnect-ms N]
//! easyhps serve --listen ADDR [--slaves N] [--threads N] [--fleet-listen ADDR]
//!               [--state-dir DIR] [--queue N] [--cache-mb N] [--batch-cells N]
//!               [--batch-jobs N] [--checkpoint-every N] [--job-metrics]
//!               [--weight TENANT=N]...
//! easyhps submit --connect ADDR [--tenant T] [--wait]
//!               <editdist|lcs|nw|swgg|nussinov> [SEQ...] [--len N --seed S]
//!               [--pps N] [--tps N] [--mode dynamic|bcw|cw] [--gap SPEC] [--sparse]
//! easyhps status --connect ADDR JOB
//! easyhps stats  --connect ADDR
//! easyhps cancel --connect ADDR JOB
//! easyhps drain  --connect ADDR RANK
//! ```
//!
//! `align` and `fold` run the real multilevel runtime on the input;
//! `sim` runs the deterministic cluster simulator and can print a Gantt
//! chart of the schedule; `explore` *enumerates* master-scheduler event
//! orderings on a fault-free virtual cluster (bounded-depth reordering,
//! CHESS-style) and checks the schedule invariants on every explored
//! order — complementary to `stress`, which *samples* interleavings with
//! real threads and injected faults; `stress` drives the real runtime
//! through seed-derived adversarial fault schedules and checks run
//! invariants (failing seeds print a one-line repro with a minimized
//! schedule).
//! `stress --kill-master` runs the crash-recovery drill instead: each
//! seed checkpoints to disk, kills the master mid-run, restarts from the
//! checkpoint directory, and requires bit-identical recovery.
//!
//! `master` and `slave` run the two halves of a **multi-process**
//! deployment over real sockets (`ADDR` is `tcp:HOST:PORT`, bare
//! `HOST:PORT`, or `uds:PATH`): the master binds, prints the bound
//! address on a `listening:` line, ships the job description to every
//! connected slave, and prints a `matrix-crc:` line at the end so
//! separate runs can be compared bit for bit. Slaves connect, receive
//! the job, and serve until the run ends. Input sequences are given as
//! positional arguments or generated with `--len N --seed S`.
//! `--reconnect-ms N` on both halves turns on the **elastic membership
//! protocol** (DESIGN.md §17): a slave whose link drops keeps its state
//! and redials within the window, resuming its rank under a bumped fleet
//! epoch; the master fences any completion stamped by a replaced
//! incarnation and reports the counts on a `fleet:` line. With a
//! `serve --fleet-listen` fleet, `drain RANK` asks the daemon to stop
//! assigning work to that slave, wait out its in-flight sub-tasks, and
//! release the rank back to the fleet's free-list (new slaves may join
//! a running fleet at any time by connecting to the fleet address).
//!
//! `serve` runs the **DP-as-a-service daemon**: a long-lived process that
//! owns a persistent slave fleet (in-process by default, real slave
//! processes via `--fleet-listen`) and accepts jobs from the client
//! subcommands over the CRC-sealed client protocol. Submissions pass
//! admission control (bounded queue, reject-with-reason), identical
//! in-flight jobs coalesce into one computation, finished results are
//! served from a content-addressed cache, and `--state-dir` makes
//! accepted jobs survive a daemon kill. `submit` ships the same workload
//! grammar as `master` and prints the job id; `--wait` (or a cache hit)
//! also prints the `matrix-crc:` line, identical to the one a one-shot
//! `master` run prints for the same problem. `status`, `stats` and
//! `cancel` poke a running daemon.
//!
//! Every runtime command (`align`, `fold`, `editdist`) also accepts
//! `--metrics` (print a Prometheus-style metrics exposition of the run to
//! stdout) and `--trace-out PATH` (write a Chrome trace-event JSON file —
//! open it in Perfetto, <https://ui.perfetto.dev>), plus the durable
//! recovery flags: `--checkpoint-dir DIR` (append finished tiles to an
//! on-disk checkpoint as the run progresses), `--checkpoint-every N`
//! (flush cadence in accepted tiles, default 32), and `--resume` (load
//! the directory's progress and skip the finished tiles).
//!
//! ## Exit codes
//!
//! `stress` distinguishes failure classes so CI can triage without
//! parsing output:
//!
//! * `0` — every seed passed all invariants;
//! * `1` — an invariant failed, a run errored, or the arguments were
//!   malformed;
//! * `2` — a run hung (no result within `--hang-timeout`): deadlock or
//!   livelock, the trace file is left on disk for inspection.
//!
//! Every other command exits `0` on success and `1` on any error.

use easyhps::dp::sequence::parse_fasta;
use easyhps::dp::{
    EditDistance, GapPenalty, NeedlemanWunsch, Nussinov, SmithWatermanGeneralGap, Substitution,
};
use easyhps::sim::{sequential_ns, simulate_traced, CostModel, Experiment, SimWorkload};
use easyhps::{EasyHps, ScheduleMode};
use std::process::ExitCode;

/// Minimal flag parser: positionals plus `--key value` / `--flag` pairs.
#[derive(Debug, Default)]
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(
        raw: impl IntoIterator<Item = String>,
        boolean_flags: &[&str],
    ) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if boolean_flags.contains(&name) {
                    out.flags.push((name.to_string(), None));
                } else {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    out.flags.push((name.to_string(), Some(v)));
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Every value given for a repeatable flag, in order.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }
}

/// Apply the observability flags shared by every runtime command:
/// `--metrics` and `--trace-out PATH`.
fn with_obs_flags<P: easyhps::dp::DpProblem>(mut hps: EasyHps<P>, args: &Args) -> EasyHps<P> {
    if args.has("metrics") {
        hps = hps.metrics(true);
    }
    if let Some(path) = args.get("trace-out") {
        hps = hps.trace_out(path);
    }
    hps
}

/// Apply the durable-recovery flags shared by every runtime command:
/// `--checkpoint-dir DIR`, `--checkpoint-every N`, `--resume`.
fn with_recovery_flags<P: easyhps::dp::DpProblem>(
    mut hps: EasyHps<P>,
    args: &Args,
) -> Result<EasyHps<P>, String> {
    let Some(dir) = args.get("checkpoint-dir") else {
        if args.has("resume") {
            return Err("--resume needs --checkpoint-dir".into());
        }
        return Ok(hps);
    };
    let mut policy = easyhps::CheckpointPolicy::new(dir);
    if let Some(n) = args.get("checkpoint-every") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("--checkpoint-every: cannot parse '{n}'"))?;
        policy = policy.with_every_tiles(n);
    }
    hps = hps.checkpoint(policy);
    if args.has("resume") {
        // An empty or missing directory resumes from nothing — the run
        // simply starts fresh and begins checkpointing into it.
        if let Some(cp) = easyhps::Checkpoint::load_dir(dir).map_err(|e| e.to_string())? {
            println!(
                "resuming: {} finished tile(s) restored from {dir}",
                cp.finished_len()
            );
            hps = hps.resume_from(cp);
        }
    }
    Ok(hps)
}

/// Print the run's metrics exposition when `--metrics` asked for one.
fn print_metrics<C: easyhps::dp::Cell>(out: &easyhps::RunOutput<C>) {
    if let Some(registry) = &out.metrics {
        print!("{}", registry.snapshot().render_text());
    }
}

/// Parse a gap spec like `log:4,2`, `affine:4,1`, `linear:2`.
fn parse_gap(spec: &str) -> Result<GapPenalty, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let nums: Vec<i32> = if rest.is_empty() {
        vec![]
    } else {
        rest.split(',')
            .map(|n| {
                n.trim()
                    .parse()
                    .map_err(|_| format!("bad gap number '{n}'"))
            })
            .collect::<Result<_, _>>()?
    };
    match (kind, nums.as_slice()) {
        ("linear", [g]) => Ok(GapPenalty::Linear { per_gap: *g }),
        ("affine", [o, e]) => Ok(GapPenalty::Affine {
            open: *o,
            extend: *e,
        }),
        ("log", [a, b]) => Ok(GapPenalty::Logarithmic { a: *a, b: *b }),
        _ => Err(format!(
            "gap spec '{spec}' not understood (use linear:N, affine:O,E or log:A,B)"
        )),
    }
}

fn parse_policy(spec: &str) -> Result<ScheduleMode, String> {
    match spec {
        "dynamic" => Ok(ScheduleMode::Dynamic),
        "bcw" => Ok(ScheduleMode::BlockCyclic { block: 2 }),
        "cw" => Ok(ScheduleMode::ColumnWavefront),
        other => Err(format!("unknown policy '{other}' (dynamic|bcw|cw)")),
    }
}

fn read_fasta_pair(path: &str) -> Result<(Vec<u8>, Vec<u8>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let records = parse_fasta(&text);
    match records.len() {
        0 | 1 => Err(format!(
            "{path}: need two FASTA records, found {}",
            records.len()
        )),
        _ => Ok((records[0].1.clone(), records[1].1.clone())),
    }
}

fn cmd_align(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("align: missing FASTA path")?;
    let (a, b) = read_fasta_pair(path)?;
    let slaves = args.get_num("slaves", 2usize)?;
    let threads = args.get_num("threads", 2usize)?;
    let n = a.len().max(b.len()) as u32 + 1;
    let pps = args.get_num("pps", n.div_ceil(8).max(1))?;
    let tps = args.get_num("tps", pps.div_ceil(4).max(1))?;
    let gap = parse_gap(args.get("gap").unwrap_or("log:4,2"))?;

    if args.has("global") {
        let per_gap = match gap {
            GapPenalty::Linear { per_gap } => per_gap,
            _ => 2,
        };
        let p = NeedlemanWunsch::new(a.clone(), b.clone(), Substitution::dna_default(), per_gap);
        let hps = EasyHps::new(p)
            .process_partition((pps, pps))
            .thread_partition((tps, tps))
            .slaves(slaves)
            .threads_per_slave(threads);
        let hps = with_recovery_flags(with_obs_flags(hps, args), args)?;
        let out = hps.run().map_err(|e| e.to_string())?;
        let p = NeedlemanWunsch::new(a, b, Substitution::dna_default(), per_gap);
        println!("{}", p.traceback(&out.matrix));
        print_metrics(&out);
    } else {
        let p = SmithWatermanGeneralGap::new(
            a.clone(),
            b.clone(),
            Substitution::dna_default(),
            gap.clone(),
        );
        let hps = EasyHps::new(p)
            .process_partition((pps, pps))
            .thread_partition((tps, tps))
            .slaves(slaves)
            .threads_per_slave(threads);
        let hps = with_recovery_flags(with_obs_flags(hps, args), args)?;
        let out = hps.run().map_err(|e| e.to_string())?;
        let p = SmithWatermanGeneralGap::new(a, b, Substitution::dna_default(), gap);
        println!("{}", p.traceback(&out.matrix));
        print_metrics(&out);
    }
    Ok(())
}

fn cmd_fold(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("fold: missing FASTA path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let records = parse_fasta(&text);
    let (name, rna) = records.first().ok_or(format!("{path}: no FASTA records"))?;
    let min_loop = args.get_num("min-loop", 1u32)?;
    let slaves = args.get_num("slaves", 2usize)?;
    let threads = args.get_num("threads", 2usize)?;
    let n = rna.len() as u32;
    let pps = args.get_num("pps", n.div_ceil(8).max(1))?;
    let tps = args.get_num("tps", pps.div_ceil(4).max(1))?;

    let p = Nussinov::with_min_loop(rna.clone(), min_loop);
    let hps = EasyHps::new(p)
        .process_partition((pps, pps))
        .thread_partition((tps, tps))
        .slaves(slaves)
        .threads_per_slave(threads);
    let hps = with_recovery_flags(with_obs_flags(hps, args), args)?;
    let out = hps.run().map_err(|e| e.to_string())?;
    let p = Nussinov::with_min_loop(rna.clone(), min_loop);
    let pairs = p.traceback(&out.matrix);
    println!("> {name}: {} base pairs", pairs.len());
    println!("{}", String::from_utf8_lossy(rna));
    println!("{}", p.dot_bracket(&pairs));
    print_metrics(&out);
    Ok(())
}

fn cmd_editdist(args: &Args) -> Result<(), String> {
    let [a, b] = args.positional.as_slice() else {
        return Err("editdist: need two strings".into());
    };
    let p = EditDistance::new(a.as_bytes().to_vec(), b.as_bytes().to_vec());
    let hps = EasyHps::new(p).slaves(2).threads_per_slave(2);
    let hps = with_recovery_flags(with_obs_flags(hps, args), args)?;
    let out = hps.run().map_err(|e| e.to_string())?;
    let p = EditDistance::new(a.as_bytes().to_vec(), b.as_bytes().to_vec());
    println!("{}", p.distance(&out.matrix));
    print_metrics(&out);
    Ok(())
}

fn cmd_sim(args: &Args) -> Result<(), String> {
    let len = args.get_num("len", 2_000u32)?;
    let pps = args.get_num("pps", (len / 20).max(1))?;
    let tps = args.get_num("tps", (pps / 10).max(1))?;
    let workload = match args.get("workload").unwrap_or("swgg") {
        "swgg" => SimWorkload::swgg(len, pps, tps),
        "nussinov" => SimWorkload::nussinov(len, pps, tps),
        "wavefront" => SimWorkload::wavefront(len, pps, tps),
        other => return Err(format!("unknown workload '{other}'")),
    };
    let nodes = args.get_num("nodes", 4u32)?;
    let cores = args.get_num("cores", 24u32)?;
    let e = Experiment::new(nodes, cores);
    if !e.is_valid() {
        return Err(format!(
            "{} is not realizable (computing cores = {}, must be {}..={})",
            e.label(),
            e.computing_cores(),
            nodes - 1,
            11 * (nodes as i64 - 1)
        ));
    }
    let mut cfg = e.config(CostModel::tianhe1a());
    let policy = parse_policy(args.get("policy").unwrap_or("dynamic"))?;
    cfg.process_mode = policy;
    cfg.thread_mode = match policy {
        ScheduleMode::BlockCyclic { .. } => ScheduleMode::BlockCyclic { block: 1 },
        p => p,
    };

    let (r, trace) = simulate_traced(&workload, &cfg);
    let seq = sequential_ns(&workload, &cfg.cost);
    println!(
        "{} on {} ({:?} threads, {} policy):",
        workload.name,
        e.label(),
        cfg.threads,
        policy.name()
    );
    println!(
        "  elapsed {:.3}s  speedup {:.1}x  ({} tiles, {} MB moved, master busy {:.1} ms)",
        r.seconds(),
        seq as f64 / r.makespan_ns as f64,
        r.tiles,
        r.bytes_moved / 1_000_000,
        r.master_busy_ns as f64 / 1e6
    );
    if args.has("gantt") {
        print!("{}", trace.gantt(100));
    }
    // The simulator's virtual-time schedule exports to the same Chrome
    // trace format as real runs, so both open side by side in Perfetto.
    if let Some(path) = args.get("trace-out") {
        let json = easyhps::obs::chrome_json_from_trace(&trace);
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let len = args.get_num("len", 2_000u32)?;
    let pps = args.get_num("pps", (len / 20).max(1))?;
    let tps = args.get_num("tps", (pps / 10).max(1))?;
    let workload = match args.get("workload").unwrap_or("swgg") {
        "swgg" => SimWorkload::swgg(len, pps, tps),
        "nussinov" => SimWorkload::nussinov(len, pps, tps),
        "wavefront" => SimWorkload::wavefront(len, pps, tps),
        other => return Err(format!("unknown workload '{other}'")),
    };
    let dag = workload.model.master_dag();
    let a = dag.analyze().map_err(|e| e.to_string())?;
    println!("{} master DAG with pps={pps}, tps={tps}:", workload.name);
    println!("  sub-tasks:        {}", a.vertices);
    println!("  edges:            {}", a.edges);
    println!("  critical path:    {} levels", a.critical_path);
    println!(
        "  max width:        {} (more computing nodes than this sit idle)",
        a.max_width
    );
    println!("  avg parallelism:  {:.2}", a.avg_parallelism);
    // Compact width profile: show a sparkline-style row of buckets.
    let buckets = 20.min(a.width_profile.len());
    if buckets > 0 {
        let per = a.width_profile.len().div_ceil(buckets);
        let rows: Vec<String> = a
            .width_profile
            .chunks(per)
            .map(|c| {
                let avg = c.iter().sum::<usize>() / c.len();
                format!("{avg:>4}")
            })
            .collect();
        println!("  width over time:  {}", rows.join(" "));
    }
    Ok(())
}

/// CRC of a whole matrix's canonical cell encoding — the `matrix-crc:`
/// line both `master` runs and the multi-process e2e tests compare.
fn matrix_crc(matrix: &easyhps::DpMatrix<i32>) -> u32 {
    let d = matrix.dims();
    easyhps::net::crc32c(&matrix.encode_region(easyhps::TileRegion::new(0, d.rows, 0, d.cols)))
}

/// The input sequences of a `master` job: positionals win, otherwise
/// `--len N` (with `--seed S`) generates deterministic random ones.
fn master_inputs(
    args: &Args,
    n_seqs: usize,
    alphabet: easyhps::dp::sequence::Alphabet,
) -> Result<Vec<Vec<u8>>, String> {
    let given = &args.positional[1..];
    if !given.is_empty() {
        if given.len() != n_seqs {
            return Err(format!(
                "workload needs {n_seqs} sequence(s), got {}",
                given.len()
            ));
        }
        return Ok(given.iter().map(|s| s.as_bytes().to_vec()).collect());
    }
    let len = args.get_num("len", 0usize)?;
    if len == 0 {
        return Err(
            "give sequences as arguments, or --len N (with --seed S) for random input".into(),
        );
    }
    let seed = args.get_num("seed", 1u64)?;
    Ok((0..n_seqs)
        .map(|i| {
            easyhps::dp::sequence::random_sequence(
                alphabet,
                len + 3 * i, // unequal lengths exercise ragged edge tiles
                seed.wrapping_add(i as u64).wrapping_mul(0x9e3779b97f4a7c15),
            )
        })
        .collect())
}

/// Build a [`JobSpec`](easyhps::runtime::remote::JobSpec) from the
/// shared workload grammar: `<editdist|lcs|nw|swgg|nussinov> [SEQ...]`
/// plus the partitioning/schedule flags. `master` and `submit` accept
/// exactly the same job description; `who` names the command in errors.
fn build_job_spec(args: &Args, who: &str) -> Result<easyhps::runtime::remote::JobSpec, String> {
    use easyhps::dp::sequence::Alphabet;
    use easyhps::runtime::remote::{GapSpec, JobSpec, RemoteProblem, SubSpec};

    let workload = args.positional.first().ok_or(format!(
        "{who}: missing workload (editdist|lcs|nw|swgg|nussinov)"
    ))?;
    let problem = match workload.as_str() {
        "editdist" => {
            let mut s = master_inputs(args, 2, Alphabet::Dna)?;
            let b = s.pop().unwrap();
            RemoteProblem::EditDistance {
                a: s.pop().unwrap(),
                b,
            }
        }
        "lcs" => {
            let mut s = master_inputs(args, 2, Alphabet::Dna)?;
            let b = s.pop().unwrap();
            RemoteProblem::Lcs {
                a: s.pop().unwrap(),
                b,
            }
        }
        "nw" => {
            let mut s = master_inputs(args, 2, Alphabet::Dna)?;
            let b = s.pop().unwrap();
            RemoteProblem::NeedlemanWunsch {
                a: s.pop().unwrap(),
                b,
                sub: SubSpec::dna(),
                gap: args.get_num("gap-per", 2i32)?,
            }
        }
        "swgg" => {
            let mut s = master_inputs(args, 2, Alphabet::Dna)?;
            let b = s.pop().unwrap();
            let gap = parse_gap(args.get("gap").unwrap_or("log:4,2"))?;
            RemoteProblem::Swgg {
                a: s.pop().unwrap(),
                b,
                sub: SubSpec::dna(),
                gap: GapSpec::from_penalty(&gap)
                    .ok_or(format!("{who}: custom gap closures cannot cross processes"))?,
            }
        }
        "nussinov" => {
            let mut s = master_inputs(args, 1, Alphabet::Rna)?;
            RemoteProblem::Nussinov {
                seq: s.pop().unwrap(),
                min_loop: args.get_num("min-loop", 1u32)?,
            }
        }
        other => {
            return Err(format!(
                "{who}: unknown workload '{other}' (editdist|lcs|nw|swgg|nussinov)"
            ))
        }
    };

    let n = match &problem {
        RemoteProblem::EditDistance { a, b }
        | RemoteProblem::Lcs { a, b }
        | RemoteProblem::NeedlemanWunsch { a, b, .. }
        | RemoteProblem::Swgg { a, b, .. } => a.len().max(b.len()) as u32 + 1,
        RemoteProblem::Nussinov { seq, .. } => seq.len() as u32,
    };
    let pps = args.get_num("pps", n.div_ceil(8).max(1))?;
    let tps = args.get_num("tps", pps.div_ceil(4).max(1))?;
    let mut spec = JobSpec::new(
        problem,
        easyhps::GridDims::new(pps, pps),
        easyhps::GridDims::new(tps, tps),
    );
    spec.threads_per_slave = args.get_num("threads", 2u32)?;
    spec.process_mode = parse_policy(args.get("mode").unwrap_or("dynamic"))?;
    spec.task_timeout =
        std::time::Duration::from_millis(args.get_num("task-timeout-ms", 30_000u64)?);
    spec.heartbeat_interval =
        std::time::Duration::from_millis(args.get_num("heartbeat-ms", 25u64)?);
    spec.heartbeat_timeout =
        std::time::Duration::from_millis(args.get_num("heartbeat-timeout-ms", 250u64)?);
    if args.has("sparse") {
        spec.memory = easyhps::MemoryMode::Sparse;
    }
    Ok(spec)
}

/// Master half of a multi-process run: bind, announce the address, ship
/// the job to every slave, run, print the result CRC.
fn cmd_master(args: &Args) -> Result<(), String> {
    use easyhps::runtime::remote::{run_remote_master, RemoteMasterOptions};
    use easyhps::runtime::ObsConfig;
    use std::io::Write;

    let listen = args.get("listen").ok_or("master: --listen ADDR required")?;
    let slaves = args.get_num("slaves", 2usize)?;
    let spec = build_job_spec(args, "master")?;

    let mut opts = RemoteMasterOptions::default();
    if let Some(ms) = args.get("reconnect-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--reconnect-ms: cannot parse '{ms}'"))?;
        opts.socket.reconnect_window = Some(std::time::Duration::from_millis(ms));
    }
    let registry = args
        .has("metrics")
        .then(|| std::sync::Arc::new(easyhps::runtime::Registry::new()));
    opts.obs = ObsConfig {
        metrics: registry.clone(),
        recorder: None,
    };
    if let Some(dir) = args.get("checkpoint-dir") {
        let mut policy = easyhps::CheckpointPolicy::new(dir);
        if let Some(next) = args.get("checkpoint-every") {
            let next: u64 = next
                .parse()
                .map_err(|_| format!("--checkpoint-every: cannot parse '{next}'"))?;
            policy = policy.with_every_tiles(next);
        }
        opts.checkpoint = Some(policy);
        if args.has("resume") {
            if let Some(cp) = easyhps::Checkpoint::load_dir(dir).map_err(|e| e.to_string())? {
                println!(
                    "resuming: {} finished tile(s) restored from {dir}",
                    cp.finished_len()
                );
                opts.resume = Some(cp);
            }
        }
    } else if args.has("resume") {
        return Err("--resume needs --checkpoint-dir".into());
    }

    let addr = easyhps::net::NetAddr::parse(listen)?;
    let listener = easyhps::net::SocketListener::bind(&addr, opts.socket.clone())
        .map_err(|e| format!("binding {addr}: {e}"))?;
    // The bound address (the kernel fills in port 0) goes out first and
    // flushed, so a parent orchestrating the processes can read it and
    // point the slaves at it.
    println!("listening: {}", listener.local_addr());
    std::io::stdout().flush().ok();

    let out = run_remote_master(listener, &spec, slaves, opts).map_err(|e| e.to_string())?;
    let m = &out.report.master;
    println!(
        "completed: {} tile(s) in {:.3}s ({} redispatched, {} resumed)",
        m.completed,
        out.report.elapsed.as_secs_f64(),
        m.redispatched,
        m.resumed
    );
    // The membership drill's observables: rejoins and fenced zombie
    // DONEs from the scheduler, healed links from the socket layer.
    if let Some(sinfo) = &out.socket {
        let reconnects: u64 = sinfo
            .links
            .iter()
            .map(|(_, s)| s.snapshot().reconnects)
            .sum();
        println!(
            "fleet: {} rejoin(s), {} stale-epoch done(s) fenced, {} socket reconnect(s)",
            m.rejoins, m.stale_epoch_rejected, reconnects
        );
    }
    println!("matrix-crc: {:#010x}", matrix_crc(&out.matrix));
    if let Some(registry) = &registry {
        print!("{}", registry.snapshot().render_text());
    }
    Ok(())
}

/// Slave half of a multi-process run: connect and serve until the master
/// ends the run.
fn cmd_slave(args: &Args) -> Result<(), String> {
    use easyhps::runtime::remote::{serve_slave, RemoteSlaveOptions};

    let addr = args
        .get("connect")
        .ok_or("slave: --connect ADDR required")?;
    let mut opts = RemoteSlaveOptions::new(easyhps::net::NetAddr::parse(addr)?);
    if let Some(rank) = args.get("rank") {
        opts.want_rank = Some(rank.parse().map_err(|_| "--rank: not a number")?);
    }
    if let Some(threads) = args.get("threads") {
        opts.threads = Some(threads.parse().map_err(|_| "--threads: not a number")?);
    }
    if args.has("sparse") {
        opts.memory = Some(easyhps::MemoryMode::Sparse);
    }
    if let Some(ms) = args.get("reconnect-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--reconnect-ms: cannot parse '{ms}'"))?;
        opts.socket.reconnect_window = Some(std::time::Duration::from_millis(ms));
    }
    let stats = serve_slave(opts).map_err(|e| e.to_string())?;
    println!(
        "slave done: {} sub-task(s), {} sub-sub-task(s), {} thread failure(s) recovered",
        stats.tasks_done, stats.subtasks_done, stats.thread_failures
    );
    Ok(())
}

/// The serve daemon: bind, announce the client (and fleet) addresses,
/// then serve jobs until killed.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use easyhps::serve::{Daemon, FleetSpec, ServeConfig};
    use std::io::Write;

    let listen = args.get("listen").ok_or("serve: --listen ADDR required")?;
    let mut cfg = ServeConfig::new(easyhps::net::NetAddr::parse(listen)?);
    let slaves = args.get_num("slaves", 2usize)?;
    let threads = args
        .get("threads")
        .map(|t| t.parse())
        .transpose()
        .map_err(|_: std::num::ParseIntError| "--threads: not a number".to_string())?;
    cfg.fleet = match args.get("fleet-listen") {
        Some(addr) => easyhps::serve::FleetSpec::Remote {
            listen: easyhps::net::NetAddr::parse(addr)?,
            slaves,
            socket: Default::default(),
        },
        None => FleetSpec::Local { slaves, threads },
    };
    cfg.state_dir = args.get("state-dir").map(Into::into);
    cfg.queue_cap = args.get_num("queue", cfg.queue_cap)?;
    cfg.cache_bytes = args.get_num("cache-mb", cfg.cache_bytes >> 20)? << 20;
    cfg.batch_max_cells = args.get_num("batch-cells", cfg.batch_max_cells)?;
    cfg.batch_max_jobs = args.get_num("batch-jobs", cfg.batch_max_jobs)?;
    cfg.checkpoint_every = args.get_num("checkpoint-every", 0u64)?;
    cfg.per_job_metrics = args.has("job-metrics");
    for w in args.get_all("weight") {
        let (tenant, weight) = w
            .split_once('=')
            .ok_or(format!("--weight: '{w}' is not tenant=N"))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("--weight: '{weight}' is not a number"))?;
        cfg.tenant_weights.push((tenant.to_string(), weight));
    }

    let daemon = Daemon::start(cfg).map_err(|e| format!("starting daemon: {e}"))?;
    // Addresses go out first and flushed so an orchestrating parent can
    // read them and point clients (and remote slaves) at the daemon.
    println!("serving: {}", daemon.addr());
    if let Some(fleet) = daemon.fleet_addr() {
        println!("fleet: {fleet}");
    }
    std::io::stdout().flush().ok();
    // The daemon's own threads do all the work; serve until killed.
    loop {
        std::thread::park();
    }
}

/// Connect to a daemon for one of the client subcommands.
fn serve_client(args: &Args, who: &str) -> Result<easyhps::serve::Client, String> {
    let addr = args
        .get("connect")
        .ok_or(format!("{who}: --connect ADDR required"))?;
    easyhps::serve::Client::connect(&easyhps::net::NetAddr::parse(addr)?)
        .map_err(|e| format!("{who}: connecting {addr}: {e}"))
}

/// Render one daemon response; terminal errors become CLI errors.
fn print_response(resp: easyhps::serve::Response) -> Result<(), String> {
    use easyhps::serve::{Admission, Response};
    match resp {
        Response::Accepted { job, admission } => {
            let how = match admission {
                Admission::New => "new",
                Admission::CacheHit => "cache-hit",
                Admission::Coalesced => "coalesced",
            };
            println!("accepted: job {job} ({how})");
        }
        Response::Rejected { reason } => return Err(format!("rejected: {reason}")),
        Response::Status { job, state } => {
            use easyhps::serve::JobState;
            match state {
                JobState::Queued { position } => {
                    println!("job {job}: queued (position {position})")
                }
                JobState::Running => println!("job {job}: running"),
                JobState::Done(r) => println!(
                    "job {job}: done ({}x{} cells, matrix-crc {:#010x})",
                    r.rows, r.cols, r.crc
                ),
                JobState::Failed { error } => println!("job {job}: failed: {error}"),
                JobState::Cancelled => println!("job {job}: cancelled"),
                JobState::Unknown => println!("job {job}: unknown"),
            }
        }
        Response::Stats { text } => print!("{text}"),
        Response::Cancelled { job, ok } => {
            if !ok {
                return Err(format!(
                    "job {job}: not cancellable (finished, running or unknown)"
                ));
            }
            println!("cancelled: job {job}");
        }
        Response::Done {
            job,
            result,
            cached,
        } => {
            println!(
                "done: job {job} ({}x{} cells{})",
                result.rows,
                result.cols,
                if cached { ", cached" } else { "" }
            );
            // Same format as `master`'s summary line, so daemon results
            // can be diffed against one-shot runs bit for bit.
            println!("matrix-crc: {:#010x}", result.crc);
        }
        Response::Drained { rank, ok } => {
            if !ok {
                return Err(format!(
                    "rank {rank}: not drainable (rank 0 is the master, and the \
                     daemon needs an elastic --fleet-listen fleet)"
                ));
            }
            println!("draining: rank {rank} (released once its in-flight work lands)");
        }
        Response::Error { message } => return Err(message),
    }
    Ok(())
}

/// Submit a job to a daemon; with `--wait` (or on a cache hit) also
/// print the terminal result.
fn cmd_submit(args: &Args) -> Result<(), String> {
    use easyhps::serve::{Admission, Response};

    let spec = build_job_spec(args, "submit")?;
    let tenant = args.get("tenant").unwrap_or("default");
    let wait = args.has("wait");
    let mut client = serve_client(args, "submit")?;
    let resp = client
        .submit(tenant, wait, spec)
        .map_err(|e| format!("submit: {e}"))?;
    let follow_up = wait
        || matches!(
            resp,
            Response::Accepted {
                admission: Admission::CacheHit,
                ..
            }
        );
    print_response(resp)?;
    if follow_up {
        let done = client
            .read_response()
            .map_err(|e| format!("submit: waiting for result: {e}"))?;
        print_response(done)?;
    }
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let job = args
        .positional
        .first()
        .ok_or("status: missing job id")?
        .parse()
        .map_err(|_| "status: job id is not a number")?;
    let mut client = serve_client(args, "status")?;
    print_response(client.status(job).map_err(|e| format!("status: {e}"))?)
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let mut client = serve_client(args, "stats")?;
    print_response(client.stats().map_err(|e| format!("stats: {e}"))?)
}

fn cmd_cancel(args: &Args) -> Result<(), String> {
    let job = args
        .positional
        .first()
        .ok_or("cancel: missing job id")?
        .parse()
        .map_err(|_| "cancel: job id is not a number")?;
    let mut client = serve_client(args, "cancel")?;
    print_response(client.cancel(job).map_err(|e| format!("cancel: {e}"))?)
}

/// Ask a daemon to gracefully drain one fleet slave: finish its
/// in-flight sub-tasks, assign it nothing new, release its rank.
fn cmd_drain(args: &Args) -> Result<(), String> {
    let rank = args
        .positional
        .first()
        .ok_or("drain: missing rank")?
        .parse()
        .map_err(|_| "drain: rank is not a number")?;
    let mut client = serve_client(args, "drain")?;
    print_response(client.drain(rank).map_err(|e| format!("drain: {e}"))?)
}

/// Enumerate master-scheduler event orderings on a small workload's
/// master DAG and check the schedule invariants on every explored order.
/// Exits 1 if any explored schedule violates the contract.
fn cmd_explore(args: &Args) -> Result<ExitCode, String> {
    use easyhps::core::sched::{explore_membership, ExploreConfig, MembershipOp};

    // Defaults give a 4x4 master DAG — small enough that bounded-depth
    // exploration covers hundreds of distinct orders in well under a
    // second, the regime the technique is designed for.
    let len = args.get_num("len", 400u32)?;
    let pps = args.get_num("pps", (len / 4).max(1))?;
    let tps = args.get_num("tps", (pps / 2).max(1))?;
    let workload = match args.get("workload").unwrap_or("swgg") {
        "swgg" => SimWorkload::swgg(len, pps, tps),
        "nussinov" => SimWorkload::nussinov(len, pps, tps),
        "wavefront" => SimWorkload::wavefront(len, pps, tps),
        other => return Err(format!("unknown workload '{other}'")),
    };
    let dag = workload.model.master_dag();

    let slaves = args.get_num("slaves", 2usize)?;
    let mode = parse_policy(args.get("mode").unwrap_or("dynamic"))?;
    let mut cfg = ExploreConfig::new(slaves, mode);
    cfg.depth = args.get_num("depth", cfg.depth)?;
    cfg.max_schedules = args.get_num("max-schedules", cfg.max_schedules)?;
    cfg.reorder_window = args.get_num("reorder-window", cfg.reorder_window)?;

    // Scripted membership operations (DESIGN.md §17): `SLAVE@AFTER`
    // fires the op once AFTER delivered frames. The explorer then
    // enumerates delivery orders around the membership change, modelling
    // a rejoined slave's undelivered DONEs as stale-epoch zombies, and
    // fails any order in which the machine accepts one.
    let parse_op = |spec: &str, what: &str| -> Result<(usize, usize), String> {
        let (s, a) = spec
            .split_once('@')
            .ok_or_else(|| format!("--{what}: expected SLAVE@AFTER, got '{spec}'"))?;
        Ok((
            s.parse()
                .map_err(|_| format!("--{what}: bad slave '{s}'"))?,
            a.parse()
                .map_err(|_| format!("--{what}: bad frame count '{a}'"))?,
        ))
    };
    let mut script = Vec::new();
    for spec in args.get_all("rejoin") {
        let (slave, after) = parse_op(spec, "rejoin")?;
        script.push(MembershipOp::Rejoin { slave, after });
    }
    for spec in args.get_all("drain") {
        let (slave, after) = parse_op(spec, "drain")?;
        script.push(MembershipOp::Drain { slave, after });
    }

    let t0 = std::time::Instant::now();
    let out = explore_membership(&dag, &cfg, &script);
    println!(
        "{} master DAG ({} tiles) on {} slave(s), {} policy, depth {}{}:",
        workload.name,
        dag.len(),
        slaves,
        mode.name(),
        cfg.depth,
        if script.is_empty() {
            String::new()
        } else {
            format!(", {} membership op(s)", script.len())
        }
    );
    println!(
        "  {} schedule(s), {} distinct delivery orders, {} decision point(s), \
         max {} pending frame(s), {:.2}s",
        out.schedules,
        out.distinct_orders,
        out.decisions,
        out.max_pending,
        t0.elapsed().as_secs_f64()
    );
    if out.violations.is_empty() {
        println!("  every explored schedule satisfied the invariants");
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &out.violations {
            println!("  violation: {v}");
        }
        println!(
            "  {} schedule(s) violated the contract",
            out.violations.len()
        );
        Ok(ExitCode::FAILURE)
    }
}

/// Exit code for a set of stress violations: 0 = pass, 2 = hang,
/// 1 = anything else (see the module docs).
fn stress_exit(violations: &[String]) -> ExitCode {
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else if violations.iter().any(|v| v.starts_with("hang:")) {
        ExitCode::from(2)
    } else {
        ExitCode::FAILURE
    }
}

/// The crash-recovery drill: checkpoint, kill the master, resume from
/// disk, require bit-identical recovery.
fn cmd_stress_kill(args: &Args, cfg: &easyhps::stress::StressConfig) -> Result<ExitCode, String> {
    use easyhps::stress::run_kill_seed;

    let (start, n) = match args.get("seed") {
        Some(seed) => (seed.parse().map_err(|_| "--seed: not a number")?, 1),
        None => (args.get_num("start", 0u64)?, args.get_num("seeds", 20u64)?),
    };
    let t0 = std::time::Instant::now();
    for seed in start..start + n {
        let outcome = run_kill_seed(seed, cfg);
        if outcome.passed() {
            println!(
                "kill-master seed {seed}: PASS ({:.1}s)",
                outcome.elapsed.as_secs_f64()
            );
            continue;
        }
        println!("kill-master seed {seed}: FAIL\nplan: {:?}", outcome.plan);
        for v in &outcome.violations {
            println!("  violation: {v}");
        }
        println!("repro: {}", outcome.repro_line());
        return Ok(stress_exit(&outcome.violations));
    }
    println!(
        "{n} kill-master seed(s) recovered bit-identical in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_stress(args: &Args) -> Result<ExitCode, String> {
    use easyhps::stress::{run_plan, run_seed, StressConfig, StressPlan, Workload};

    let mode = match args.get("mode").unwrap_or("dynamic") {
        "dynamic" => ScheduleMode::Dynamic,
        // block=1 keeps block-cyclic distinct from plain wavefront at the
        // small tile counts stress plans use.
        "bcw" => ScheduleMode::BlockCyclic { block: 1 },
        "cw" => ScheduleMode::ColumnWavefront,
        other => return Err(format!("unknown mode '{other}' (dynamic|bcw|cw)")),
    };
    let cfg = StressConfig {
        mode,
        slaves: args
            .get("slaves")
            .map(|s| s.parse())
            .transpose()
            .map_err(|_: std::num::ParseIntError| "--slaves: not a number".to_string())?,
        workload: args.get("workload").map(Workload::parse).transpose()?,
        hang_timeout: std::time::Duration::from_secs(args.get_num("hang-timeout", 60u64)?),
        shrink: !args.has("no-shrink"),
        transport: easyhps::TransportKind::parse(args.get("transport").unwrap_or("inproc"))?,
    };

    if args.has("kill-master") {
        return cmd_stress_kill(args, &cfg);
    }

    // Single-seed mode: --seed N, optionally with --clauses to replay a
    // minimized schedule, or --list to print the derived plan and exit.
    if let Some(seed) = args.get("seed") {
        let seed: u64 = seed.parse().map_err(|_| "--seed: not a number")?;
        let plan = StressPlan::from_seed(seed, &cfg);
        let plan = match args.get("clauses") {
            None => plan,
            Some("none") => plan.with_clauses(&[]),
            Some(list) => {
                let keep: Vec<usize> = list
                    .split(',')
                    .map(|i| i.trim().parse())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("--clauses: cannot parse '{list}'"))?;
                plan.with_clauses(&keep)
            }
        };
        print!("{}", plan.describe());
        if args.has("list") {
            return Ok(ExitCode::SUCCESS);
        }
        let violations = run_plan(&plan, &cfg);
        if violations.is_empty() {
            println!("seed {seed}: PASS");
            return Ok(ExitCode::SUCCESS);
        }
        for v in &violations {
            println!("  violation: {v}");
        }
        println!("seed {seed}: {} violation(s)", violations.len());
        Ok(stress_exit(&violations))
    } else {
        // Sweep mode: --seeds N seeds starting at --start (default 0).
        let n = args.get_num("seeds", 100u64)?;
        let start = args.get_num("start", 0u64)?;
        let t0 = std::time::Instant::now();
        for seed in start..start + n {
            let outcome = run_seed(seed, &cfg);
            if outcome.passed() {
                println!(
                    "seed {seed}: PASS ({} clauses, {:.1}s)",
                    outcome.plan.clauses.len(),
                    outcome.elapsed.as_secs_f64()
                );
                continue;
            }
            println!("seed {seed}: FAIL");
            print!("{}", outcome.plan.describe());
            for v in &outcome.violations {
                println!("  violation: {v}");
            }
            println!("repro: {}", outcome.repro_line());
            return Ok(stress_exit(&outcome.violations));
        }
        println!(
            "{n} seed(s) passed every invariant in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        Ok(ExitCode::SUCCESS)
    }
}

const USAGE: &str = "usage: easyhps <align|fold|editdist|sim|analyze|explore|stress|master|slave\
|serve|submit|status|stats|cancel|drain> [args]  (see --help in source docs)";

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let cmd = argv.remove(0);
    let booleans = [
        "global",
        "gantt",
        "metrics",
        "list",
        "no-shrink",
        "resume",
        "kill-master",
        "sparse",
        "wait",
        "job-metrics",
    ];
    let result = Args::parse(argv, &booleans).and_then(|args| match cmd.as_str() {
        "align" => cmd_align(&args).map(|()| ExitCode::SUCCESS),
        "fold" => cmd_fold(&args).map(|()| ExitCode::SUCCESS),
        "editdist" => cmd_editdist(&args).map(|()| ExitCode::SUCCESS),
        "sim" => cmd_sim(&args).map(|()| ExitCode::SUCCESS),
        "analyze" => cmd_analyze(&args).map(|()| ExitCode::SUCCESS),
        "explore" => cmd_explore(&args),
        "stress" => cmd_stress(&args),
        "master" => cmd_master(&args).map(|()| ExitCode::SUCCESS),
        "slave" => cmd_slave(&args).map(|()| ExitCode::SUCCESS),
        "serve" => cmd_serve(&args).map(|()| ExitCode::SUCCESS),
        "submit" => cmd_submit(&args).map(|()| ExitCode::SUCCESS),
        "status" => cmd_status(&args).map(|()| ExitCode::SUCCESS),
        "stats" => cmd_stats(&args).map(|()| ExitCode::SUCCESS),
        "cancel" => cmd_cancel(&args).map(|()| ExitCode::SUCCESS),
        "drain" => cmd_drain(&args).map(|()| ExitCode::SUCCESS),
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    });
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(
            s.iter().map(|x| x.to_string()),
            &["global", "gantt", "metrics"],
        )
        .unwrap()
    }

    #[test]
    fn flag_parsing() {
        let a = args(&[
            "file.fa",
            "--slaves",
            "3",
            "--global",
            "--metrics",
            "--trace-out",
            "trace.json",
            "--gap",
            "affine:4,1",
        ]);
        assert_eq!(a.positional, vec!["file.fa"]);
        assert_eq!(a.get("slaves"), Some("3"));
        assert!(a.has("global"));
        assert!(a.has("metrics"), "--metrics takes no value");
        assert_eq!(a.get("trace-out"), Some("trace.json"));
        assert_eq!(a.get_num("slaves", 0usize).unwrap(), 3);
        assert_eq!(a.get_num("threads", 7usize).unwrap(), 7);
    }

    #[test]
    fn missing_value_errors() {
        let e = Args::parse(["--slaves".to_string()], &[]).unwrap_err();
        assert!(e.contains("needs a value"));
    }

    #[test]
    fn gap_specs() {
        assert!(matches!(
            parse_gap("linear:3").unwrap(),
            GapPenalty::Linear { per_gap: 3 }
        ));
        assert!(matches!(
            parse_gap("affine:4,1").unwrap(),
            GapPenalty::Affine { open: 4, extend: 1 }
        ));
        assert!(matches!(
            parse_gap("log:4,2").unwrap(),
            GapPenalty::Logarithmic { a: 4, b: 2 }
        ));
        assert!(parse_gap("bogus").is_err());
        assert!(parse_gap("affine:4").is_err());
    }

    #[test]
    fn stress_exit_codes_triage_failure_classes() {
        assert_eq!(stress_exit(&[]), ExitCode::SUCCESS);
        assert_eq!(
            stress_exit(&["matrix mismatch at (1, 1)".into()]),
            ExitCode::FAILURE
        );
        assert_eq!(
            stress_exit(&["hang: no result within 60s (deadlock or livelock)".into()]),
            ExitCode::from(2)
        );
    }

    #[test]
    fn policy_specs() {
        assert_eq!(parse_policy("dynamic").unwrap(), ScheduleMode::Dynamic);
        assert!(matches!(
            parse_policy("bcw").unwrap(),
            ScheduleMode::BlockCyclic { .. }
        ));
        assert_eq!(parse_policy("cw").unwrap(), ScheduleMode::ColumnWavefront);
        assert!(parse_policy("x").is_err());
    }
}
