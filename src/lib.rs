//! # EasyHPS — a multilevel hybrid parallel runtime for dynamic programming
//!
//! A from-scratch Rust reproduction of *EasyHPS: A Multilevel Hybrid
//! Parallel System for Dynamic Programming* (Du, Yu, Sun, Sun, Tang, Yin;
//! IPDPS Workshops 2013): a master/slave runtime that parallelizes DP
//! recurrences across (virtual) cluster nodes and, inside each node, across
//! computing threads, driven by the **DAG Data Driven Model** — block
//! partitioning of the DP matrix into a dependency DAG of sub-tasks,
//! dynamically scheduled through worker pools with hierarchical fault
//! tolerance.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`](mod@core) — patterns, partitioning, the DAG parser
//!   (`easyhps-core`);
//! * [`dp`] — the DP algorithm library: SWGG, Nussinov, edit distance, LCS,
//!   matrix-chain, optimal BST, 2D/2D (`easyhps-dp`);
//! * [`net`] — the in-process virtual-MPI transport with fault injection
//!   (`easyhps-net`);
//! * [`obs`] — metrics registry and structured tracing with Perfetto
//!   (Chrome trace-event) export (`easyhps-obs`);
//! * [`runtime`] — the master/slave runtime and the [`EasyHps`] user API
//!   (`easyhps-runtime`);
//! * [`serve`] — the multi-job daemon: admission control, weighted-fair
//!   scheduling, request coalescing and a content-addressed result cache
//!   over a persistent slave fleet (`easyhps-serve`);
//! * [`sim`] — the deterministic cluster simulator regenerating the paper's
//!   figures (`easyhps-sim`);
//! * [`stress`] — the seeded schedule-stress harness driving the real
//!   runtime through adversarial fault schedules (`easyhps-stress`).
//!
//! ## Quickstart
//!
//! ```
//! use easyhps::EasyHps;
//! use easyhps::dp::{DpProblem, Nussinov};
//! use easyhps::dp::sequence::{random_sequence, Alphabet};
//!
//! let rna = random_sequence(Alphabet::Rna, 80, 42);
//! let problem = Nussinov::new(rna);
//!
//! let out = EasyHps::new(problem)
//!     .process_partition((16, 16)) // sub-task tiles across nodes
//!     .thread_partition((4, 4))    // sub-sub-task tiles across threads
//!     .slaves(3)
//!     .threads_per_slave(2)
//!     .run()
//!     .unwrap();
//!
//! println!("max base pairs: {}", out.matrix.get(0, 79));
//! ```

pub use easyhps_core as core;
pub use easyhps_dp as dp;
pub use easyhps_net as net;
pub use easyhps_obs as obs;
pub use easyhps_runtime as runtime;
pub use easyhps_serve as serve;
pub use easyhps_sim as sim;
pub use easyhps_stress as stress;

pub use easyhps_core::{
    DagDataDrivenModel, DagParser, DagPattern, GridDims, GridPos, PatternKind, ScheduleMode,
    TaskDag, TileRegion, VertexId,
};
pub use easyhps_dp::{DpMatrix, DpProblem};
pub use easyhps_runtime::{
    Checkpoint, CheckpointPolicy, Deployment, EasyHps, MemoryMode, RunOutput, RuntimeError,
    TransportKind,
};
