//! Offline stub of the `rand` crate (0.9 API surface used by this
//! workspace): `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{random_range, random_bool, random}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which is all the workspace needs (every use is
//! seeded explicitly for reproducibility).

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (stretched internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// float).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of `T` from its standard distribution.
    fn random<T>(&mut self) -> T
    where
        T: StandardSample,
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from a "standard" distribution (full integer range,
/// unit interval for floats).
pub trait StandardSample {
    /// Draw one sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire): uniform enough
                // for test workloads, avoids modulo bias hot spots.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $wide).wrapping_add(hi as $wide) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.random_range(0.05..1.0);
            assert!((0.05..1.0).contains(&f));
            let k: u32 = rng.random_range(0..=3);
            assert!(k <= 3);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads} heads");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
