//! Offline stub of the `proptest` crate: the strategy/macro subset this
//! workspace's property tests use.
//!
//! Differences from upstream worth knowing:
//! - No shrinking. A failing case panics with the generated inputs in the
//!   message instead of a minimized counterexample.
//! - Generation is deterministic: the RNG seed is derived from the test
//!   function's name, so failures reproduce exactly on re-run.

extern crate self as proptest;

pub mod test_runner {
    /// Per-test configuration accepted by
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Input rejected by `prop_assume!`; does not count as a failure.
        Reject(String),
        /// Assertion failure from `prop_assert!`/`prop_assert_eq!`.
        Fail(String),
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(pub rand::StdRng);

    impl TestRng {
        /// Seed deterministically from the test's name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(<rand::StdRng as rand::SeedableRng>::seed_from_u64(h))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.0)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy mapping another strategy's output (`prop_map`).
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone + std::fmt::Debug> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V: std::fmt::Debug> Union<V> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V: std::fmt::Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 * span) >> 64;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 * span) >> 64;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Marker strategy produced by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Strategy over the full value space of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Types with a canonical full-range strategy.
    pub trait ArbitraryValue: std::fmt::Debug {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl ArbitraryValue for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps failure messages readable.
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` strategy: `size` elements each drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy (`proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// The canonical `bool` strategy.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run each test body over many generated inputs.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(..)]` header and `fn name(arg in strategy, ..) {}`
/// items with doc comments / attributes.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            // Strategy expressions are cheap constructors; evaluating them
            // per case keeps this macro simple (args may be tuple patterns,
            // so they cannot name a once-evaluated strategy tuple).
            let mut rejects: u32 = 0;
            let max_rejects = config.cases.saturating_mul(20).max(1000);
            let mut ran: u32 = 0;
            while ran < config.cases {
                // `input_desc` is captured before the body runs: the body
                // may consume the generated values.
                let mut input_desc = String::new();
                $(
                    let generated =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    input_desc.push_str(stringify!($arg));
                    input_desc.push('=');
                    input_desc.push_str(&format!("{:?} ", generated));
                    let $arg = generated;
                )+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > max_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({rejects})",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\n  inputs: {}",
                            stringify!($name),
                            ran,
                            msg,
                            input_desc
                        );
                    }
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Skip the current case if `cond` is false (retries with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3usize..10, y in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Doc comments on inner fns must parse.
        #[test]
        fn vec_and_map(v in proptest::collection::vec(0u8..255, 0..50),
                       flag in proptest::bool::ANY) {
            prop_assert!(v.len() < 50);
            let doubled = (0u32..10).prop_map(|n| n * 2);
            let _ = flag;
            let mut rng = crate::test_runner::TestRng::from_name("inner");
            let d = doubled.generate(&mut rng);
            prop_assert!(d % 2 == 0, "expected even, got {}", d);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_assume(x in prop_oneof![0i64..10, 100i64..110], b in any::<u32>()) {
            prop_assume!(x != 5);
            prop_assert_ne!(x, 5);
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failure_panics() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
