//! Offline stub of the `parking_lot` crate: poison-free `Mutex` and
//! `RwLock` wrappers over `std::sync`, with `parking_lot`'s lock API
//! (no `Result`, guards returned directly).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock whose `lock` never returns a poison error: a
/// panic while holding the lock simply passes it to the next locker.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (`&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
