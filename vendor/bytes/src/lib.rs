//! Offline stub of the `bytes` crate: the subset of its API this workspace
//! uses, with the same semantics.
//!
//! [`Bytes`] is a cheaply clonable immutable byte buffer (static slice or
//! `Arc`-shared heap allocation), [`BytesMut`] a growable builder that
//! freezes into one, and [`Buf`]/[`BufMut`] the little-endian cursor
//! traits the wire codec reads and writes through.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared {
        buf: Arc<[u8]>,
        start: usize,
        end: usize,
    },
}

impl Bytes {
    /// Empty buffer (no allocation).
    pub const fn new() -> Self {
        Self {
            inner: Inner::Static(&[]),
        }
    }

    /// Buffer borrowing a static slice (no allocation).
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            inner: Inner::Static(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Zero-copy sub-range sharing the same backing buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            start <= end && end <= len,
            "slice range {start}..{end} out of bounds for {len} bytes"
        );
        match &self.inner {
            Inner::Static(s) => Bytes::from_static(&s[start..end]),
            Inner::Shared { buf, start: s0, .. } => Bytes {
                inner: Inner::Shared {
                    buf: buf.clone(),
                    start: s0 + start,
                    end: s0 + end,
                },
            },
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared { buf, start, end } => &buf[*start..*end],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            inner: Inner::Shared {
                buf: Arc::from(v),
                start: 0,
                end,
            },
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, which advances
/// the slice itself like the real crate.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// View of the remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Read a `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write cursor appending to a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_clone() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"hi")[..], b"hi");
    }

    #[test]
    fn slice_is_zero_copy_and_nestable() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = b.slice(2..8);
        assert_eq!(&s[..], &[2, 3, 4, 5, 6, 7]);
        let t = s.slice(1..=2);
        assert_eq!(&t[..], &[3, 4]);
        assert_eq!(&s.slice(..)[..], &s[..]);
        assert!(Bytes::from_static(b"abc").slice(1..).len() == 2);
        assert!(b.slice(10..).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_range_panics() {
        Bytes::from(vec![1, 2, 3]).slice(2..5);
    }

    #[test]
    fn bytes_mut_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(7);
        m.put_u32_le(0xDEAD_BEEF);
        assert_eq!(m.len(), 5);
        let b = m.freeze();
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], 7);
    }

    #[test]
    fn buf_cursor_over_slice() {
        let data = [1u8, 2, 0, 0, 0, 9];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u8(), 1);
        assert_eq!(cur.get_u32_le(), 2);
        assert_eq!(cur.remaining(), 1);
        cur.advance(1);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn le_integer_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u64_le(u64::MAX - 3);
        m.put_i64_le(-42);
        let b = m.freeze();
        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u64_le(), u64::MAX - 3);
        assert_eq!(cur.get_i64_le(), -42);
    }
}
