//! Offline stub of the `crossbeam` crate: the `channel` module subset this
//! workspace uses, implemented as an MPMC queue over `Mutex` + `Condvar`.
//!
//! Unlike `std::sync::mpsc`, both [`channel::Sender`] and
//! [`channel::Receiver`] are `Clone`, matching crossbeam semantics — the
//! runtime's persistent compute pool relies on multiple workers draining
//! one shared job queue.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    /// Receiving half; clonable (MPMC: clones compete for messages).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    /// Blocking iterator over received messages; ends at disconnect.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<i32>();
        let tx2 = tx.clone();
        tx.send(5).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(5), "queued messages drain after disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn timeout_and_wakeup() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let h = std::thread::spawn(move || tx.send(9).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        h.join().unwrap();
    }

    #[test]
    fn mpmc_competing_receivers() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h1 = std::thread::spawn(move || rx.iter().count());
        let h2 = std::thread::spawn(move || rx2.iter().count());
        assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 100);
    }
}
