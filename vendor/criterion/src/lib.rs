//! Offline stub of the `criterion` crate: the benchmark-harness subset this
//! workspace's `harness = false` benches use.
//!
//! Unlike a statistics-free mock, this stub really measures: each
//! `Bencher::iter` call is warmed up, then timed over a fixed wall-clock
//! window split into samples, reporting median/mean/min ns per iteration.
//! If the `EASYHPS_BENCH_JSON` environment variable names a file, every
//! result is appended to it as a JSON object per line (JSONL), which the
//! repo's benchmark scripts collect into `BENCH_PR1.json`.

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Input elements processed per iteration.
    Elements(u64),
    /// Input bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness state: holds the CLI filter.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; any
        // non-flag argument is a substring filter on benchmark names.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement: None,
        };
        f(&mut bencher);
        match bencher.measurement {
            Some(m) => report(&full, self.throughput, &m),
            None => eprintln!("{full}: bencher.iter was never called"),
        }
        self
    }

    /// End the group (parity with upstream; all reporting is immediate).
    pub fn finish(self) {}
}

/// Per-benchmark measurement driver passed to the closure.
pub struct Bencher {
    sample_size: usize,
    measurement: Option<Measurement>,
}

struct Measurement {
    /// ns/iter for each sample.
    samples: Vec<f64>,
}

const WARMUP: Duration = Duration::from_millis(120);
const MEASURE: Duration = Duration::from_millis(500);

impl Bencher {
    /// Time `routine`, running it enough times for stable samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample lasts roughly
        // MEASURE / sample_size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let sample_ns = MEASURE.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((sample_ns / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.measurement = Some(Measurement { samples });
    }
}

fn report(name: &str, throughput: Option<Throughput>, m: &Measurement) {
    let mut sorted = m.samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let min = sorted[0];

    let thr = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.3} Melem/s)", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                " ({:.3} MiB/s)",
                n as f64 / median * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("{name:<48} median {median:>12.1} ns/iter  mean {mean:>12.1}  min {min:>12.1}{thr}");

    if let Ok(path) = std::env::var("EASYHPS_BENCH_JSON") {
        let (thr_kind, thr_amount) = match throughput {
            Some(Throughput::Elements(n)) => ("elements", n),
            Some(Throughput::Bytes(n)) => ("bytes", n),
            None => ("none", 0),
        };
        let line = format!(
            concat!(
                "{{\"name\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},",
                "\"min_ns\":{:.1},\"throughput\":\"{}\",\"throughput_amount\":{}}}\n"
            ),
            name, median, mean, min, thr_kind, thr_amount
        );
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = res {
            eprintln!("warning: could not append bench result to {path}: {e}");
        }
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion { filter: None };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("test_group");
            g.sample_size(3)
                .throughput(Throughput::Elements(10))
                .bench_function("spin", |b| {
                    b.iter(|| (0..100u64).sum::<u64>());
                    ran = true;
                });
            g.finish();
        }
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".into()),
        };
        let mut ran = false;
        let mut g = c.benchmark_group("grp");
        g.bench_function("this", |_b| ran = true);
        g.finish();
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
