//! A user-defined DP problem end to end: custom recurrence via closures
//! and a user-defined DAG Pattern Model — the paper's "user-defined
//! patterns" path (§IV-C).
//!
//! The recurrence: minimum-cost monotone lattice path where each cell also
//! charges the *best of the previous row's prefix* (a contrived but
//! genuinely non-library dependency shape, mixing wavefront ordering with
//! a row-prefix read — expressible with `RowLookback2D`).
//!
//! ```text
//! cargo run --release --example custom_recurrence
//! ```

use easyhps::core::patterns::RowLookback2D;
use easyhps::dp::{ClosureProblem, DpProblem};
use easyhps::{EasyHps, GridDims, GridPos};
use std::sync::Arc;

/// Deterministic terrain cost for cell `(i, j)`.
fn terrain(i: u32, j: u32) -> i64 {
    let h = (i as u64)
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add((j as u64) << 17);
    ((h >> 7) % 23) as i64 + 1
}

fn main() {
    let n = 64u32;
    let dims = GridDims::square(n);

    // Recurrence: C[0][j] = terrain; C[i][j] = terrain(i,j) +
    //   min( C[i-1][j], min_{k<=j} C[i-1][k] + (j - k) )  — descend
    // straight down, or jump from any earlier column of the previous row
    // paying 1 per column skipped. The prefix-min makes the row above a
    // data dependency in full, exactly what RowLookback2D declares.
    let pattern = Arc::new(RowLookback2D::new(dims));
    let problem = ClosureProblem::<i64>::builder_with_pattern("lattice-path", pattern)
        .cell(move |ctx, p: GridPos| {
            let base = terrain(p.row, p.col);
            if p.row == 0 {
                return base;
            }
            let mut best = ctx.get(p.row - 1, p.col);
            for k in 0..=p.col {
                let cand = ctx.get(p.row - 1, k) + (p.col - k) as i64;
                if cand < best {
                    best = cand;
                }
            }
            base + best
        })
        .work(|p| p.col as u64 + 1)
        .build();

    let reference = problem.solve_sequential();

    let out = EasyHps::new(problem)
        .process_partition((16, 16))
        .thread_partition((4, 4))
        .slaves(3)
        .threads_per_slave(2)
        .run()
        .expect("run succeeds");

    // Best entry in the last row is the cheapest full descent.
    let (best_col, best_cost) = (0..n)
        .map(|j| (j, out.matrix.get(n - 1, j)))
        .min_by_key(|(_, c)| *c)
        .unwrap();
    println!("cheapest descent reaches column {best_col} at cost {best_cost}");
    println!(
        "runtime: {} tiles over {} slaves in {:.2?}",
        out.report.master.completed,
        out.report.slaves.len(),
        out.report.elapsed
    );
    println!("\nmaster-observed schedule:");
    print!("{}", out.report.trace.gantt(72));

    assert_eq!(out.matrix, reference, "multilevel result equals sequential");
    println!("verified against sequential reference");
}
