//! Local DNA alignment with a general (logarithmic) gap function — the
//! paper's primary workload — on the multilevel runtime.
//!
//! A general gap penalty makes Smith-Waterman a 2D/1D recurrence: every
//! cell scans its whole row and column prefix, and every tile needs full
//! row/column strips from the master. This example plants a gene-like
//! segment (with an intron-like insertion) inside two random backgrounds
//! and lets the runtime find it.
//!
//! ```text
//! cargo run --release --example swgg_alignment
//! ```

use easyhps::dp::sequence::{random_sequence, Alphabet};
use easyhps::dp::{GapPenalty, SmithWatermanGeneralGap, Substitution};
use easyhps::EasyHps;

fn main() {
    // A conserved segment planted in two unrelated backgrounds.
    let gene = random_sequence(Alphabet::Dna, 60, 7);
    let mut a = random_sequence(Alphabet::Dna, 40, 1);
    a.extend_from_slice(&gene);
    a.extend(random_sequence(Alphabet::Dna, 40, 2));

    let mut b = random_sequence(Alphabet::Dna, 25, 3);
    b.extend_from_slice(&gene[..30]);
    b.extend(random_sequence(Alphabet::Dna, 9, 4)); // intron-like insertion
    b.extend_from_slice(&gene[30..]);
    b.extend(random_sequence(Alphabet::Dna, 25, 5));

    let problem = SmithWatermanGeneralGap::new(
        a.clone(),
        b.clone(),
        Substitution::dna_default(),
        GapPenalty::Logarithmic { a: 4, b: 2 },
    );

    let out = EasyHps::new(problem)
        .process_partition((35, 35))
        .thread_partition((7, 7))
        .slaves(3)
        .threads_per_slave(3)
        .run()
        .expect("run succeeds");

    let problem = SmithWatermanGeneralGap::new(
        a,
        b,
        Substitution::dna_default(),
        GapPenalty::Logarithmic { a: 4, b: 2 },
    );
    let alignment = problem.traceback(&out.matrix);
    println!("best local alignment:\n{alignment}");
    println!(
        "\nruntime: {} tiles, {} bytes through the master, {:.2?} wall",
        out.report.master.completed, out.report.master.bytes_sent, out.report.elapsed
    );
    assert!(
        alignment.score > 60,
        "the planted segment should score highly"
    );
    assert!(
        alignment.a_aligned.contains(&b'-') || alignment.b_aligned.contains(&b'-'),
        "the insertion should align as a gap"
    );
}
