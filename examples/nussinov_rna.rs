//! RNA secondary-structure prediction (Nussinov) on the multilevel
//! runtime — the paper's second workload, a triangular 2D/1D recurrence
//! whose work grows toward the upper-right corner of the matrix.
//!
//! ```text
//! cargo run --release --example nussinov_rna
//! ```

use easyhps::dp::sequence::{random_sequence, to_fasta, Alphabet};
use easyhps::dp::{DpProblem, Nussinov};
use easyhps::EasyHps;

fn main() {
    // A hairpin-rich synthetic RNA: a stem, a loop, and a random tail.
    let mut rna = b"GGGGCCCCAUAUAUGGGG".to_vec();
    rna.extend(random_sequence(Alphabet::Rna, 80, 11));
    rna.extend(b"CCCC");

    println!(
        "{}",
        to_fasta(&[("synthetic hairpin RNA".to_string(), rna.clone())])
    );

    let problem = Nussinov::new(rna.clone());
    let out = EasyHps::new(problem)
        .process_partition((20, 20))
        .thread_partition((5, 5))
        .slaves(3)
        .threads_per_slave(2)
        .run()
        .expect("run succeeds");

    let problem = Nussinov::new(rna.clone());
    let pairs = problem.traceback(&out.matrix);
    println!("maximum base pairs: {}", problem.max_pairs(&out.matrix));
    println!("{}", String::from_utf8_lossy(&rna));
    println!("{}", problem.dot_bracket(&pairs));

    println!(
        "\nruntime: {} tiles over {} slaves, {} sub-sub-tasks, {:.2?} wall",
        out.report.master.completed,
        out.report.slaves.len(),
        out.report.total_subtasks(),
        out.report.elapsed
    );

    let reference = problem.solve_sequential();
    assert_eq!(
        problem.max_pairs(&out.matrix),
        problem.max_pairs(&reference)
    );
    println!("verified against sequential reference");
}
