//! Quickstart: parallel edit distance through the EasyHPS API.
//!
//! Exercises every Table-I knob of the DAG Data Driven Model: the pattern
//! (picked from the library by the problem), `dag_size` (from the input),
//! both partition sizes, and the default data-mapping function.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use easyhps::dp::{DpProblem, EditDistance, EditOp};
use easyhps::EasyHps;

fn main() {
    let a = b"the quick brown fox jumps over the lazy dog".to_vec();
    let b = b"the quirky brown fox jumped over a lazy frog".to_vec();
    let problem = EditDistance::new(a.clone(), b.clone());

    // Deploy on 2 virtual slave nodes x 2 computing threads; 12x12
    // process-level tiles, 4x4 thread-level sub-tiles.
    let out = EasyHps::new(problem)
        .process_partition((12, 12))
        .thread_partition((4, 4))
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .expect("run succeeds");

    // Read the answer back and reconstruct the edit script.
    let problem = EditDistance::new(a.clone(), b.clone());
    let distance = problem.distance(&out.matrix);
    let ops = problem.traceback(&out.matrix);

    println!("edit distance: {distance}");
    println!(
        "script: {} keep, {} substitute, {} insert, {} delete",
        ops.iter().filter(|o| matches!(o, EditOp::Keep)).count(),
        ops.iter()
            .filter(|o| matches!(o, EditOp::Substitute))
            .count(),
        ops.iter().filter(|o| matches!(o, EditOp::Insert)).count(),
        ops.iter().filter(|o| matches!(o, EditOp::Delete)).count(),
    );
    println!(
        "runtime: {} master sub-tasks over {} slaves in {:.2?} ({} sub-sub-tasks)",
        out.report.master.completed,
        out.report.slaves.len(),
        out.report.elapsed,
        out.report.total_subtasks(),
    );

    // Sanity: the parallel result matches the sequential reference.
    let reference = problem.solve_sequential();
    assert_eq!(out.matrix, reference);
    println!("verified against sequential reference");
}
