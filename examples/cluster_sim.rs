//! Cluster-scale what-if analysis with the deterministic simulator: how
//! should a 30-core budget be split across nodes, and what does dynamic
//! scheduling buy over the static block-cyclic wavefront?
//!
//! This drives the same machinery that regenerates the paper's figures
//! (see `cargo run --release -p easyhps-bench --bin figures`), at a scale
//! that finishes in a couple of seconds.
//!
//! ```text
//! cargo run --release --example cluster_sim
//! ```

use easyhps::sim::{
    bcw_baseline, render_table, sequential_ns, simulate, simulate_traced, CostModel, Experiment,
    Series, SimWorkload,
};

fn main() {
    let cost = CostModel::tianhe1a();
    let workload = SimWorkload::nussinov(3_000, 150, 10);
    let seq = sequential_ns(&workload, &cost);
    println!(
        "workload: {} ({} master tiles), sequential baseline {:.2}s\n",
        workload.name,
        workload.model.master_dag().len(),
        seq as f64 / 1e9
    );

    // Question 1: best node grouping for a fixed 30-core budget.
    let mut grouping = Series::new("elapsed (s)");
    let mut speedups = Series::new("speedup");
    for nodes in [2u32, 3, 4, 5] {
        let e = Experiment::new(nodes, 30);
        if !e.is_valid() {
            continue;
        }
        let r = simulate(&workload, &e.config(cost));
        grouping.push(nodes as f64, r.seconds());
        speedups.push(nodes as f64, seq as f64 / r.makespan_ns as f64);
    }
    println!(
        "{}",
        render_table(
            "30 total cores, split across X nodes (Experiment_X_30)",
            "nodes",
            &[grouping, speedups,]
        )
    );

    // Question 2: dynamic pool vs static block-cyclic wavefront.
    let e = Experiment::new(4, 30);
    let dyn_r = simulate(&workload, &e.config(cost));
    let mut bcw_cfg = e.config(cost);
    let (pm, tm) = bcw_baseline();
    bcw_cfg.process_mode = pm;
    bcw_cfg.thread_mode = tm;
    let bcw_r = simulate(&workload, &bcw_cfg);
    println!("Experiment_4_30, dynamic:      {:.3}s", dyn_r.seconds());
    println!("Experiment_4_30, block-cyclic: {:.3}s", bcw_r.seconds());
    println!(
        "BCW / EasyHPS ratio: {:.3} (above 1.0 -> the dynamic pool wins)",
        bcw_r.makespan_ns as f64 / dyn_r.makespan_ns as f64
    );

    // Question 3: what does the schedule look like? (Gantt of a small run;
    // letters cycle with the tile's anti-diagonal, dots are idle time.)
    let small = SimWorkload::nussinov(600, 100, 10);
    let (_, trace) = simulate_traced(&small, &Experiment::new(4, 18).config(cost));
    println!("\nschedule of nussinov(600) on Experiment_4_18:");
    print!("{}", trace.gantt(72));

    // Question 4: where does the time go?
    println!(
        "\ndynamic run breakdown: {:.1}% compute-parallel efficiency, {} MB moved, master busy {:.1} ms",
        100.0 * dyn_r.compute_ns as f64
            / (dyn_r.makespan_ns as f64 * e.computing_cores() as f64),
        dyn_r.bytes_moved / 1_000_000,
        dyn_r.master_busy_ns as f64 / 1e6
    );
}
