//! Viterbi decoding of a hidden Markov model on the multilevel runtime.
//!
//! The classic occasionally-dishonest-casino HMM: a fair die and a loaded
//! die, switching rarely. The trellis rows are time steps and must be
//! partitioned as full-row bands (the `PrevRow2D` pattern — every cell
//! reads the whole previous row).
//!
//! ```text
//! cargo run --release --example viterbi_hmm
//! ```

use easyhps::dp::{DpProblem, Hmm, Viterbi};
use easyhps::EasyHps;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // States: 0 = fair, 1 = loaded. Symbols: die faces 0..6.
    let stay = 0.95f64;
    let hmm = Hmm {
        states: 2,
        symbols: 6,
        log_init: vec![0.5f64.ln(), 0.5f64.ln()],
        log_trans: vec![stay.ln(), (1.0 - stay).ln(), (1.0 - stay).ln(), stay.ln()],
        log_emit: {
            let fair = vec![(1.0 / 6.0f64).ln(); 6];
            // Loaded die: six comes up half the time.
            let mut loaded = vec![0.1f64.ln(); 5];
            loaded.push(0.5f64.ln());
            [fair, loaded].concat()
        },
    };

    // Simulate 120 rolls with a hidden switch to the loaded die.
    let mut rng = StdRng::seed_from_u64(7);
    let mut truth = Vec::new();
    let mut rolls = Vec::new();
    let mut state = 0usize;
    for _ in 0..120 {
        if rng.random_bool(0.05) {
            state = 1 - state;
        }
        truth.push(state);
        let face: u32 = if state == 0 {
            rng.random_range(0..6)
        } else if rng.random_bool(0.5) {
            5
        } else {
            rng.random_range(0..5)
        };
        rolls.push(face);
    }

    let problem = Viterbi::new(hmm.clone(), rolls.clone());
    let reference = problem.solve_sequential();

    // Full-row process tiles (2 states wide), 8 time steps per band.
    let out = EasyHps::new(Viterbi::new(hmm, rolls.clone()))
        .process_partition((8, 2))
        .thread_partition((2, 2))
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .expect("run succeeds");
    assert_eq!(out.matrix, reference);

    let decoded = problem.best_path(&out.matrix);
    let agree = decoded.iter().zip(&truth).filter(|(a, b)| a == b).count();
    println!(
        "decoded {} rolls; best path log-prob {:.2}; agreement with hidden truth {}/{}",
        rolls.len(),
        problem.best_log_prob(&out.matrix),
        agree,
        truth.len()
    );
    let render = |path: &[usize]| -> String {
        path.iter()
            .map(|&s| if s == 0 { '.' } else { 'L' })
            .collect()
    };
    println!("truth:   {}", render(&truth));
    println!("decoded: {}", render(&decoded));
    println!(
        "\nruntime: {} row-band tiles over {} slaves in {:.2?}",
        out.report.master.completed,
        out.report.slaves.len(),
        out.report.elapsed
    );
    assert!(
        agree * 10 >= truth.len() * 6,
        "Viterbi should recover well over half the hidden states"
    );
}
