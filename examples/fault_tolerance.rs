//! Fault-tolerance drill: kill a slave node mid-run and inject computing-
//! thread panics; the hierarchical fault tolerance (paper §V) must recover
//! both and still produce the exact sequential result.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use easyhps::dp::sequence::{random_sequence, Alphabet};
use easyhps::dp::{DpProblem, EditDistance};
use easyhps::net::FaultPlan;
use easyhps::runtime::testing::FaultyProblem;
use easyhps::EasyHps;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let a = random_sequence(Alphabet::Dna, 60, 1);
    let b = random_sequence(Alphabet::Dna, 60, 2);
    let inner = EditDistance::new(a, b);
    let reference = inner.solve_sequential();

    // Thread-level faults: the first 4 kernel invocations panic (caught by
    // the slave worker pool, sub-sub-task re-queued). Keep a handle so we
    // can confirm every injected panic actually fired.
    let problem = Arc::new(FaultyProblem::new(inner, 4));

    // Process-level fault: slave 0's endpoint dies after 3 sends — a node
    // crash. The master's overtime queue times its sub-task out,
    // redistributes it, and excludes the node.
    let out = EasyHps::new_shared(problem.clone())
        .process_partition((12, 12))
        .thread_partition((4, 4))
        .slaves(3)
        .threads_per_slave(2)
        .task_timeout(Duration::from_millis(400))
        .inject_fault(0, FaultPlan::die_after(3))
        .run()
        .expect("survives both fault classes");

    println!("matrix correct: {}", out.matrix == reference);
    assert_eq!(out.matrix, reference);

    let m = &out.report.master;
    println!(
        "dispatched {} sub-tasks ({} re-dispatched after timeout)",
        m.dispatched, m.redispatched
    );
    println!("dead slaves: {}", m.dead_slaves);
    println!("stale completions ignored: {}", m.stale_completions);
    let thread_failures: u64 = out
        .report
        .slaves
        .iter()
        .flatten()
        .map(|s| s.thread_failures)
        .sum();
    println!(
        "thread-level panics fired: {} (recovered; {} counted by surviving slaves, the rest died with their node)",
        4 - problem.failures_left(),
        thread_failures
    );
    for (i, s) in out.report.slaves.iter().enumerate() {
        match s {
            Some(s) => println!(
                "  slave {i}: {} tiles, {} sub-sub-tasks, {:.2} ms busy",
                s.tasks_done,
                s.subtasks_done,
                s.busy_ns as f64 / 1e6
            ),
            None => println!("  slave {i}: died (no final stats)"),
        }
    }
    assert_eq!(m.dead_slaves, 1);
    assert_eq!(problem.failures_left(), 0, "all injected panics fired");
    println!("\nrecovered from a node crash and 4 thread panics; result exact");
}
