//! Property-based tests for the cluster simulator: conservation,
//! determinism, and monotonicity under arbitrary configurations.

use easyhps_core::ScheduleMode;
use easyhps_sim::{sequential_ns, simulate, SimConfig, SimWorkload};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = SimWorkload> {
    (100u32..500, 20u32..80, 2u32..12, 0usize..3).prop_map(|(len, pps, tps, kind)| {
        let tps = tps.min(pps);
        match kind {
            0 => SimWorkload::swgg(len, pps, tps),
            1 => SimWorkload::nussinov(len.max(pps), pps, tps),
            _ => SimWorkload::wavefront(len, pps, tps),
        }
    })
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (1usize..5, 1usize..8, 0usize..3, 0u32..30).prop_map(|(nodes, ct, mode, jitter)| {
        let mut cfg = SimConfig::uniform(nodes, ct);
        cfg.cost.jitter_pct = jitter;
        let m = match mode {
            0 => ScheduleMode::Dynamic,
            1 => ScheduleMode::BlockCyclic {
                block: 1 + jitter % 3,
            },
            _ => ScheduleMode::ColumnWavefront,
        };
        cfg.process_mode = m;
        cfg.thread_mode = m;
        cfg
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every tile executes exactly once, and messages pair up two per tile.
    #[test]
    fn conservation(w in arb_workload(), cfg in arb_config()) {
        let r = simulate(&w, &cfg);
        prop_assert_eq!(r.tiles, w.model.master_dag().len() as u64);
        prop_assert_eq!(r.msgs, 2 * r.tiles);
        prop_assert_eq!(r.redispatched, 0);
        prop_assert_eq!(r.dead_nodes, 0);
    }

    /// Simulation is a pure function of (workload, config).
    #[test]
    fn determinism(w in arb_workload(), cfg in arb_config()) {
        prop_assert_eq!(simulate(&w, &cfg), simulate(&w, &cfg));
    }

    /// Makespan is bounded below by compute/cores and never beats the
    /// sequential baseline by more than the core count allows.
    #[test]
    fn physical_bounds(w in arb_workload(), cfg in arb_config()) {
        let r = simulate(&w, &cfg);
        let cores: u64 = cfg.threads.iter().map(|&t| t as u64).sum();
        prop_assert!(r.makespan_ns >= r.compute_ns / cores);
        // Jitter can shrink task times by at most 30%; overheads only add.
        let seq = sequential_ns(&w, &cfg.cost) as f64;
        prop_assert!(
            (r.makespan_ns as f64) * (cores as f64) >= seq * 0.65,
            "superlinear speedup: {} cores, makespan {}, seq {}",
            cores, r.makespan_ns, seq
        );
    }

    /// Adding a node (same threads each) never slows the dynamic pool by
    /// more than a whisker (jitter reshuffles can cost a little).
    #[test]
    fn more_nodes_do_not_hurt_much(
        w in arb_workload(),
        nodes in 1usize..4,
        ct in 1usize..6,
    ) {
        let small = simulate(&w, &SimConfig::uniform(nodes, ct)).makespan_ns;
        let big = simulate(&w, &SimConfig::uniform(nodes + 1, ct)).makespan_ns;
        prop_assert!(
            (big as f64) <= (small as f64) * 1.10,
            "adding a node slowed the run: {small} -> {big}"
        );
    }

    /// Doubling every node's thread count never hurts the dynamic pool
    /// beyond jitter noise.
    #[test]
    fn more_threads_do_not_hurt_much(
        w in arb_workload(),
        nodes in 1usize..4,
        ct in 1usize..5,
    ) {
        let small = simulate(&w, &SimConfig::uniform(nodes, ct)).makespan_ns;
        let big = simulate(&w, &SimConfig::uniform(nodes, ct * 2)).makespan_ns;
        prop_assert!(
            (big as f64) <= (small as f64) * 1.05,
            "doubling threads slowed the run: {small} -> {big}"
        );
    }

    /// A single node crash is always survived (with the other nodes alive)
    /// and every tile still executes.
    #[test]
    fn single_crash_is_survived(
        w in arb_workload(),
        nodes in 2usize..5,
        ct in 1usize..5,
        victim_frac in 0.0f64..1.0,
    ) {
        let healthy = simulate(&w, &SimConfig::uniform(nodes, ct));
        let at = (healthy.makespan_ns as f64 * victim_frac) as u64;
        let mut cfg = SimConfig::uniform(nodes, ct).fail_node(nodes - 1, at);
        cfg.task_timeout_ns = (healthy.makespan_ns / 10).max(1);
        let r = simulate(&w, &cfg);
        prop_assert_eq!(r.tiles, w.model.master_dag().len() as u64);
        prop_assert!(r.dead_nodes <= 1);
    }
}
