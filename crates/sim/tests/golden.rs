//! Golden-series regression: the simulator must reproduce a committed
//! figure series byte-for-byte. Any change to the cost model, scheduling
//! policy or event ordering shows up here as a diff, forcing a deliberate
//! regeneration (and an EXPERIMENTS.md update) instead of a silent drift
//! of the paper reproduction.

use easyhps_sim::{render_csv, scaling_series, CostModel, SimWorkload};

#[test]
fn nussinov_scaling_series_matches_golden_csv() {
    let w = SimWorkload::nussinov(1_000, 100, 10);
    let series = scaling_series(&w, CostModel::tianhe1a());
    let csv = render_csv("cores", &series);
    let golden = include_str!("golden_nussinov_1000.csv");
    assert_eq!(
        csv, golden,
        "simulator output drifted from the committed golden series; if the \
         change is intentional, regenerate the CSV and re-run the paper \
         figures (see EXPERIMENTS.md)"
    );
}
