//! Simulated workloads: the paper's benchmark problems as cost profiles.
//!
//! A [`SimWorkload`] is everything the simulator needs without actual
//! sequence data: the DAG Data Driven Model (pattern + both partition
//! sizes) and a closed-form work function per cell region. Work functions
//! match the `cell_work` definitions of the real kernels in `easyhps-dp`,
//! so the simulated load imbalance is the real one.

use easyhps_core::patterns::{RowColumn2D1D, TriangularGap, Wavefront2D};
use easyhps_core::{DagDataDrivenModel, GridDims, TileRegion};
use std::sync::Arc;

/// How work is distributed over the matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkProfile {
    /// Constant work per cell (2D/0D kernels).
    Uniform,
    /// `i + j + 1` per cell: the SWGG row+column scans.
    RowColScan,
    /// `j - i + 1` per upper-triangle cell: the Nussinov bifurcation scan.
    TriangularScan,
}

impl WorkProfile {
    /// Total work of `region` (cells outside a triangular pattern count
    /// zero for [`WorkProfile::TriangularScan`]).
    pub fn region_work(&self, region: TileRegion) -> u64 {
        if region.is_empty() {
            return 0;
        }
        let rows = region.rows() as u64;
        let cols = region.cols() as u64;
        match self {
            WorkProfile::Uniform => rows * cols,
            WorkProfile::RowColScan => {
                // sum_{i,j} (i + j + 1), exact closed form.
                let sum_i = rows * (region.row_start as u64 + region.row_end as u64 - 1) / 2;
                let sum_j = cols * (region.col_start as u64 + region.col_end as u64 - 1) / 2;
                sum_i * cols + sum_j * rows + rows * cols
            }
            WorkProfile::TriangularScan => {
                // Per-row arithmetic series over the triangle intersection.
                let mut total = 0u64;
                for i in region.row_start..region.row_end {
                    let j0 = region.col_start.max(i);
                    if j0 >= region.col_end {
                        continue;
                    }
                    // sum_{j=j0}^{col_end-1} (j - i + 1)
                    let n = (region.col_end - j0) as u64;
                    let first = (j0 - i) as u64 + 1;
                    let last = (region.col_end - 1 - i) as u64 + 1;
                    total += n * (first + last) / 2;
                }
                total
            }
        }
    }
}

/// A workload the cluster simulator can run.
#[derive(Clone)]
pub struct SimWorkload {
    /// Display name.
    pub name: String,
    /// The DAG Data Driven Model (pattern + partition sizes).
    pub model: DagDataDrivenModel,
    /// Work distribution.
    pub profile: WorkProfile,
    /// Bytes per matrix cell on the wire.
    pub cell_bytes: u64,
}

impl std::fmt::Debug for SimWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorkload")
            .field("name", &self.name)
            .field("model", &self.model)
            .field("profile", &self.profile)
            .finish()
    }
}

impl SimWorkload {
    /// The paper's primary workload: Smith-Waterman general gap over
    /// sequences of length `seq_len` (matrix `(n+1)^2`), with the paper's
    /// partition sizes as defaults (`pps = 200`, `tps = 10` at
    /// `seq_len = 10000`).
    pub fn swgg(seq_len: u32, pps: u32, tps: u32) -> Self {
        let dims = GridDims::square(seq_len + 1);
        let model = DagDataDrivenModel::builder(Arc::new(RowColumn2D1D::new(dims)))
            .process_partition_size(GridDims::square(pps))
            .thread_partition_size(GridDims::square(tps))
            .build();
        Self {
            name: format!("swgg-{seq_len}"),
            model,
            profile: WorkProfile::RowColScan,
            cell_bytes: 4,
        }
    }

    /// The paper's second workload: Nussinov over a sequence of length
    /// `len` (upper-triangular `len x len`).
    pub fn nussinov(len: u32, pps: u32, tps: u32) -> Self {
        let model = DagDataDrivenModel::builder(Arc::new(TriangularGap::new(len)))
            .process_partition_size(GridDims::square(pps))
            .thread_partition_size(GridDims::square(tps))
            .build();
        Self {
            name: format!("nussinov-{len}"),
            model,
            profile: WorkProfile::TriangularScan,
            cell_bytes: 4,
        }
    }

    /// A uniform 2D/0D wavefront (edit-distance-like), useful for
    /// ablations where load is perfectly balanced.
    pub fn wavefront(n: u32, pps: u32, tps: u32) -> Self {
        let dims = GridDims::square(n + 1);
        let model = DagDataDrivenModel::builder(Arc::new(Wavefront2D::new(dims)))
            .process_partition_size(GridDims::square(pps))
            .thread_partition_size(GridDims::square(tps))
            .build();
        Self {
            name: format!("wavefront-{n}"),
            model,
            profile: WorkProfile::Uniform,
            cell_bytes: 4,
        }
    }

    /// Work of one cell region under this workload.
    pub fn region_work(&self, region: TileRegion) -> u64 {
        self.profile.region_work(region)
    }

    /// Total work of the whole problem (the sequential-baseline numerator).
    pub fn total_work(&self) -> u64 {
        let d = self.model.dag_size();
        self.region_work(TileRegion::new(0, d.rows, 0, d.cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::GridPos;

    #[test]
    fn uniform_work_is_area() {
        assert_eq!(
            WorkProfile::Uniform.region_work(TileRegion::new(2, 5, 1, 4)),
            9
        );
    }

    #[test]
    fn rowcol_matches_brute_force() {
        for region in [
            TileRegion::new(0, 4, 0, 4),
            TileRegion::new(3, 9, 10, 20),
            TileRegion::new(100, 101, 0, 1),
        ] {
            let brute: u64 = region.iter().map(|p| p.row as u64 + p.col as u64 + 1).sum();
            assert_eq!(
                WorkProfile::RowColScan.region_work(region),
                brute,
                "{region:?}"
            );
        }
    }

    #[test]
    fn triangular_matches_brute_force() {
        for region in [
            TileRegion::new(0, 5, 0, 5),  // straddles the diagonal
            TileRegion::new(0, 4, 8, 12), // fully above
            TileRegion::new(8, 12, 0, 4), // fully below -> zero
            TileRegion::new(2, 7, 5, 9),  // partial
        ] {
            let brute: u64 = region
                .iter()
                .filter(|p| p.col >= p.row)
                .map(|p| (p.col - p.row) as u64 + 1)
                .sum();
            assert_eq!(
                WorkProfile::TriangularScan.region_work(region),
                brute,
                "{region:?}"
            );
        }
    }

    #[test]
    fn workload_work_matches_real_kernels() {
        // The sim profiles must agree with the cell_work of the real
        // kernels in easyhps-dp.
        use easyhps_dp::sequence::{random_sequence, Alphabet};
        use easyhps_dp::DpProblem;
        let a = random_sequence(Alphabet::Dna, 30, 1);
        let b = random_sequence(Alphabet::Dna, 30, 2);
        let real = easyhps_dp::SmithWatermanGeneralGap::dna(a, b);
        let sim = SimWorkload::swgg(30, 10, 5);
        for region in [
            TileRegion::new(0, 10, 0, 10),
            TileRegion::new(10, 20, 20, 31),
        ] {
            assert_eq!(sim.region_work(region), real.region_work(region));
        }

        let rna = random_sequence(Alphabet::Rna, 40, 3);
        let real = easyhps_dp::Nussinov::new(rna);
        let sim = SimWorkload::nussinov(40, 10, 5);
        for region in [
            TileRegion::new(0, 10, 0, 10),
            TileRegion::new(0, 20, 20, 40),
        ] {
            let brute: u64 = region
                .iter()
                .filter(|p| real.pattern().contains(*p))
                .map(|p| real.cell_work(GridPos::new(p.row, p.col)))
                .sum();
            assert_eq!(sim.region_work(region), brute);
        }
    }

    #[test]
    fn paper_scale_workload_is_cheap_to_build() {
        let w = SimWorkload::swgg(10_000, 200, 10);
        assert_eq!(w.model.rect_size(), GridDims::square(51)); // 10001/200
        assert!(w.total_work() > 0);
        let n = SimWorkload::nussinov(10_000, 200, 10);
        assert_eq!(n.model.rect_size(), GridDims::square(50));
    }
}
