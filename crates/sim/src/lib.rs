//! # easyhps-sim — deterministic cluster simulation of EasyHPS
//!
//! The paper evaluates EasyHPS on Tianhe-1A with 2-5 multi-core nodes. This
//! crate reproduces those experiments without the cluster: a discrete-event
//! simulation executes the *same* abstract DAGs under the *same* scheduling
//! policies (`easyhps_core::ScheduleMode`, shared with the real runtime) in
//! virtual time, pricing compute and communication with calibrated cost
//! models. Every run is deterministic, so the figures regenerate
//! byte-identically.
//!
//! ```
//! use easyhps_sim::{simulate, sequential_ns, CostModel, SimConfig, SimWorkload};
//!
//! let workload = SimWorkload::swgg(1000, 100, 10);
//! let result = simulate(&workload, &SimConfig::uniform(3, 8));
//! let seq = sequential_ns(&workload, &CostModel::tianhe1a());
//! assert!(result.makespan_ns < seq, "24 cores beat 1 core");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cluster;
mod cost;
mod experiment;
mod pool_sim;
mod report;
mod workload;

pub use cluster::{sequential_ns, simulate, simulate_traced, SimConfig, SimResult};
pub use cost::CostModel;
pub use easyhps_core::{Span, Trace};
pub use experiment::{
    bcw_baseline, bcw_ratio_series, node_comparison_series, scaling_series, speedup_series,
    Experiment, NODE_COUNTS,
};
pub use pool_sim::{simulate_pool, simulate_pool_logged, PoolOutcome};
pub use report::{render_csv, render_table, Series};
pub use workload::{SimWorkload, WorkProfile};
