//! Series containers and plain-text rendering for experiment reports.

use std::fmt::Write as _;

/// One labelled data series (a line on a paper figure).
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// Render series as an aligned text table: one row per x, one column per
/// series. Missing points print as `-`.
pub fn render_table(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let mut header = format!("{x_label:>10}");
    for s in series {
        let _ = write!(header, " {:>18}", s.label);
    }
    let _ = writeln!(out, "{header}");
    for x in xs {
        let _ = write!(out, "{x:>10.0}");
        for s in series {
            match s.y_at(x) {
                Some(y) => {
                    let _ = write!(out, " {y:>18.4}");
                }
                None => {
                    let _ = write!(out, " {:>18}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render series as CSV (`x,label1,label2,...`).
pub fn render_csv(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mut out = String::new();
    let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    let _ = writeln!(out, "{x_label},{}", labels.join(","));
    for x in xs {
        let _ = write!(out, "{x}");
        for s in series {
            match s.y_at(x) {
                Some(y) => {
                    let _ = write!(out, ",{y}");
                }
                None => out.push(','),
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Vec<Series> {
        let mut a = Series::new("two");
        a.push(1.0, 2.0);
        a.push(2.0, 4.0);
        let mut b = Series::new("three");
        b.push(1.0, 3.0);
        b.push(3.0, 9.0);
        vec![a, b]
    }

    #[test]
    fn y_at_finds_points() {
        let s = &demo()[0];
        assert_eq!(s.y_at(1.0), Some(2.0));
        assert_eq!(s.y_at(9.0), None);
    }

    #[test]
    fn table_includes_all_x_and_gaps() {
        let t = render_table("demo", "x", &demo());
        assert!(t.contains("# demo"));
        assert!(t.contains("two"));
        assert!(t.contains("three"));
        // x=2 exists only in "two"; x=3 only in "three".
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2 + 3, "title + header + 3 x rows");
        assert!(lines[3].contains('-') || lines[4].contains('-'));
    }

    #[test]
    fn csv_roundtrips_structure() {
        let c = render_csv("cores", &demo());
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "cores,two,three");
        assert_eq!(lines.next().unwrap(), "1,2,3");
        assert_eq!(lines.next().unwrap(), "2,4,");
        assert_eq!(lines.next().unwrap(), "3,,9");
    }
}
