//! Virtual-time worker-pool simulation.
//!
//! Simulates a pool of identical executors (the slave part's computing
//! threads) draining a [`TaskDag`] under a scheduling policy.
//! Deterministic: ties break on insertion sequence.
//!
//! This driver contains **no scheduling policy of its own**: every
//! decision — which worker takes which task, what a completion unblocks —
//! comes from the same [`PoolSched`] state machine the threaded runtime
//! drives. The simulator only supplies virtual time: dispatches go into a
//! finish-time heap instead of worker channels, and each heap pop is fed
//! back as a [`PoolEvent::WorkerDone`]. Any makespan the simulator
//! predicts is therefore a property of the real scheduler, not of a
//! reimplementation of it.

use easyhps_core::sched::{PoolAction, PoolEvent, PoolLog, PoolSched};
use easyhps_core::{ScheduleMode, TaskDag, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of one pool simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolOutcome {
    /// Virtual time at which the last task finished.
    pub makespan_ns: u64,
    /// Sum of task execution times (excluding dispatch overhead).
    pub busy_ns: u64,
    /// Tasks executed.
    pub tasks: u64,
}

impl PoolOutcome {
    /// Fraction of worker-time spent computing, in `[0, 1]`.
    pub fn efficiency(&self, workers: usize) -> f64 {
        if self.makespan_ns == 0 {
            return 1.0;
        }
        self.busy_ns as f64 / (self.makespan_ns as f64 * workers as f64)
    }
}

/// Simulate `workers` identical executors draining `dag`.
///
/// `cost_ns(v)` is the execution time of task `v`; `dispatch_overhead_ns`
/// is added to every execution (scheduling/queueing cost). The policy
/// decides which computable task an idle worker may take; under a static
/// policy a worker idles if none of *its* tasks are computable — the
/// paper's "fatal situation" that dynamic pools avoid.
pub fn simulate_pool(
    dag: &TaskDag,
    workers: usize,
    mode: ScheduleMode,
    cost_ns: impl FnMut(VertexId) -> u64,
    dispatch_overhead_ns: u64,
) -> PoolOutcome {
    simulate_pool_logged(dag, workers, mode, cost_ns, dispatch_overhead_ns).0
}

/// [`simulate_pool`], also returning the `(event, actions)` log this
/// driver exchanged with the state machine — the differential tests
/// replay it into a fresh machine and assert action-for-action equality.
pub fn simulate_pool_logged(
    dag: &TaskDag,
    workers: usize,
    mode: ScheduleMode,
    mut cost_ns: impl FnMut(VertexId) -> u64,
    dispatch_overhead_ns: u64,
) -> (PoolOutcome, PoolLog) {
    assert!(workers > 0, "pool needs at least one worker");
    let mut sched = PoolSched::new(dag, workers, mode);
    let mut log = PoolLog::new();
    // (finish time, sequence, worker, task) — sequence keeps pops stable.
    let mut running: BinaryHeap<Reverse<(u64, u64, usize, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut out = PoolOutcome::default();

    let mut acts = sched
        .on_event(dag, PoolEvent::Start)
        .expect("starting a fresh pool is legal");
    log.push((PoolEvent::Start, acts.clone()));
    loop {
        let mut done = false;
        for a in acts.drain(..) {
            match a {
                PoolAction::Run { worker, sub } => {
                    let cost = cost_ns(VertexId(sub));
                    out.busy_ns += cost;
                    running.push(Reverse((
                        now + dispatch_overhead_ns + cost,
                        seq,
                        worker,
                        sub,
                    )));
                    seq += 1;
                }
                PoolAction::Done => done = true,
            }
        }
        if done {
            break;
        }

        let Some(Reverse((t, _, worker, sub))) = running.pop() else {
            panic!("pool stalled: DAG has a cycle or policy starved it");
        };
        now = t;
        out.tasks += 1;
        let ev = PoolEvent::WorkerDone {
            worker,
            sub,
            ok: true,
        };
        acts = sched
            .on_event(dag, ev)
            .expect("virtual completion mirrors a dispatched task");
        log.push((ev, acts.clone()));
    }

    out.makespan_ns = now;
    (out, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::patterns::{Linear1D, TriangularGap, Wavefront2D};
    use easyhps_core::sched::replay_pool;
    use easyhps_core::GridDims;

    #[test]
    fn chain_is_fully_serial() {
        let dag = TaskDag::from_pattern(&Linear1D::new(10));
        let out = simulate_pool(&dag, 4, ScheduleMode::Dynamic, |_| 100, 0);
        assert_eq!(out.makespan_ns, 1_000);
        assert_eq!(out.tasks, 10);
        assert_eq!(out.busy_ns, 1_000);
    }

    #[test]
    fn independent_rows_scale_with_workers() {
        // A 1-row wavefront is a chain; a full wavefront with W workers
        // approaches area/W for large grids. Use the diagonal sources of a
        // triangle: n independent diagonal cells first.
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(1, 12)));
        let serial = simulate_pool(&dag, 1, ScheduleMode::Dynamic, |_| 50, 0);
        let parallel = simulate_pool(&dag, 4, ScheduleMode::Dynamic, |_| 50, 0);
        // A single row is a chain: workers cannot help.
        assert_eq!(serial.makespan_ns, parallel.makespan_ns);
    }

    #[test]
    fn wavefront_parallelism_helps() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(16)));
        let t1 = simulate_pool(&dag, 1, ScheduleMode::Dynamic, |_| 100, 0).makespan_ns;
        let t4 = simulate_pool(&dag, 4, ScheduleMode::Dynamic, |_| 100, 0).makespan_ns;
        let t8 = simulate_pool(&dag, 8, ScheduleMode::Dynamic, |_| 100, 0).makespan_ns;
        assert!(t4 < t1, "4 workers beat 1");
        assert!(t8 <= t4, "8 workers at least match 4");
        // Lower bound: critical path = 31 cells; upper bound: serial.
        assert!(t4 >= 31 * 100);
        assert_eq!(t1, 256 * 100);
    }

    #[test]
    fn makespan_at_least_critical_path_and_at_most_serial() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(12));
        let serial = simulate_pool(
            &dag,
            1,
            ScheduleMode::Dynamic,
            |v| dag.vertex(v).pos.col as u64 + 1,
            0,
        );
        for w in [2, 3, 5, 8] {
            let out = simulate_pool(
                &dag,
                w,
                ScheduleMode::Dynamic,
                |v| dag.vertex(v).pos.col as u64 + 1,
                0,
            );
            assert!(out.makespan_ns <= serial.makespan_ns);
            assert_eq!(out.busy_ns, serial.busy_ns, "work conserved");
            assert_eq!(out.tasks, dag.len() as u64);
        }
    }

    #[test]
    fn static_policy_never_beats_dynamic_on_skewed_triangle() {
        // Triangular DAGs with growing per-column cost starve static
        // owners; dynamic must be at least as fast.
        let dag = TaskDag::from_pattern(&TriangularGap::new(16));
        let cost = |v: VertexId| (dag.vertex(v).pos.col as u64 + 1) * 10;
        let dynamic = simulate_pool(&dag, 4, ScheduleMode::Dynamic, cost, 0);
        let bcw = simulate_pool(&dag, 4, ScheduleMode::BlockCyclic { block: 1 }, cost, 0);
        let cw = simulate_pool(&dag, 4, ScheduleMode::ColumnWavefront, cost, 0);
        assert!(dynamic.makespan_ns <= bcw.makespan_ns);
        assert!(dynamic.makespan_ns <= cw.makespan_ns);
        assert_eq!(dynamic.busy_ns, bcw.busy_ns);
    }

    #[test]
    fn dispatch_overhead_extends_makespan() {
        let dag = TaskDag::from_pattern(&Linear1D::new(5));
        let a = simulate_pool(&dag, 1, ScheduleMode::Dynamic, |_| 100, 0);
        let b = simulate_pool(&dag, 1, ScheduleMode::Dynamic, |_| 100, 20);
        assert_eq!(b.makespan_ns - a.makespan_ns, 5 * 20);
        assert_eq!(a.busy_ns, b.busy_ns, "overhead is not busy time");
    }

    #[test]
    fn deterministic() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(20));
        let run = || simulate_pool(&dag, 6, ScheduleMode::Dynamic, |v| v.0 as u64 % 7 + 1, 3);
        assert_eq!(run(), run());
    }

    #[test]
    fn efficiency_bounds() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(10)));
        let out = simulate_pool(&dag, 3, ScheduleMode::Dynamic, |_| 10, 0);
        let e = out.efficiency(3);
        assert!(e > 0.0 && e <= 1.0, "{e}");
    }

    /// Differential test (virtual-time driver): the simulator's recorded
    /// event log, replayed into a fresh machine, must produce the same
    /// action batches — the sim exercises the real scheduler, not a copy.
    #[test]
    fn virtual_driver_matches_machine_replay() {
        for mode in [
            ScheduleMode::Dynamic,
            ScheduleMode::ColumnWavefront,
            ScheduleMode::BlockCyclic { block: 2 },
        ] {
            let dag = TaskDag::from_pattern(&TriangularGap::new(10));
            let (out, log) = simulate_pool_logged(&dag, 3, mode, |v| v.0 as u64 % 5 + 1, 2);
            assert_eq!(out.tasks, dag.len() as u64, "{mode:?}");
            let replayed = replay_pool(&dag, 3, mode, log.iter().map(|(e, _)| *e))
                .expect("recorded log replays cleanly");
            let recorded: Vec<_> = log.into_iter().map(|(_, a)| a).collect();
            assert_eq!(
                replayed, recorded,
                "{mode:?}: sim driver diverged from machine"
            );
        }
    }
}
