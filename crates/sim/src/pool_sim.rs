//! Virtual-time worker-pool simulation.
//!
//! Simulates a worker pool (the slave part's computing threads, or any
//! pool of identical executors) draining a [`TaskDag`] under a scheduling
//! policy. Deterministic: ties break on insertion sequence.

use easyhps_core::{DagParser, ScheduleMode, TaskDag, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of one pool simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolOutcome {
    /// Virtual time at which the last task finished.
    pub makespan_ns: u64,
    /// Sum of task execution times (excluding dispatch overhead).
    pub busy_ns: u64,
    /// Tasks executed.
    pub tasks: u64,
}

impl PoolOutcome {
    /// Fraction of worker-time spent computing, in `[0, 1]`.
    pub fn efficiency(&self, workers: usize) -> f64 {
        if self.makespan_ns == 0 {
            return 1.0;
        }
        self.busy_ns as f64 / (self.makespan_ns as f64 * workers as f64)
    }
}

/// Simulate `workers` identical executors draining `dag`.
///
/// `cost_ns(v)` is the execution time of task `v`; `dispatch_overhead_ns`
/// is added to every execution (scheduling/queueing cost). The policy
/// decides which computable task an idle worker may take; under a static
/// policy a worker idles if none of *its* tasks are computable — the
/// paper's "fatal situation" that dynamic pools avoid.
pub fn simulate_pool(
    dag: &TaskDag,
    workers: usize,
    mode: ScheduleMode,
    mut cost_ns: impl FnMut(VertexId) -> u64,
    dispatch_overhead_ns: u64,
) -> PoolOutcome {
    assert!(workers > 0, "pool needs at least one worker");
    let mut parser = DagParser::new(dag);
    let tile_cols = dag.dims().cols;
    let mut idle: Vec<bool> = vec![true; workers];
    // (finish time, sequence, worker, task) — sequence keeps pops stable.
    let mut running: BinaryHeap<Reverse<(u64, u64, usize, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut out = PoolOutcome::default();

    while !parser.is_done() {
        // Fill idle workers.
        #[allow(clippy::needless_range_loop)] // w doubles as the worker id
        for w in 0..workers {
            if !idle[w] {
                continue;
            }
            let picked = if mode == ScheduleMode::Dynamic {
                parser.pop_computable()
            } else {
                parser.pop_computable_matching(|v| {
                    mode.static_owner(dag.vertex(v).pos, tile_cols, workers as u32)
                        == Some(w as u32)
                })
            };
            if let Some(v) = picked {
                let cost = cost_ns(v);
                out.busy_ns += cost;
                running.push(Reverse((now + dispatch_overhead_ns + cost, seq, w, v.0)));
                seq += 1;
                idle[w] = false;
            }
        }

        let Some(Reverse((t, _, w, task))) = running.pop() else {
            assert!(
                parser.is_done(),
                "pool stalled: DAG has a cycle or policy starved it"
            );
            break;
        };
        now = t;
        idle[w] = true;
        parser
            .complete(dag, VertexId(task), None)
            .expect("completed task was running");
        out.tasks += 1;
    }

    out.makespan_ns = now;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::patterns::{Linear1D, TriangularGap, Wavefront2D};
    use easyhps_core::GridDims;

    #[test]
    fn chain_is_fully_serial() {
        let dag = TaskDag::from_pattern(&Linear1D::new(10));
        let out = simulate_pool(&dag, 4, ScheduleMode::Dynamic, |_| 100, 0);
        assert_eq!(out.makespan_ns, 1_000);
        assert_eq!(out.tasks, 10);
        assert_eq!(out.busy_ns, 1_000);
    }

    #[test]
    fn independent_rows_scale_with_workers() {
        // A 1-row wavefront is a chain; a full wavefront with W workers
        // approaches area/W for large grids. Use the diagonal sources of a
        // triangle: n independent diagonal cells first.
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(1, 12)));
        let serial = simulate_pool(&dag, 1, ScheduleMode::Dynamic, |_| 50, 0);
        let parallel = simulate_pool(&dag, 4, ScheduleMode::Dynamic, |_| 50, 0);
        // A single row is a chain: workers cannot help.
        assert_eq!(serial.makespan_ns, parallel.makespan_ns);
    }

    #[test]
    fn wavefront_parallelism_helps() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(16)));
        let t1 = simulate_pool(&dag, 1, ScheduleMode::Dynamic, |_| 100, 0).makespan_ns;
        let t4 = simulate_pool(&dag, 4, ScheduleMode::Dynamic, |_| 100, 0).makespan_ns;
        let t8 = simulate_pool(&dag, 8, ScheduleMode::Dynamic, |_| 100, 0).makespan_ns;
        assert!(t4 < t1, "4 workers beat 1");
        assert!(t8 <= t4, "8 workers at least match 4");
        // Lower bound: critical path = 31 cells; upper bound: serial.
        assert!(t4 >= 31 * 100);
        assert_eq!(t1, 256 * 100);
    }

    #[test]
    fn makespan_at_least_critical_path_and_at_most_serial() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(12));
        let serial = simulate_pool(
            &dag,
            1,
            ScheduleMode::Dynamic,
            |v| dag.vertex(v).pos.col as u64 + 1,
            0,
        );
        for w in [2, 3, 5, 8] {
            let out = simulate_pool(
                &dag,
                w,
                ScheduleMode::Dynamic,
                |v| dag.vertex(v).pos.col as u64 + 1,
                0,
            );
            assert!(out.makespan_ns <= serial.makespan_ns);
            assert_eq!(out.busy_ns, serial.busy_ns, "work conserved");
            assert_eq!(out.tasks, dag.len() as u64);
        }
    }

    #[test]
    fn static_policy_never_beats_dynamic_on_skewed_triangle() {
        // Triangular DAGs with growing per-column cost starve static
        // owners; dynamic must be at least as fast.
        let dag = TaskDag::from_pattern(&TriangularGap::new(16));
        let cost = |v: VertexId| (dag.vertex(v).pos.col as u64 + 1) * 10;
        let dynamic = simulate_pool(&dag, 4, ScheduleMode::Dynamic, cost, 0);
        let bcw = simulate_pool(&dag, 4, ScheduleMode::BlockCyclic { block: 1 }, cost, 0);
        let cw = simulate_pool(&dag, 4, ScheduleMode::ColumnWavefront, cost, 0);
        assert!(dynamic.makespan_ns <= bcw.makespan_ns);
        assert!(dynamic.makespan_ns <= cw.makespan_ns);
        assert_eq!(dynamic.busy_ns, bcw.busy_ns);
    }

    #[test]
    fn dispatch_overhead_extends_makespan() {
        let dag = TaskDag::from_pattern(&Linear1D::new(5));
        let a = simulate_pool(&dag, 1, ScheduleMode::Dynamic, |_| 100, 0);
        let b = simulate_pool(&dag, 1, ScheduleMode::Dynamic, |_| 100, 20);
        assert_eq!(b.makespan_ns - a.makespan_ns, 5 * 20);
        assert_eq!(a.busy_ns, b.busy_ns, "overhead is not busy time");
    }

    #[test]
    fn deterministic() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(20));
        let run = || simulate_pool(&dag, 6, ScheduleMode::Dynamic, |v| v.0 as u64 % 7 + 1, 3);
        assert_eq!(run(), run());
    }

    #[test]
    fn efficiency_bounds() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(10)));
        let out = simulate_pool(&dag, 3, ScheduleMode::Dynamic, |_| 10, 0);
        let e = out.efficiency(3);
        assert!(e > 0.0 && e <= 1.0, "{e}");
    }
}
