//! Process-level discrete-event simulation of the multilevel runtime.
//!
//! Mirrors the master/slave protocol of `easyhps-runtime` in virtual time:
//! the master serializes assignment and completion processing (it is one
//! scheduling thread), input strips and results pay latency + bandwidth,
//! and each node's tile execution time is the makespan of a nested
//! thread-pool simulation over the slave DAG — the same two-level
//! structure as the real system, priced by [`CostModel`].

use crate::cost::CostModel;
use crate::pool_sim::{simulate_pool, PoolOutcome};
use crate::workload::SimWorkload;
use easyhps_core::sched::pick_task;
use easyhps_core::Trace;
use easyhps_core::{DagParser, ScheduleMode, TaskDag, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cluster shape and policies for one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Computing threads per node (`threads[i]` for node `i`); the length
    /// is the number of computing nodes (the paper's `X - 1`).
    pub threads: Vec<usize>,
    /// Process-level scheduling policy.
    pub process_mode: ScheduleMode,
    /// Thread-level scheduling policy.
    pub thread_mode: ScheduleMode,
    /// Hardware calibration.
    pub cost: CostModel,
    /// Per-node speed in percent of the reference core (100 = nominal).
    /// Models heterogeneous clusters and stragglers: a node at 50 takes
    /// twice the reference time for the same tile.
    pub node_speed_pct: Vec<u32>,
    /// Virtual time at which each node crashes (`None` = healthy). A tile
    /// in flight on a crashed node never completes; the master's fault
    /// tolerance times it out, redistributes it, and excludes the node —
    /// the same policy as the real runtime.
    pub node_fail_at: Vec<Option<u64>>,
    /// Fault-tolerance timeout: how long after dispatch the master presumes
    /// a silent sub-task lost.
    pub task_timeout_ns: u64,
}

impl SimConfig {
    /// Uniform cluster: `nodes` computing nodes with `ct` threads each,
    /// dynamic scheduling at both levels.
    pub fn uniform(nodes: usize, ct: usize) -> Self {
        Self {
            threads: vec![ct; nodes],
            process_mode: ScheduleMode::Dynamic,
            thread_mode: ScheduleMode::Dynamic,
            cost: CostModel::tianhe1a(),
            node_speed_pct: vec![100; nodes],
            node_fail_at: vec![None; nodes],
            task_timeout_ns: 5_000_000_000,
        }
    }

    /// Set node `node` to run at `pct`% of nominal speed.
    pub fn node_speed(mut self, node: usize, pct: u32) -> Self {
        assert!(pct > 0, "speed must be positive");
        self.node_speed_pct[node] = pct;
        self
    }

    /// Crash node `node` at virtual time `at_ns`.
    pub fn fail_node(mut self, node: usize, at_ns: u64) -> Self {
        self.node_fail_at[node] = Some(at_ns);
        self
    }

    /// Distribute `computing_cores` over `nodes` as evenly as possible
    /// (first nodes get the extra core), clamped to the per-node maximum
    /// of 11 the paper's hardware imposes.
    pub fn spread(nodes: usize, computing_cores: usize) -> Self {
        assert!(nodes > 0);
        let base = computing_cores / nodes;
        let extra = computing_cores % nodes;
        let threads = (0..nodes)
            .map(|i| (base + usize::from(i < extra)).clamp(1, 11))
            .collect();
        Self {
            threads,
            ..Self::uniform(nodes, 1)
        }
    }
}

/// Result of one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Virtual makespan of the whole computation.
    pub makespan_ns: u64,
    /// Sum over tiles of slave-pool busy time (pure compute).
    pub compute_ns: u64,
    /// Time each node spent executing tiles.
    pub node_busy_ns: Vec<u64>,
    /// Master occupancy (assign + completion processing).
    pub master_busy_ns: u64,
    /// Total bytes moved (inputs + results).
    pub bytes_moved: u64,
    /// Messages exchanged.
    pub msgs: u64,
    /// Master-level tiles executed.
    pub tiles: u64,
    /// Tiles re-dispatched after a fault-tolerance timeout.
    pub redispatched: u64,
    /// Nodes excluded as dead.
    pub dead_nodes: u64,
}

impl SimResult {
    /// Makespan in (virtual) seconds.
    pub fn seconds(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Ev {
    /// Assignment arrives at a node.
    Assign { node: usize, task: u32 },
    /// Result arrives back at the master.
    Done { node: usize, task: u32 },
    /// The master's fault-tolerance timeout fires for a lost sub-task.
    Timeout { node: usize, task: u32 },
}

/// Simulate one full run of `workload` on `config`.
pub fn simulate(workload: &SimWorkload, config: &SimConfig) -> SimResult {
    simulate_impl(workload, config, None)
}

/// Like [`simulate`], additionally recording a [`Trace`] of master
/// occupancy and per-node tile executions for Gantt rendering.
pub fn simulate_traced(workload: &SimWorkload, config: &SimConfig) -> (SimResult, Trace) {
    let mut trace = Trace::new();
    let res = simulate_impl(workload, config, Some(&mut trace));
    (res, trace)
}

fn simulate_impl(
    workload: &SimWorkload,
    config: &SimConfig,
    mut trace: Option<&mut Trace>,
) -> SimResult {
    let nodes = config.threads.len();
    assert!(nodes > 0, "need at least one computing node");
    let model = &workload.model;
    let dag = model.master_dag();
    let tile_cols = dag.dims().cols;
    let mut parser = DagParser::new(&dag);

    let mut events: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut idle = vec![true; nodes];
    let mut dead = vec![false; nodes];
    let mut master_free_at = 0u64;
    let mut res = SimResult {
        node_busy_ns: vec![0; nodes],
        ..SimResult::default()
    };

    // Cache of per-tile slave-pool outcomes (each tile runs once).
    let slave_outcome = |task: VertexId, node: usize| -> PoolOutcome {
        let tile = dag.vertex(task).pos;
        let sdag: TaskDag = model.slave_dag(tile);
        let speed = *config.node_speed_pct.get(node).unwrap_or(&100) as u64;
        simulate_pool(
            &sdag,
            config.threads[node],
            config.thread_mode,
            |v| {
                let region = model.sub_region(tile, sdag.vertex(v).pos);
                let base = config.cost.compute_ns(workload.region_work(region));
                // Jitter keyed by the sub-task's global cell position.
                let key = (region.row_start as u64) << 32 | region.col_start as u64;
                config.cost.jittered_ns(base, key) * 100 / speed.max(1)
            },
            config.cost.thread_overhead_ns,
        )
    };

    let input_bytes = |task: VertexId| -> u64 {
        dag.vertex(task)
            .data_deps
            .iter()
            .map(|d| model.tile_region(dag.vertex(*d).pos).area() * workload.cell_bytes + 20)
            .sum::<u64>()
            + 64
    };

    macro_rules! dispatch {
        () => {
            loop {
                let mut assigned = false;
                for node in 0..nodes {
                    if !idle[node] || dead[node] {
                        continue;
                    }
                    // The same placement decision as the real master —
                    // including the orphan fallback for tiles statically
                    // owned by an excluded node. The DES used to carry its
                    // own copy of this policy without the fallback, so a
                    // static-mode run with a crashed node deadlocked here
                    // while the runtime survived; see
                    // `static_mode_crash_redistributes_orphans`.
                    let picked = pick_task(
                        &mut parser,
                        &dag,
                        config.process_mode,
                        tile_cols,
                        nodes as u32,
                        node as u32,
                        Some(&|owner: u32| dead[owner as usize]),
                    );
                    let Some(v) = picked else { continue };
                    let bytes = input_bytes(v);
                    // Master occupancy is the scheduling decision only; the
                    // strip transfer itself is RDMA-offloaded (Infiniband)
                    // and overlaps with scheduling, paying latency +
                    // bandwidth on the wire instead.
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.record(
                            "master",
                            "a",
                            master_free_at,
                            master_free_at + config.cost.assign_overhead_ns,
                        );
                    }
                    master_free_at += config.cost.assign_overhead_ns;
                    res.master_busy_ns += config.cost.assign_overhead_ns;
                    res.bytes_moved += bytes;
                    res.msgs += 1;
                    let arrive = master_free_at + config.cost.transfer_ns(bytes);
                    // Fault injection is deterministic, so the fate of this
                    // dispatch is known now: if the node crashes before the
                    // result would leave it, the master hears nothing and
                    // its overtime queue fires instead.
                    let outcome = slave_outcome(VertexId(v.0), node);
                    let completes_at = arrive + outcome.makespan_ns;
                    let lost =
                        config.node_fail_at[node].is_some_and(|f| arrive >= f || completes_at > f);
                    if lost {
                        events.push(Reverse((
                            master_free_at + config.task_timeout_ns,
                            seq,
                            Ev::Timeout { node, task: v.0 },
                        )));
                    } else {
                        events.push(Reverse((arrive, seq, Ev::Assign { node, task: v.0 })));
                    }
                    seq += 1;
                    idle[node] = false;
                    assigned = true;
                }
                if !assigned {
                    break;
                }
            }
        };
    }

    dispatch!();

    while let Some(Reverse((t, _, ev))) = events.pop() {
        match ev {
            Ev::Assign { node, task } => {
                let outcome = slave_outcome(VertexId(task), node);
                if let Some(tr) = trace.as_deref_mut() {
                    let pos = dag.vertex(VertexId(task)).pos;
                    tr.record(
                        format!("node{node}"),
                        format!("{}", (b'A' + (pos.diagonal() % 26) as u8) as char),
                        t,
                        t + outcome.makespan_ns,
                    );
                }
                res.compute_ns += outcome.busy_ns;
                res.node_busy_ns[node] += outcome.makespan_ns;
                res.tiles += 1;
                let region = model.tile_region(dag.vertex(VertexId(task)).pos);
                let result_bytes = region.area() * workload.cell_bytes + 24;
                res.bytes_moved += result_bytes;
                res.msgs += 1;
                let done_at = t + outcome.makespan_ns + config.cost.transfer_ns(result_bytes);
                events.push(Reverse((done_at, seq, Ev::Done { node, task })));
                seq += 1;
            }
            Ev::Timeout { node, task } => {
                // Step g of the paper's master workflow: cancel, requeue,
                // exclude the node.
                let start = master_free_at.max(t);
                master_free_at = start + config.cost.complete_overhead_ns;
                res.master_busy_ns += config.cost.complete_overhead_ns;
                if let Some(tr) = trace.as_deref_mut() {
                    tr.record("master", "t", start, master_free_at);
                }
                parser
                    .fail(&dag, VertexId(task))
                    .expect("timed-out tile was running");
                res.redispatched += 1;
                if !dead[node] {
                    dead[node] = true;
                    res.dead_nodes += 1;
                }
                assert!(
                    dead.iter().any(|d| !d),
                    "every node crashed before the computation finished"
                );
                dispatch!();
            }
            Ev::Done { node, task } => {
                // Master serializes completion processing.
                let start = master_free_at.max(t);
                master_free_at = start + config.cost.complete_overhead_ns;
                res.master_busy_ns += config.cost.complete_overhead_ns;
                if let Some(tr) = trace.as_deref_mut() {
                    tr.record("master", "d", start, master_free_at);
                }
                parser
                    .complete(&dag, VertexId(task), None)
                    .expect("simulated completion of a running tile");
                idle[node] = true;
                dispatch!();
            }
        }
    }

    assert!(
        parser.is_done(),
        "simulation drained its event queue with tasks remaining"
    );
    res.makespan_ns = master_free_at;
    res
}

/// Sequential baseline: the whole problem on one core, no overheads.
pub fn sequential_ns(workload: &SimWorkload, cost: &CostModel) -> u64 {
    cost.compute_ns(workload.total_work())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_swgg() -> SimWorkload {
        SimWorkload::swgg(400, 50, 10)
    }

    #[test]
    fn runs_to_completion_and_conserves_tiles() {
        let w = small_swgg();
        let r = simulate(&w, &SimConfig::uniform(3, 4));
        assert_eq!(r.tiles, w.model.master_dag().len() as u64);
        assert!(r.makespan_ns > 0);
        assert_eq!(r.msgs, 2 * r.tiles);
    }

    #[test]
    fn deterministic() {
        let w = small_swgg();
        let a = simulate(&w, &SimConfig::uniform(2, 3));
        let b = simulate(&w, &SimConfig::uniform(2, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_help() {
        let w = small_swgg();
        let t1 = simulate(&w, &SimConfig::uniform(2, 1)).makespan_ns;
        let t4 = simulate(&w, &SimConfig::uniform(2, 4)).makespan_ns;
        let t8 = simulate(&w, &SimConfig::uniform(2, 8)).makespan_ns;
        assert!(t4 < t1);
        assert!(t8 < t4);
    }

    #[test]
    fn more_nodes_help_at_fixed_threads() {
        let w = small_swgg();
        let n1 = simulate(&w, &SimConfig::uniform(1, 4)).makespan_ns;
        let n3 = simulate(&w, &SimConfig::uniform(3, 4)).makespan_ns;
        assert!(n3 < n1);
    }

    #[test]
    fn parallel_beats_sequential_baseline() {
        let w = small_swgg();
        let seq = sequential_ns(&w, &CostModel::tianhe1a());
        let par = simulate(&w, &SimConfig::uniform(4, 8)).makespan_ns;
        assert!(par < seq, "parallel {par} vs sequential {seq}");
    }

    #[test]
    fn makespan_bounded_below_by_compute_over_cores() {
        let w = small_swgg();
        let cfg = SimConfig::uniform(3, 4);
        let r = simulate(&w, &cfg);
        let cores: u64 = cfg.threads.iter().map(|&t| t as u64).sum();
        assert!(r.makespan_ns >= r.compute_ns / cores);
    }

    #[test]
    fn bcw_is_no_faster_than_dynamic() {
        // With execution jitter a perfectly-tuned static schedule can edge
        // out the greedy pool by a hair on one instance (the paper's own
        // Fig. 17 has a few points below the 1.00 line); anything beyond a
        // few percent, or any advantage for a coarse block, is a bug.
        let w = SimWorkload::nussinov(400, 50, 10);
        let mut cfg = SimConfig::uniform(3, 4);
        let dynamic = simulate(&w, &cfg).makespan_ns;
        cfg.process_mode = ScheduleMode::BlockCyclic { block: 1 };
        cfg.thread_mode = ScheduleMode::BlockCyclic { block: 1 };
        let bcw = simulate(&w, &cfg).makespan_ns;
        assert!(
            bcw as f64 >= dynamic as f64 * 0.95,
            "tuned bcw {bcw} implausibly beats dynamic {dynamic}"
        );
        cfg.process_mode = ScheduleMode::BlockCyclic { block: 2 };
        cfg.thread_mode = ScheduleMode::BlockCyclic { block: 2 };
        let coarse = simulate(&w, &cfg).makespan_ns;
        assert!(coarse > dynamic, "coarse bcw {coarse} vs dynamic {dynamic}");
    }

    #[test]
    fn spread_distributes_and_clamps() {
        let c = SimConfig::spread(3, 10);
        assert_eq!(c.threads, vec![4, 3, 3]);
        let c = SimConfig::spread(2, 40);
        assert_eq!(
            c.threads,
            vec![11, 11],
            "clamped to the 11-thread hardware cap"
        );
        let c = SimConfig::spread(3, 1);
        assert_eq!(c.threads, vec![1, 1, 1], "at least one thread per node");
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    fn workload() -> SimWorkload {
        SimWorkload::swgg(400, 50, 10)
    }

    #[test]
    fn node_crash_is_survived_with_redispatch() {
        let w = workload();
        let healthy = simulate(&w, &SimConfig::uniform(3, 4));
        let mut cfg = SimConfig::uniform(3, 4);
        cfg.task_timeout_ns = 20_000_000; // 20 ms
                                          // Crash node 1 a third of the way through the healthy makespan.
        cfg = cfg.fail_node(1, healthy.makespan_ns / 3);
        let r = simulate(&w, &cfg);
        assert_eq!(
            r.tiles,
            w.model.master_dag().len() as u64,
            "every tile still computed"
        );
        assert_eq!(r.dead_nodes, 1);
        assert!(r.redispatched >= 1);
        assert!(
            r.makespan_ns > healthy.makespan_ns,
            "losing a node costs time"
        );
    }

    #[test]
    fn crash_at_time_zero_excludes_node_immediately() {
        let w = workload();
        let mut cfg = SimConfig::uniform(2, 4).fail_node(0, 0);
        cfg.task_timeout_ns = 10_000_000;
        let r = simulate(&w, &cfg);
        assert_eq!(r.dead_nodes, 1);
        assert_eq!(r.tiles, w.model.master_dag().len() as u64);
        // All real work done by the surviving node.
        assert_eq!(r.node_busy_ns[0], 0);
        assert!(r.node_busy_ns[1] > 0);
    }

    #[test]
    fn static_mode_crash_redistributes_orphans() {
        // Pinned runtime↔sim divergence: the DES used to carry its own
        // copy of the pick policy without the orphan fallback, so a
        // static-mode run with a crashed node drained its event queue
        // with the dead node's columns still pending and panicked, while
        // the real master finished the run on the survivor. Both now ask
        // `easyhps_core::sched::pick_task` and agree.
        let w = workload();
        let mut cfg = SimConfig::uniform(2, 4).fail_node(0, 0);
        cfg.task_timeout_ns = 10_000_000;
        cfg.process_mode = ScheduleMode::ColumnWavefront;
        let r = simulate(&w, &cfg);
        assert_eq!(
            r.tiles,
            w.model.master_dag().len() as u64,
            "the survivor adopts the dead node's columns"
        );
        assert_eq!(r.dead_nodes, 1);
        assert_eq!(r.node_busy_ns[0], 0);
        assert!(r.node_busy_ns[1] > 0);
    }

    #[test]
    #[should_panic(expected = "every node crashed")]
    fn all_nodes_crashing_panics() {
        let w = workload();
        let mut cfg = SimConfig::uniform(2, 2).fail_node(0, 0).fail_node(1, 0);
        cfg.task_timeout_ns = 1_000_000;
        simulate(&w, &cfg);
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let w = workload();
        let mk = || {
            let mut c = SimConfig::uniform(3, 3).fail_node(2, 5_000_000);
            c.task_timeout_ns = 15_000_000;
            simulate(&w, &c)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn shorter_timeout_recovers_faster() {
        let w = workload();
        let run = |timeout: u64| {
            let mut c = SimConfig::uniform(3, 4).fail_node(1, 1_000_000);
            c.task_timeout_ns = timeout;
            simulate(&w, &c).makespan_ns
        };
        assert!(
            run(5_000_000) <= run(500_000_000),
            "long timeouts delay recovery"
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn traced_run_matches_untraced() {
        let w = SimWorkload::swgg(300, 50, 10);
        let cfg = SimConfig::uniform(3, 4);
        let plain = simulate(&w, &cfg);
        let (traced, trace) = simulate_traced(&w, &cfg);
        assert_eq!(plain, traced, "tracing must not perturb the schedule");
        // One execution span per tile plus master chunks.
        let node_spans = trace
            .spans
            .iter()
            .filter(|s| s.lane.starts_with("node"))
            .count() as u64;
        assert_eq!(node_spans, traced.tiles);
        // Node busy time in the trace equals the result's accounting.
        for (lane, busy) in trace.busy_by_lane() {
            if let Some(idx) = lane.strip_prefix("node") {
                let idx: usize = idx.parse().unwrap();
                assert_eq!(busy, traced.node_busy_ns[idx], "{lane}");
            }
        }
        // The Gantt renders all lanes, and no node runs two tiles at once.
        let g = trace.gantt(60);
        assert!(g.contains("master"));
        assert!(g.contains("node0"));
        assert!(
            !trace.has_lane_overlaps(),
            "node executing two tiles at once:\n{g}"
        );
    }
}

#[cfg(test)]
mod heterogeneity_tests {
    use super::*;

    #[test]
    fn slow_node_slows_the_run_proportionally_less_under_dynamic() {
        // One straggler at 40% speed: the dynamic pool routes work away
        // from it, so it degrades the makespan far less than the static
        // baseline, where the straggler's columns gate the wavefront.
        let w = SimWorkload::nussinov(1_000, 100, 10);
        let base = SimConfig::uniform(4, 4);
        let healthy_dyn = simulate(&w, &base).makespan_ns;

        let straggler_dyn = simulate(&w, &base.clone().node_speed(1, 40)).makespan_ns;

        let mut bcw = base.clone().node_speed(1, 40);
        bcw.process_mode = ScheduleMode::BlockCyclic { block: 1 };
        bcw.thread_mode = ScheduleMode::BlockCyclic { block: 1 };
        let straggler_bcw = simulate(&w, &bcw).makespan_ns;

        assert!(
            straggler_dyn > healthy_dyn,
            "a straggler always costs something"
        );
        assert!(
            straggler_bcw > straggler_dyn,
            "static scheduling must suffer more from a straggler: bcw {straggler_bcw} vs dyn {straggler_dyn}"
        );
        // Dynamic keeps the inflation well under the 2.5x a naive
        // work-split would suffer.
        assert!(straggler_dyn < healthy_dyn * 2, "dyn inflation too high");
    }

    #[test]
    fn uniform_speedup_scales_inversely() {
        let w = SimWorkload::swgg(400, 50, 10);
        let normal = simulate(&w, &SimConfig::uniform(2, 4)).makespan_ns;
        let double = {
            let cfg = SimConfig::uniform(2, 4)
                .node_speed(0, 200)
                .node_speed(1, 200);
            simulate(&w, &cfg).makespan_ns
        };
        // Compute halves; thread dispatch, network and the master don't,
        // and at this small scale those overheads are a third of the run.
        let ratio = normal as f64 / double as f64;
        assert!((1.25..=2.05).contains(&ratio), "ratio {ratio}");
    }
}
