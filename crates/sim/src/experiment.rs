//! The paper's experiment methodology: `Experiment_X_Y` core accounting
//! and the sweeps behind every figure of §VI.

use crate::cluster::{sequential_ns, simulate, SimConfig};
use crate::cost::CostModel;
use crate::report::Series;
use crate::workload::SimWorkload;
use easyhps_core::ScheduleMode;

/// One experiment in the paper's naming scheme: `Experiment_X_Y` uses `Y`
/// cores on `X` multi-core nodes. One node is the master; each of the
/// other `X-1` runs a slave scheduling thread; the remaining
/// `Y - 2X + 1` cores compute, spread over the `X-1` computing nodes
/// (at most 11 computing threads per node on the paper's hardware).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Experiment {
    /// Total nodes `X` (including the master).
    pub nodes: u32,
    /// Total cores `Y`.
    pub cores: u32,
}

impl Experiment {
    /// Create `Experiment_X_Y`.
    pub fn new(nodes: u32, cores: u32) -> Self {
        Self { nodes, cores }
    }

    /// Computing cores: `Y - 2X + 1`.
    pub fn computing_cores(&self) -> i64 {
        self.cores as i64 - 2 * self.nodes as i64 + 1
    }

    /// Whether this experiment is realizable: at least 2 nodes, at least
    /// one computing core per computing node, at most 11 per node.
    pub fn is_valid(&self) -> bool {
        let slaves = self.nodes as i64 - 1;
        let cc = self.computing_cores();
        self.nodes >= 2 && cc >= slaves && cc <= 11 * slaves
    }

    /// The cores `Y` of the paper's sweep for `X` nodes with `ct`
    /// computing threads per node: `Y = 2X - 1 + ct (X - 1)`.
    pub fn from_ct(nodes: u32, ct: u32) -> Self {
        Self {
            nodes,
            cores: 2 * nodes - 1 + ct * (nodes - 1),
        }
    }

    /// Build the simulator configuration.
    pub fn config(&self, cost: CostModel) -> SimConfig {
        assert!(self.is_valid(), "invalid experiment {self:?}");
        let mut cfg = SimConfig::spread((self.nodes - 1) as usize, self.computing_cores() as usize);
        cfg.cost = cost;
        cfg
    }

    /// Paper-style label.
    pub fn label(&self) -> String {
        format!("Experiment_{}_{}", self.nodes, self.cores)
    }
}

/// The node counts evaluated in the paper.
pub const NODE_COUNTS: [u32; 4] = [2, 3, 4, 5];

/// Figures 13/14: elapsed time vs. cores for each node count, sweeping
/// `ct = 1..=11` (the paper's `Experiment_X_{Y}` ranges).
pub fn scaling_series(workload: &SimWorkload, cost: CostModel) -> Vec<Series> {
    NODE_COUNTS
        .iter()
        .map(|&x| {
            let mut s = Series::new(format!("{} nodes", x));
            for ct in 1..=11u32 {
                let e = Experiment::from_ct(x, ct);
                if !e.is_valid() {
                    continue;
                }
                let r = simulate(workload, &e.config(cost));
                s.push(e.cores as f64, r.seconds());
            }
            s
        })
        .collect()
}

/// Figure 15: same total core count deployed on different node counts.
/// Returns one series per node count over the shared core-count axis.
pub fn node_comparison_series(
    workload: &SimWorkload,
    cost: CostModel,
    core_counts: &[u32],
) -> Vec<Series> {
    NODE_COUNTS
        .iter()
        .map(|&x| {
            let mut s = Series::new(format!("{} nodes", x));
            for &y in core_counts {
                let e = Experiment::new(x, y);
                if !e.is_valid() {
                    continue;
                }
                let r = simulate(workload, &e.config(cost));
                s.push(y as f64, r.seconds());
            }
            s
        })
        .collect()
}

/// Figure 16: per total core count, the best (lowest-elapsed) node
/// grouping; returns `(elapsed, speedup)` series where speedup is against
/// the one-core sequential baseline.
pub fn speedup_series(workload: &SimWorkload, cost: CostModel, max_cores: u32) -> (Series, Series) {
    let seq = sequential_ns(workload, &cost) as f64;
    let mut elapsed = Series::new("best grouping elapsed (s)");
    let mut speedup = Series::new("speedup vs sequential");
    for y in 4..=max_cores {
        let best = NODE_COUNTS
            .iter()
            .map(|&x| Experiment::new(x, y))
            .filter(Experiment::is_valid)
            .map(|e| simulate(workload, &e.config(cost)).makespan_ns)
            .min();
        if let Some(ns) = best {
            elapsed.push(y as f64, ns as f64 / 1e9);
            speedup.push(y as f64, seq / ns as f64);
        }
    }
    (elapsed, speedup)
}

/// The static baseline of Fig. 17: block-cyclic wavefront with an untuned
/// block of 2 column bands across nodes and cyclic single columns across
/// threads (the thread count is close to the slave-DAG width, so block 1
/// is the only sensible choice there).
pub fn bcw_baseline() -> (ScheduleMode, ScheduleMode) {
    (
        ScheduleMode::BlockCyclic { block: 2 },
        ScheduleMode::BlockCyclic { block: 1 },
    )
}

/// Figure 17: BCW / EasyHPS runtime ratio per node count over the
/// `ct = 1..=11` sweep. Values above 1.0 mean the dynamic pool wins.
pub fn bcw_ratio_series(workload: &SimWorkload, cost: CostModel) -> Vec<Series> {
    let (pm, tm) = bcw_baseline();
    NODE_COUNTS
        .iter()
        .map(|&x| {
            let mut s = Series::new(format!("{} nodes", x));
            for ct in 1..=11u32 {
                let e = Experiment::from_ct(x, ct);
                if !e.is_valid() {
                    continue;
                }
                let dynamic = simulate(workload, &e.config(cost)).makespan_ns;
                let mut bcw_cfg = e.config(cost);
                bcw_cfg.process_mode = pm;
                bcw_cfg.thread_mode = tm;
                let bcw = simulate(workload, &bcw_cfg).makespan_ns;
                s.push(e.cores as f64, bcw as f64 / dynamic as f64);
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_accounting_matches_paper_ranges() {
        // X=2: ct 1..=11 -> Y = 4..14; X=5: Y = 13..53 step 4.
        assert_eq!(Experiment::from_ct(2, 1).cores, 4);
        assert_eq!(Experiment::from_ct(2, 11).cores, 14);
        assert_eq!(Experiment::from_ct(3, 1).cores, 7);
        assert_eq!(Experiment::from_ct(3, 11).cores, 27);
        assert_eq!(Experiment::from_ct(4, 1).cores, 10);
        assert_eq!(Experiment::from_ct(4, 11).cores, 40);
        assert_eq!(Experiment::from_ct(5, 1).cores, 13);
        assert_eq!(Experiment::from_ct(5, 11).cores, 53);
    }

    #[test]
    fn validity_bounds() {
        assert!(Experiment::new(2, 4).is_valid());
        assert!(!Experiment::new(2, 3).is_valid(), "no computing core left");
        assert!(!Experiment::new(1, 10).is_valid(), "master-only");
        assert!(
            !Experiment::new(2, 15).is_valid(),
            "more than 11 threads on one node"
        );
        assert!(Experiment::new(5, 20).is_valid());
    }

    #[test]
    fn config_spreads_computing_cores() {
        let e = Experiment::new(4, 20); // computing cores = 13 over 3 nodes
        let c = e.config(CostModel::tianhe1a());
        assert_eq!(c.threads.iter().sum::<usize>(), 13);
        assert_eq!(c.threads.len(), 3);
    }

    #[test]
    fn scaling_series_monotone_trend() {
        // Elapsed time at ct=11 must beat ct=1 for every node count.
        let w = SimWorkload::swgg(300, 50, 10);
        for s in scaling_series(&w, CostModel::tianhe1a()) {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last < first, "{}: {first} -> {last}", s.label);
        }
    }

    #[test]
    fn speedup_grows_with_cores() {
        let w = SimWorkload::swgg(300, 50, 10);
        let (_, speedup) = speedup_series(&w, CostModel::tianhe1a(), 30);
        let first = speedup.points.first().unwrap().1;
        let last = speedup.points.last().unwrap().1;
        assert!(last > first);
        assert!(
            first >= 0.5,
            "even the smallest deployment computes in parallel"
        );
    }

    #[test]
    fn bcw_ratio_mostly_above_one_on_triangular() {
        let w = SimWorkload::nussinov(300, 50, 10);
        let series = bcw_ratio_series(&w, CostModel::tianhe1a());
        let all: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        let above = all.iter().filter(|&&r| r >= 1.0).count();
        assert!(
            above * 10 >= all.len() * 9,
            "expected >=90% of ratios above 1.0, got {above}/{}",
            all.len()
        );
    }
}
