//! Cost models for the virtual cluster.

/// Calibration of the simulated hardware, loosely following the paper's
/// testbed (Tianhe-1A: 2.93 GHz Xeon X5670 nodes, Infiniband QDR).
///
/// All times are virtual nanoseconds. Absolute values only set the scale;
/// the *ratios* (compute vs. network vs. scheduling overhead) are what
/// shape the figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Work units (one unit = one inner-loop step of the recurrence) a
    /// single core executes per microsecond.
    pub work_per_us: u64,
    /// Per-message network latency in nanoseconds.
    pub net_latency_ns: u64,
    /// Network bandwidth in bytes per microsecond.
    pub net_bytes_per_us: u64,
    /// Master-side cost of preparing and emitting one assignment
    /// (scheduling decision, registration, strip encode), excluding byte
    /// transfer.
    pub assign_overhead_ns: u64,
    /// Master-side cost of processing one completion.
    pub complete_overhead_ns: u64,
    /// Slave-side cost of dispatching one sub-sub-task to a computing
    /// thread (queue ops, cache warmup).
    pub thread_overhead_ns: u64,
    /// Execution-time jitter amplitude in percent (0 = noise-free).
    ///
    /// Real nodes suffer OS noise, cache effects and NUMA placement, so a
    /// task's runtime varies around its model cost. Jitter is derived
    /// deterministically from the task's identity, so runs stay exactly
    /// reproducible. This is what separates dynamic pools from
    /// perfectly-tuned static schedules: a static owner cannot hand a
    /// slow task's successors to someone else.
    pub jitter_pct: u32,
}

impl CostModel {
    /// Tianhe-1A-like calibration: ~0.3ns per inner-loop step (a few
    /// fused ops at 2.93 GHz), QDR latency/bandwidth, microsecond-scale
    /// scheduling overheads.
    pub fn tianhe1a() -> Self {
        Self {
            work_per_us: 3_000,
            net_latency_ns: 1_500,
            net_bytes_per_us: 3_200,
            assign_overhead_ns: 20_000,
            complete_overhead_ns: 8_000,
            thread_overhead_ns: 2_000,
            jitter_pct: 15,
        }
    }

    /// Compute time of `work` units on one core.
    #[inline]
    pub fn compute_ns(&self, work: u64) -> u64 {
        work.saturating_mul(1_000) / self.work_per_us.max(1)
    }

    /// Wire time of `bytes` over the interconnect.
    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.net_latency_ns + bytes.saturating_mul(1_000) / self.net_bytes_per_us.max(1)
    }

    /// Apply deterministic execution jitter to `base_ns` for the task
    /// identified by `key`: a multiplier in `[1 - j, 1 + j]` where
    /// `j = jitter_pct / 100`, derived by hashing `key`.
    #[inline]
    pub fn jittered_ns(&self, base_ns: u64, key: u64) -> u64 {
        if self.jitter_pct == 0 || base_ns == 0 {
            return base_ns;
        }
        // splitmix64-style hash for a uniform offset in [0, 2j).
        let mut h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        let span = 2 * self.jitter_pct as u64; // percent points
        let offset = h % (span + 1); // 0..=2j
        let pct = 100 + offset - self.jitter_pct as u64; // 100-j ..= 100+j
        base_ns * pct / 100
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::tianhe1a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_scales_linearly() {
        let c = CostModel::tianhe1a();
        assert_eq!(c.compute_ns(3_000), 1_000);
        assert_eq!(c.compute_ns(6_000), 2_000);
        assert_eq!(c.compute_ns(0), 0);
    }

    #[test]
    fn transfer_includes_latency() {
        let c = CostModel::tianhe1a();
        assert_eq!(c.transfer_ns(0), 1_500);
        assert_eq!(c.transfer_ns(3_200), 2_500);
    }

    #[test]
    fn degenerate_rates_do_not_panic() {
        let c = CostModel {
            work_per_us: 0,
            net_bytes_per_us: 0,
            ..CostModel::tianhe1a()
        };
        assert!(c.compute_ns(100) > 0);
        assert!(c.transfer_ns(100) >= c.net_latency_ns);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let c = CostModel {
            jitter_pct: 20,
            ..CostModel::tianhe1a()
        };
        for key in 0..1000u64 {
            let j = c.jittered_ns(10_000, key);
            assert_eq!(j, c.jittered_ns(10_000, key), "deterministic");
            assert!((8_000..=12_000).contains(&j), "within +-20%: {j}");
        }
        // Spread: not all equal.
        let a = c.jittered_ns(10_000, 1);
        let b = c.jittered_ns(10_000, 2);
        let d = c.jittered_ns(10_000, 3);
        assert!(a != b || b != d);
    }

    #[test]
    fn zero_jitter_is_identity() {
        let c = CostModel {
            jitter_pct: 0,
            ..CostModel::tianhe1a()
        };
        assert_eq!(c.jittered_ns(12345, 99), 12345);
    }
}
