//! # easyhps-dp — dynamic-programming algorithm substrate
//!
//! The DP workloads the EasyHPS paper evaluates (Smith-Waterman with a
//! general gap function, Nussinov RNA folding) plus the other recurrences
//! its tD/eD taxonomy names (edit distance, LCS, affine-gap alignment,
//! matrix-chain multiplication, optimal BST, a generic 2D/2D instance),
//! each exposed as a [`DpProblem`]: a cell-level dependency pattern plus a
//! region kernel the multilevel runtime can schedule tile by tile.
//!
//! ```
//! use easyhps_dp::{DpProblem, Nussinov};
//! use easyhps_dp::sequence::{random_sequence, Alphabet};
//!
//! let rna = random_sequence(Alphabet::Rna, 40, 7);
//! let problem = Nussinov::new(rna);
//! let matrix = problem.solve_sequential();
//! let pairs = problem.traceback(&matrix);
//! assert_eq!(pairs.len() as i32, problem.max_pairs(&matrix));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algos;
mod alignment;
mod cell;
mod custom_problem;
mod matrix;
mod problem;
pub mod scoring;
pub mod sequence;
mod simd;

pub use algos::{
    BandedEditDistance, CykParser, EditDistance, EditOp, Grammar, Hirschberg, Hmm, Knapsack, Lcs,
    LongestPalindrome, MatrixChain, NeedlemanWunsch, Nussinov, OptimalBst, Quadrant2D2D,
    SemiGlobal, SmithWatermanAffine, SmithWatermanGeneralGap, Viterbi, BAND_INF,
};
pub use alignment::LocalAlignment;
pub use cell::{Cell, Gotoh};
pub use custom_problem::{CellCtx, ClosureProblem, ClosureProblemBuilder};
pub use matrix::{DpGrid, DpMatrix};
pub use problem::DpProblem;
pub use scoring::{GapPenalty, Substitution};
