//! Scoring schemes: substitution scores and gap penalty functions.

use std::sync::Arc;

/// Substitution scoring for pairwise alignment.
#[derive(Clone, Debug)]
pub enum Substitution {
    /// Fixed match / mismatch scores.
    Simple {
        /// Score for identical symbols (positive).
        match_score: i32,
        /// Score for differing symbols (typically negative).
        mismatch: i32,
    },
    /// Full lookup over a small alphabet (`table[a][b]`), e.g. a BLOSUM-like
    /// matrix.
    Table {
        /// Alphabet size; symbols must be `< size`.
        size: usize,
        /// Row-major score table of `size * size` entries.
        table: Arc<[i32]>,
    },
}

/// The 20 standard amino acids in BLOSUM62 row order.
pub const AMINO_ACIDS: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// BLOSUM62 substitution scores, row-major over [`AMINO_ACIDS`] order.
#[rustfmt::skip]
const BLOSUM62: [i8; 400] = [
//   A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
     4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, // A
    -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, // R
    -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3, // N
    -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3, // D
     0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, // C
    -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2, // Q
    -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2, // E
     0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, // G
    -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3, // H
    -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, // I
    -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, // L
    -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2, // K
    -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, // M
    -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, // F
    -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, // P
     1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2, // S
     0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, // T
    -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, // W
    -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -2, // Y
     0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -2,  4, // V
];

impl Substitution {
    /// The common DNA default: +2 match, -1 mismatch.
    pub fn dna_default() -> Self {
        Substitution::Simple {
            match_score: 2,
            mismatch: -1,
        }
    }

    /// BLOSUM62 over ASCII amino-acid letters (uppercase). Unknown symbols
    /// panic; use [`AMINO_ACIDS`] for the alphabet.
    pub fn blosum62() -> Self {
        // Expand the 20x20 table to a 256x256 ASCII lookup so callers can
        // score raw protein bytes directly.
        let mut table = vec![0i32; 256 * 256];
        for (i, &a) in AMINO_ACIDS.iter().enumerate() {
            for (j, &b) in AMINO_ACIDS.iter().enumerate() {
                table[a as usize * 256 + b as usize] = BLOSUM62[i * 20 + j] as i32;
            }
        }
        Substitution::Table {
            size: 256,
            table: table.into(),
        }
    }

    /// Score of aligning symbols `a` and `b`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        match self {
            Substitution::Simple {
                match_score,
                mismatch,
            } => {
                if a == b {
                    *match_score
                } else {
                    *mismatch
                }
            }
            Substitution::Table { size, table } => {
                let (a, b) = (a as usize, b as usize);
                assert!(a < *size && b < *size, "symbol outside alphabet");
                table[a * size + b]
            }
        }
    }
}

/// Gap penalty `w(k)` as a function of gap length `k >= 1`. The *general*
/// form is what makes Smith-Waterman a 2D/1D recurrence: every cell must
/// scan its whole row and column prefix (the paper's SWGG workload).
#[derive(Clone)]
pub enum GapPenalty {
    /// `w(k) = a * k`.
    Linear {
        /// Per-symbol gap cost (positive).
        per_gap: i32,
    },
    /// `w(k) = open + extend * (k - 1)`; affine gaps admit the O(1) Gotoh
    /// recurrence, turning the problem back into 2D/0D.
    Affine {
        /// Cost of opening a gap (positive).
        open: i32,
        /// Cost of each additional gapped symbol (positive).
        extend: i32,
    },
    /// `w(k) = a + b * floor(log2 k)`: a genuinely non-affine concave
    /// penalty, the classic example requiring the general-gap scan.
    Logarithmic {
        /// Constant opening cost.
        a: i32,
        /// Weight of the logarithmic term.
        b: i32,
    },
    /// Arbitrary user penalty.
    Custom(Arc<dyn Fn(u32) -> i32 + Send + Sync>),
}

impl std::fmt::Debug for GapPenalty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GapPenalty::Linear { per_gap } => write!(f, "Linear({per_gap})"),
            GapPenalty::Affine { open, extend } => write!(f, "Affine({open},{extend})"),
            GapPenalty::Logarithmic { a, b } => write!(f, "Logarithmic({a},{b})"),
            GapPenalty::Custom(_) => write!(f, "Custom"),
        }
    }
}

impl GapPenalty {
    /// Penalty of a gap of length `k` (`k >= 1`).
    #[inline]
    pub fn cost(&self, k: u32) -> i32 {
        debug_assert!(k >= 1, "gap length must be at least 1");
        match self {
            GapPenalty::Linear { per_gap } => per_gap.saturating_mul(k as i32),
            GapPenalty::Affine { open, extend } => {
                open.saturating_add(extend.saturating_mul(k as i32 - 1))
            }
            GapPenalty::Logarithmic { a, b } => {
                a.saturating_add(b.saturating_mul(31 - (k.leading_zeros() as i32)))
            }
            GapPenalty::Custom(f) => f(k),
        }
    }

    /// Whether the penalty is affine (admits the Gotoh O(1) recurrence).
    pub fn is_affine(&self) -> bool {
        matches!(self, GapPenalty::Linear { .. } | GapPenalty::Affine { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_substitution() {
        let s = Substitution::dna_default();
        assert_eq!(s.score(b'A', b'A'), 2);
        assert_eq!(s.score(b'A', b'C'), -1);
    }

    #[test]
    fn table_substitution() {
        let s = Substitution::Table {
            size: 2,
            table: Arc::from([5, -3, -3, 5].as_slice()),
        };
        assert_eq!(s.score(0, 0), 5);
        assert_eq!(s.score(0, 1), -3);
    }

    #[test]
    #[should_panic(expected = "alphabet")]
    fn table_out_of_alphabet_panics() {
        let s = Substitution::Table {
            size: 2,
            table: Arc::from([0, 0, 0, 0].as_slice()),
        };
        s.score(2, 0);
    }

    #[test]
    fn gap_costs() {
        assert_eq!(GapPenalty::Linear { per_gap: 3 }.cost(4), 12);
        assert_eq!(GapPenalty::Affine { open: 5, extend: 1 }.cost(1), 5);
        assert_eq!(GapPenalty::Affine { open: 5, extend: 1 }.cost(4), 8);
        let log = GapPenalty::Logarithmic { a: 4, b: 2 };
        assert_eq!(log.cost(1), 4); // floor(log2 1) = 0
        assert_eq!(log.cost(2), 6);
        assert_eq!(log.cost(7), 8); // floor(log2 7) = 2
        assert_eq!(log.cost(8), 10);
        let custom = GapPenalty::Custom(Arc::new(|k| (k * k) as i32));
        assert_eq!(custom.cost(3), 9);
    }

    #[test]
    fn blosum62_properties() {
        let s = Substitution::blosum62();
        // Symmetric.
        for &a in AMINO_ACIDS {
            for &b in AMINO_ACIDS {
                assert_eq!(s.score(a, b), s.score(b, a), "{}/{}", a as char, b as char);
            }
        }
        // Known entries.
        assert_eq!(s.score(b'W', b'W'), 11);
        assert_eq!(s.score(b'A', b'A'), 4);
        assert_eq!(s.score(b'W', b'D'), -4);
        assert_eq!(s.score(b'I', b'V'), 3);
        // Diagonal dominates every row.
        for &a in AMINO_ACIDS {
            for &b in AMINO_ACIDS {
                if a != b {
                    assert!(s.score(a, a) > s.score(a, b));
                }
            }
        }
    }

    #[test]
    fn affinity_classification() {
        assert!(GapPenalty::Linear { per_gap: 1 }.is_affine());
        assert!(GapPenalty::Affine { open: 2, extend: 1 }.is_affine());
        assert!(!GapPenalty::Logarithmic { a: 1, b: 1 }.is_affine());
    }
}
