//! The problem abstraction: a DP recurrence the runtime can partition.

use crate::cell::Cell;
use crate::matrix::{DpGrid, DpMatrix};
use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use std::sync::Arc;

/// A dynamic-programming problem expressed over a matrix grid.
///
/// Implementations provide the cell-level dependency [`pattern`] and a
/// region kernel: given a matrix in which every cell the region reads (per
/// the pattern's data-communication level) already holds its final value,
/// [`compute_region`] fills in the region's cells. The kernel chooses its
/// own in-region evaluation order, which lets triangular problems sweep
/// bottom-up while rectangular ones sweep row-major.
///
/// [`pattern`]: DpProblem::pattern
/// [`compute_region`]: DpProblem::compute_region
pub trait DpProblem: Send + Sync + 'static {
    /// Matrix cell type.
    type Cell: Cell;

    /// Human-readable problem name (for reports and stats).
    fn name(&self) -> String;

    /// Matrix extent (the DAG Data Driven Model's `dag_size`).
    fn dims(&self) -> GridDims;

    /// Cell-level dependency pattern.
    fn pattern(&self) -> Arc<dyn DagPattern>;

    /// Compute every present cell of `region`, reading only cells the
    /// pattern declares as data dependencies (all of which are final) and
    /// cells of `region` itself.
    ///
    /// Generic over the grid so the same kernel runs on an owned
    /// [`DpMatrix`] and on the runtime's shared node matrix.
    fn compute_region<G: DpGrid<Self::Cell>>(&self, m: &mut G, region: TileRegion);

    /// Abstract work of computing one cell, in arbitrary units (used by the
    /// cluster simulator's cost models). Defaults to 1 (a 2D/0D cell);
    /// 2D/1D problems override with the scan length.
    fn cell_work(&self, _p: GridPos) -> u64 {
        1
    }

    /// Total work of a region (sum of [`Self::cell_work`] over present
    /// cells). Override when a closed form exists.
    fn region_work(&self, region: TileRegion) -> u64 {
        let pattern = self.pattern();
        region
            .iter()
            .filter(|&p| pattern.contains(p))
            .map(|p| self.cell_work(p))
            .sum()
    }

    /// Solve the whole problem sequentially: one region covering the grid.
    fn solve_sequential(&self) -> DpMatrix<Self::Cell> {
        let mut m = DpMatrix::new(self.dims());
        let dims = self.dims();
        self.compute_region(&mut m, TileRegion::new(0, dims.rows, 0, dims.cols));
        m
    }
}
