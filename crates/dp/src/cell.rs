//! Matrix cell values and their wire representation.
//!
//! The multilevel runtime ships boundary strips of the DP matrix between
//! master and slaves, so every cell type must have a fixed-size byte
//! encoding. Encodings are little-endian and independent of the host.

/// A DP matrix cell: fixed-size, trivially copyable, byte-encodable.
pub trait Cell: Copy + Default + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Encoded size in bytes.
    const WIRE_SIZE: usize;

    /// Append the encoding of `self` to `out`.
    fn write_to(&self, out: &mut Vec<u8>);

    /// Decode from exactly [`Self::WIRE_SIZE`] bytes.
    fn read_from(buf: &[u8]) -> Self;

    /// Append the encodings of every cell in `src` to `out`.
    ///
    /// The default loops over [`Cell::write_to`]; scalar cells override it
    /// with a single resize plus fixed-size chunk stores, which the
    /// compiler lowers to a near-memcpy. Grids encode whole rows through
    /// this instead of cell-at-a-time.
    fn encode_slice(src: &[Self], out: &mut Vec<u8>) {
        out.reserve(src.len() * Self::WIRE_SIZE);
        for c in src {
            c.write_to(out);
        }
    }

    /// Decode `dst.len()` cells from the front of `buf`, which must hold at
    /// least `dst.len() * WIRE_SIZE` bytes.
    fn decode_slice(dst: &mut [Self], buf: &[u8]) {
        assert!(
            buf.len() >= dst.len() * Self::WIRE_SIZE,
            "decode_slice: buffer too short"
        );
        for (c, chunk) in dst.iter_mut().zip(buf.chunks_exact(Self::WIRE_SIZE)) {
            *c = Self::read_from(chunk);
        }
    }
}

macro_rules! impl_scalar_cell {
    ($($t:ty => $size:literal),* $(,)?) => {$(
        impl Cell for $t {
            const WIRE_SIZE: usize = $size;

            fn write_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..$size].try_into().expect("wire-size bytes"))
            }

            fn encode_slice(src: &[Self], out: &mut Vec<u8>) {
                let start = out.len();
                out.resize(start + src.len() * $size, 0);
                for (chunk, c) in out[start..].chunks_exact_mut($size).zip(src) {
                    chunk.copy_from_slice(&c.to_le_bytes());
                }
            }

            fn decode_slice(dst: &mut [Self], buf: &[u8]) {
                assert!(
                    buf.len() >= dst.len() * $size,
                    "decode_slice: buffer too short"
                );
                for (c, chunk) in dst.iter_mut().zip(buf.chunks_exact($size)) {
                    *c = <$t>::from_le_bytes(chunk.try_into().expect("exact chunk"));
                }
            }
        }
    )*};
}

impl_scalar_cell!(i32 => 4, i64 => 8, u64 => 8, f64 => 8);

/// The three running scores of Gotoh's affine-gap recurrence packed into one
/// cell: `h` (best ending anywhere), `e` (best ending in a horizontal gap),
/// `f` (best ending in a vertical gap).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Gotoh {
    /// Best alignment score ending at this cell.
    pub h: i32,
    /// Best score ending with a gap in the vertical sequence.
    pub e: i32,
    /// Best score ending with a gap in the horizontal sequence.
    pub f: i32,
}

impl Cell for Gotoh {
    const WIRE_SIZE: usize = 12;

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.h.to_le_bytes());
        out.extend_from_slice(&self.e.to_le_bytes());
        out.extend_from_slice(&self.f.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        Self {
            h: i32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")),
            e: i32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
            f: i32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
        }
    }

    fn encode_slice(src: &[Self], out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + src.len() * 12, 0);
        for (chunk, c) in out[start..].chunks_exact_mut(12).zip(src) {
            chunk[0..4].copy_from_slice(&c.h.to_le_bytes());
            chunk[4..8].copy_from_slice(&c.e.to_le_bytes());
            chunk[8..12].copy_from_slice(&c.f.to_le_bytes());
        }
    }

    fn decode_slice(dst: &mut [Self], buf: &[u8]) {
        assert!(
            buf.len() >= dst.len() * 12,
            "decode_slice: buffer too short"
        );
        for (c, chunk) in dst.iter_mut().zip(buf.chunks_exact(12)) {
            *c = Self::read_from(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<C: Cell>(v: C) {
        let mut buf = Vec::new();
        v.write_to(&mut buf);
        assert_eq!(buf.len(), C::WIRE_SIZE);
        assert_eq!(C::read_from(&buf), v);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(-123i32);
        roundtrip(i32::MIN);
        roundtrip(i64::MAX);
        roundtrip(42u64);
        roundtrip(-2.5f64);
    }

    #[test]
    fn gotoh_roundtrip() {
        roundtrip(Gotoh {
            h: 7,
            e: -1000,
            f: i32::MIN / 2,
        });
    }

    fn slice_roundtrip<C: Cell>(vals: &[C]) {
        // Bulk encode == concatenated per-cell encodes.
        let mut bulk = vec![0xAA]; // nonempty: encode appends
        C::encode_slice(vals, &mut bulk);
        let mut per_cell = vec![0xAA];
        for v in vals {
            v.write_to(&mut per_cell);
        }
        assert_eq!(bulk, per_cell);

        let mut back = vec![C::default(); vals.len()];
        C::decode_slice(&mut back, &bulk[1..]);
        assert_eq!(back, vals);
    }

    #[test]
    fn slice_codecs_match_per_cell() {
        slice_roundtrip(&[1i32, -2, i32::MAX, i32::MIN, 0]);
        slice_roundtrip(&[1i64, -2, i64::MAX]);
        slice_roundtrip(&[0u64, u64::MAX, 42]);
        slice_roundtrip(&[0.5f64, -1e300, f64::MIN_POSITIVE]);
        slice_roundtrip(&[
            Gotoh { h: 1, e: 2, f: 3 },
            Gotoh {
                h: -1,
                e: i32::MIN,
                f: i32::MAX,
            },
        ]);
        slice_roundtrip::<i32>(&[]);
    }

    #[test]
    #[should_panic(expected = "buffer too short")]
    fn decode_slice_short_buffer_panics() {
        let mut dst = [0i32; 4];
        i32::decode_slice(&mut dst, &[0u8; 15]);
    }
}
