//! Matrix cell values and their wire representation.
//!
//! The multilevel runtime ships boundary strips of the DP matrix between
//! master and slaves, so every cell type must have a fixed-size byte
//! encoding. Encodings are little-endian and independent of the host.

/// A DP matrix cell: fixed-size, trivially copyable, byte-encodable.
pub trait Cell: Copy + Default + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Encoded size in bytes.
    const WIRE_SIZE: usize;

    /// Append the encoding of `self` to `out`.
    fn write_to(&self, out: &mut Vec<u8>);

    /// Decode from exactly [`Self::WIRE_SIZE`] bytes.
    fn read_from(buf: &[u8]) -> Self;
}

impl Cell for i32 {
    const WIRE_SIZE: usize = 4;

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        i32::from_le_bytes(buf[..4].try_into().expect("4 bytes"))
    }
}

impl Cell for i64 {
    const WIRE_SIZE: usize = 8;

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        i64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))
    }
}

impl Cell for u64 {
    const WIRE_SIZE: usize = 8;

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))
    }
}

impl Cell for f64 {
    const WIRE_SIZE: usize = 8;

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))
    }
}

/// The three running scores of Gotoh's affine-gap recurrence packed into one
/// cell: `h` (best ending anywhere), `e` (best ending in a horizontal gap),
/// `f` (best ending in a vertical gap).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Gotoh {
    /// Best alignment score ending at this cell.
    pub h: i32,
    /// Best score ending with a gap in the vertical sequence.
    pub e: i32,
    /// Best score ending with a gap in the horizontal sequence.
    pub f: i32,
}

impl Cell for Gotoh {
    const WIRE_SIZE: usize = 12;

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.h.to_le_bytes());
        out.extend_from_slice(&self.e.to_le_bytes());
        out.extend_from_slice(&self.f.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        Self {
            h: i32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")),
            e: i32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
            f: i32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<C: Cell>(v: C) {
        let mut buf = Vec::new();
        v.write_to(&mut buf);
        assert_eq!(buf.len(), C::WIRE_SIZE);
        assert_eq!(C::read_from(&buf), v);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(-123i32);
        roundtrip(i32::MIN);
        roundtrip(i64::MAX);
        roundtrip(42u64);
        roundtrip(-2.5f64);
    }

    #[test]
    fn gotoh_roundtrip() {
        roundtrip(Gotoh { h: 7, e: -1000, f: i32::MIN / 2 });
    }
}
