//! Longest common subsequence (2D/0D).

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::Wavefront2D;
use easyhps_core::{DagPattern, GridDims, TileRegion};
use std::sync::Arc;

/// Longest common subsequence of two byte strings, the other canonical
/// 2D/0D wavefront:
///
/// ```text
/// L[i,j] = L[i-1,j-1] + 1                 if a_i == b_j
///        = max(L[i-1,j], L[i,j-1])        otherwise
/// ```
#[derive(Clone, Debug)]
pub struct Lcs {
    a: Vec<u8>,
    b: Vec<u8>,
}

impl Lcs {
    /// LCS of `a` (rows) and `b` (columns).
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        Self {
            a: a.into(),
            b: b.into(),
        }
    }

    /// Length of the LCS from a computed matrix.
    pub fn length(&self, m: &DpMatrix<i32>) -> i32 {
        m.get(self.a.len() as u32, self.b.len() as u32)
    }

    /// One longest common subsequence, reconstructed from a computed matrix.
    pub fn traceback(&self, m: &DpMatrix<i32>) -> Vec<u8> {
        let mut out = Vec::new();
        let (mut i, mut j) = (self.a.len() as u32, self.b.len() as u32);
        while i > 0 && j > 0 {
            if self.a[i as usize - 1] == self.b[j as usize - 1] {
                out.push(self.a[i as usize - 1]);
                i -= 1;
                j -= 1;
            } else if m.get(i - 1, j) >= m.get(i, j - 1) {
                i -= 1;
            } else {
                j -= 1;
            }
        }
        out.reverse();
        out
    }
}

impl DpProblem for Lcs {
    type Cell = i32;

    fn name(&self) -> String {
        "lcs".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(Wavefront2D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        #[cfg(feature = "simd")]
        {
            crate::algos::adiag::sweep(m, region, &self.a, &self.b, &crate::algos::adiag::LcsRule);
        }
        #[cfg(not(feature = "simd"))]
        self.compute_region_scalar(m, region);
    }
}

impl Lcs {
    /// The scalar slice-sweep kernel — the `--no-default-features`
    /// fallback and the bit-identical reference for the SIMD path.
    #[doc(hidden)]
    pub fn compute_region_scalar<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        crate::algos::row_sweep::sweep_rows_2d(
            m,
            region,
            |_| 0,
            |_| 0,
            |diag, up, left, i, j| {
                if self.a[i as usize - 1] == self.b[j as usize - 1] {
                    diag + 1
                } else {
                    up.max(left)
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcs_of(a: &str, b: &str) -> (i32, String) {
        let p = Lcs::new(a.as_bytes().to_vec(), b.as_bytes().to_vec());
        let m = p.solve_sequential();
        (p.length(&m), String::from_utf8(p.traceback(&m)).unwrap())
    }

    #[test]
    fn known_lcs() {
        let (len, s) = lcs_of("ABCBDAB", "BDCABA");
        assert_eq!(len, 4);
        assert_eq!(s.len(), 4);
        // The reconstruction must be a subsequence of both inputs.
        for (hay, _) in [("ABCBDAB", 0), ("BDCABA", 0)] {
            let mut it = hay.bytes();
            assert!(
                s.bytes().all(|c| it.any(|h| h == c)),
                "{s} not a subsequence of {hay}"
            );
        }
    }

    #[test]
    fn disjoint_strings_have_empty_lcs() {
        assert_eq!(lcs_of("AAAA", "BBBB").0, 0);
    }

    #[test]
    fn identical_strings() {
        let (len, s) = lcs_of("GATTACA", "GATTACA");
        assert_eq!(len, 7);
        assert_eq!(s, "GATTACA");
    }
}
