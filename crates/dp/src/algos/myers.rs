//! Bit-parallel Myers kernel for unit-cost edit distance.
//!
//! Myers' algorithm (in Hyyrö's block formulation) carries the *vertical
//! deltas* of one matrix column in two machine words — `PV` bit `k` set
//! when `D[i+k, j] - D[i+k-1, j] = +1`, `MV` when it is `-1` — and
//! advances a whole 64-row block per text character with a dozen word
//! operations. It applies because unit-cost edit distance guarantees
//! every adjacent-cell delta lies in `{-1, 0, +1}`, which also makes
//! *tile-boundary* initialization sound: an interior tile seeds `PV`/`MV`
//! from the actual deltas of its left-boundary column and feeds each
//! column's horizontal input delta `hin` from the row above, so the
//! kernel is bit-identical to the per-cell recurrence on any
//! [`TileRegion`], not just the full matrix.
//!
//! Long sequences use the block-wise variant: rows are processed in
//! stripes of 64, each stripe sweeping all columns with its own `Peq`
//! match-vector table; the stripe's last emitted row is the next
//! stripe's top boundary. Cell values (the runtime ships full tiles, so
//! every cell must be materialized) come from a running prefix sum of
//! the `PV`/`MV` bits — a handful of straight-line integer ops per cell
//! with no `min`-chain data dependency, which is where the speedup over
//! the slice sweep comes from.

use crate::matrix::DpGrid;
use easyhps_core::TileRegion;

/// Rows per stripe: one matrix cell per bit of a `u64`.
const WORD_ROWS: u32 = 64;

/// Advance one (possibly partial) 64-row block by one column.
///
/// `eq` holds the match bits of the text character against the stripe's
/// pattern slice, `hin ∈ {-1, 0, +1}` is the horizontal delta entering
/// the block from above. Returns the new `(PV, MV)`. For stripes shorter
/// than 64 rows the bits at and above the stripe length are garbage, but
/// carries and shifts only move information upward, so the live low bits
/// stay exact.
#[inline(always)]
fn advance(eq: u64, pv: u64, mv: u64, hin: i32) -> (u64, u64) {
    let hin_neg = (hin < 0) as u64;
    let xv = eq | mv;
    let eq = eq | hin_neg;
    let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
    let mut ph = mv | !(xh | pv);
    let mut mh = pv & xh;
    ph <<= 1;
    mh <<= 1;
    mh |= hin_neg;
    ph |= (hin > 0) as u64;
    (mh | !(xv | ph), ph & xv)
}

/// Fill `region` of the edit-distance matrix of `a` (rows) vs `b`
/// (columns). Same contract as the scalar slice sweep: boundary cells
/// outside the region are read from the grid (or the `D[0,j] = j`,
/// `D[i,0] = i` formulas), cells inside are written.
pub(crate) fn compute_region<G: DpGrid<i32>>(a: &[u8], b: &[u8], m: &mut G, region: TileRegion) {
    let (r0, r1, c0, c1) = (
        region.row_start,
        region.row_end,
        region.col_start,
        region.col_end,
    );
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    if r0 == 0 {
        // Boundary row: D[0, j] = j.
        let row0: Vec<i32> = (c0..c1).map(|j| j as i32).collect();
        m.write_row(0, c0, &row0);
    }
    let ri0 = r0.max(1);
    if ri0 >= r1 {
        return;
    }
    let ci0 = c0.max(1);
    // `off` is 1 when the region includes boundary column 0 (D[i,0] = i),
    // which the stripes emit alongside the bit-parallel columns.
    let off = (c0 < ci0) as usize;
    let width_out = (c1 - c0) as usize;
    if ci0 >= c1 {
        // Column-0-only region.
        for i in ri0..r1 {
            m.write_row(i, 0, &[i as i32]);
        }
        return;
    }
    let lb = ci0 - 1; // column feeding PV/MV initialization
    let w = (c1 - ci0) as usize;

    // Top boundary row `ri0 - 1` over columns [lb, c1): the formula row 0
    // or a row finished by the tile above.
    let mut trow = vec![0i32; w + 1];
    if r0 == 0 {
        for (x, v) in trow.iter_mut().enumerate() {
            *v = (lb as usize + x) as i32;
        }
    } else {
        m.read_row_into(ri0 - 1, lb, &mut trow);
    }

    let mut peq = [0u64; 256];
    let mut leftvals = vec![0i32; WORD_ROWS as usize + 1];
    // Per-column PV/MV snapshots of the current stripe, consumed by the
    // row-major emission pass below.
    let mut pvs = vec![0u64; w];
    let mut mvs = vec![0u64; w];
    let mut rowbuf = vec![0i32; width_out];
    let mut s0 = ri0;
    while s0 < r1 {
        let len = (r1 - s0).min(WORD_ROWS) as usize;
        // Left-boundary values D[s0-1 .. s0+len-1, lb].
        if lb == 0 {
            for (k, v) in leftvals[..=len].iter_mut().enumerate() {
                *v = (s0 as usize - 1 + k) as i32;
            }
        } else {
            for (k, v) in leftvals[..=len].iter_mut().enumerate() {
                *v = m.get(s0 - 1 + k as u32, lb);
            }
        }
        trow[0] = leftvals[0];
        // PV/MV from the left-boundary column's vertical deltas.
        let (mut pv, mut mv) = (0u64, 0u64);
        for k in 0..len {
            let d = leftvals[k + 1] - leftvals[k];
            pv |= ((d > 0) as u64) << k;
            mv |= ((d < 0) as u64) << k;
        }
        // Match vectors for the stripe's slice of `a`.
        peq.fill(0);
        for k in 0..len {
            peq[a[s0 as usize - 1 + k] as usize] |= 1u64 << k;
        }
        // Pass 1: advance the whole stripe column by column, keeping each
        // column's final delta words.
        for jj in 0..w {
            let j = ci0 + jj as u32;
            let eq = peq[b[j as usize - 1] as usize];
            let hin = trow[jj + 1] - trow[jj];
            (pv, mv) = advance(eq, pv, mv, hin);
            pvs[jj] = pv;
            mvs[jj] = mv;
        }
        // Pass 2: emit row-major. Each row updates in place from the row
        // above it — independent lanes per column, no serial prefix-sum
        // chain, sequential stores — which is what lets LLVM vectorize
        // the bit extraction.
        rowbuf[off..].copy_from_slice(&trow[1..]);
        for k in 0..len {
            let row = &mut rowbuf[off..];
            for (jj, cell) in row.iter_mut().enumerate() {
                *cell += (((pvs[jj] >> k) & 1) as i32) - (((mvs[jj] >> k) & 1) as i32);
            }
            if off == 1 {
                rowbuf[0] = (s0 as usize + k) as i32;
            }
            m.write_row(s0 + k as u32, c0, &rowbuf);
        }
        // The stripe's last row is the next stripe's top boundary (its
        // column-lb value is refreshed from `leftvals` next iteration).
        trow[1..].copy_from_slice(&rowbuf[off..]);
        s0 += len as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DpMatrix;
    use crate::sequence::{random_sequence, Alphabet};
    use easyhps_core::GridDims;

    /// Per-cell reference over the full matrix.
    fn reference(a: &[u8], b: &[u8]) -> DpMatrix<i32> {
        let dims = GridDims::new(a.len() as u32 + 1, b.len() as u32 + 1);
        let mut m = DpMatrix::<i32>::new(dims);
        for i in 0..dims.rows {
            for j in 0..dims.cols {
                let v = if i == 0 {
                    j as i32
                } else if j == 0 {
                    i as i32
                } else {
                    let sub = (a[i as usize - 1] != b[j as usize - 1]) as i32;
                    (m.get(i - 1, j) + 1)
                        .min(m.get(i, j - 1) + 1)
                        .min(m.get(i - 1, j - 1) + sub)
                };
                m.set(i, j, v);
            }
        }
        m
    }

    #[test]
    fn full_matrix_matches_reference_across_word_boundaries() {
        // Lengths straddling one and two 64-row stripes, plus tiny ones.
        for (la, lb, seed) in [
            (1, 1, 1),
            (5, 9, 2),
            (63, 70, 3),
            (64, 64, 4),
            (65, 63, 5),
            (130, 140, 6),
        ] {
            let a = random_sequence(Alphabet::Dna, la, seed);
            let b = random_sequence(Alphabet::Dna, lb, seed + 100);
            let dims = GridDims::new(la as u32 + 1, lb as u32 + 1);
            let mut m = DpMatrix::new(dims);
            compute_region(&a, &b, &mut m, TileRegion::new(0, dims.rows, 0, dims.cols));
            assert_eq!(m, reference(&a, &b), "la={la} lb={lb}");
        }
    }

    #[test]
    fn ragged_tiles_match_reference() {
        let a = random_sequence(Alphabet::Dna, 90, 7);
        let b = random_sequence(Alphabet::Dna, 75, 8);
        let reference = reference(&a, &b);
        let dims = reference.dims();
        // Tile the matrix with deliberately awkward tile shapes — single
        // rows, single columns, sub-word strips — in wavefront order.
        for (th, tw) in [(1u32, 1u32), (3, 70), (70, 3), (17, 13), (64, 64), (100, 1)] {
            let mut m = DpMatrix::new(dims);
            let tiles_r = dims.rows.div_ceil(th);
            let tiles_c = dims.cols.div_ceil(tw);
            for d in 0..(tiles_r + tiles_c - 1) {
                for tr in 0..tiles_r {
                    if d < tr || d - tr >= tiles_c {
                        continue;
                    }
                    let tc = d - tr;
                    let region = TileRegion::new(
                        tr * th,
                        (tr * th + th).min(dims.rows),
                        tc * tw,
                        (tc * tw + tw).min(dims.cols),
                    );
                    compute_region(&a, &b, &mut m, region);
                }
            }
            assert_eq!(m, reference, "tile {th}x{tw}");
        }
    }
}
