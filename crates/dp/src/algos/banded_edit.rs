//! Banded edit distance (Ukkonen): 2D/0D restricted to a diagonal band.

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::Banded2D;
use easyhps_core::{DagPattern, GridDims, TileRegion};
use std::sync::Arc;

/// Sentinel for cells outside the band (effectively +infinity; safe to
/// add small increments to without overflow).
pub const BAND_INF: i32 = i32::MAX / 4;

/// Edit distance computed only inside the diagonal band
/// `|i - j| <= band`. When the true distance is at most `band`, the
/// banded result is exact at a fraction of the work (`O(n * band)` cells
/// instead of `O(n^2)`); when it exceeds the band, the result is a lower
/// bound clipped by the band and [`BandedEditDistance::is_exact`] reports
/// `false`.
#[derive(Clone, Debug)]
pub struct BandedEditDistance {
    a: Vec<u8>,
    b: Vec<u8>,
    band: u32,
}

impl BandedEditDistance {
    /// Banded distance from `a` (rows) to `b` (columns).
    ///
    /// The band is widened to at least `|len(a) - len(b)|`, without which
    /// the end cell would be unreachable.
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>, band: u32) -> Self {
        let (a, b) = (a.into(), b.into());
        let band = band.max(a.len().abs_diff(b.len()) as u32);
        Self { a, b, band }
    }

    /// The band half-width actually used.
    pub fn band(&self) -> u32 {
        self.band
    }

    /// The computed distance (possibly clipped by the band).
    pub fn distance(&self, m: &DpMatrix<i32>) -> i32 {
        m.get(self.a.len() as u32, self.b.len() as u32)
    }

    /// Whether the banded result is guaranteed exact: true iff the
    /// distance is at most the band width.
    pub fn is_exact(&self, m: &DpMatrix<i32>) -> bool {
        self.distance(m) <= self.band as i32
    }
}

impl DpProblem for BandedEditDistance {
    type Cell = i32;

    fn name(&self) -> String {
        format!("banded-edit-distance({})", self.band)
    }

    fn dims(&self) -> GridDims {
        GridDims::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(Banded2D::new(self.dims(), self.band))
    }

    fn compute_region<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        let band = self.band;
        let read = |m: &G, i: u32, j: u32| -> i32 {
            if i.abs_diff(j) > band {
                BAND_INF
            } else {
                m.get(i, j)
            }
        };
        for i in region.row_start..region.row_end {
            for j in region.col_start..region.col_end {
                if i.abs_diff(j) > band {
                    continue;
                }
                let v = if i == 0 {
                    j as i32
                } else if j == 0 {
                    i as i32
                } else {
                    let sub = i32::from(self.a[i as usize - 1] != self.b[j as usize - 1]);
                    (read(m, i - 1, j) + 1)
                        .min(read(m, i, j - 1) + 1)
                        .min(read(m, i - 1, j - 1) + sub)
                };
                m.set(i, j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::EditDistance;
    use crate::sequence::{random_sequence, Alphabet};

    fn full(a: &[u8], b: &[u8]) -> i32 {
        let p = EditDistance::new(a.to_vec(), b.to_vec());
        p.distance(&p.solve_sequential())
    }

    #[test]
    fn wide_band_matches_full_distance() {
        let a = random_sequence(Alphabet::Dna, 30, 1);
        let b = random_sequence(Alphabet::Dna, 32, 2);
        let p = BandedEditDistance::new(a.clone(), b.clone(), 40);
        let m = p.solve_sequential();
        assert!(p.is_exact(&m));
        assert_eq!(p.distance(&m), full(&a, &b));
    }

    #[test]
    fn band_exact_when_distance_within_band() {
        // Two strings differing by 2 edits: a band of 3 suffices.
        let a = b"ACGTACGTACGTACGT".to_vec();
        let mut b = a.clone();
        b[3] = b'T';
        b.insert(10, b'G');
        let d = full(&a, &b);
        assert!(d <= 3);
        let p = BandedEditDistance::new(a, b, 3);
        let m = p.solve_sequential();
        assert!(p.is_exact(&m));
        assert_eq!(p.distance(&m), d);
    }

    #[test]
    fn narrow_band_overestimates_but_flags_inexact() {
        // Very different strings: a narrow band cannot certify the result.
        let a = random_sequence(Alphabet::Dna, 40, 5);
        let b = random_sequence(Alphabet::Dna, 40, 6);
        let d = full(&a, &b);
        let p = BandedEditDistance::new(a, b, 2);
        let m = p.solve_sequential();
        if p.is_exact(&m) {
            assert_eq!(p.distance(&m), d);
        } else {
            assert!(p.distance(&m) >= d, "band clips to an upper bound");
        }
    }

    #[test]
    fn band_widens_for_length_difference() {
        let p = BandedEditDistance::new(b"AAAA".to_vec(), b"AAAAAAAAAA".to_vec(), 1);
        assert_eq!(p.band(), 6);
        let m = p.solve_sequential();
        assert_eq!(p.distance(&m), 6);
        assert!(p.is_exact(&m));
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let a = random_sequence(Alphabet::Dna, 41, 7);
        let mut b = a.clone();
        b[5] = b'A';
        b[20] = b'C';
        let p = BandedEditDistance::new(a, b, 4);
        let seq = p.solve_sequential();
        let pattern = p.pattern();

        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::square(7))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        for pos in p.dims().iter() {
            if pattern.contains(pos) {
                assert_eq!(m.at(pos), seq.at(pos), "cell {pos}");
            }
        }
    }
}
