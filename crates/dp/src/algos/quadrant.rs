//! The paper's Algorithm 4.3 — a generic 2D/2D recurrence.

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::Full2D2D;
use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use std::sync::Arc;

/// The 2D/2D recurrence of the paper's Algorithm 4.3:
///
/// ```text
/// D[i,j] = min_{0 <= i' < i, 0 <= j' < j} D[i',j'] + w(i'+j', i+j)
/// ```
///
/// for `1 <= i, j <= n`, with `D[i,0]` and `D[0,j]` given. Every cell reads
/// the full dominated quadrant, so the data-communication level is dense —
/// the stress test for strip shipping. The weight `w` and the borders are
/// derived deterministically from a seed.
#[derive(Clone, Debug)]
pub struct Quadrant2D2D {
    n: u32,
    seed: u64,
}

impl Quadrant2D2D {
    /// An `(n+1) x (n+1)` instance with weights derived from `seed`.
    pub fn new(n: u32, seed: u64) -> Self {
        Self { n, seed }
    }

    /// The weight function `w(x, y)`: a cheap deterministic hash into
    /// `1..=16`.
    #[inline]
    pub fn weight(&self, x: u32, y: u32) -> i64 {
        let mut h = self.seed ^ ((x as u64) << 32 | y as u64);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % 16) as i64 + 1
    }

    /// Border value for `D[i,0]` / `D[0,j]`.
    #[inline]
    fn border(&self, i: u32, j: u32) -> i64 {
        self.weight(i, j.wrapping_add(7)) % 8
    }

    /// Final value `D[n,n]` from a computed matrix.
    pub fn result(&self, m: &DpMatrix<i64>) -> i64 {
        m.get(self.n, self.n)
    }
}

impl DpProblem for Quadrant2D2D {
    type Cell = i64;

    fn name(&self) -> String {
        "quadrant-2d2d".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::square(self.n + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(Full2D2D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<i64>>(&self, m: &mut G, region: TileRegion) {
        for i in region.row_start..region.row_end {
            for j in region.col_start..region.col_end {
                let v = if i == 0 || j == 0 {
                    self.border(i, j)
                } else {
                    let mut best = i64::MAX;
                    for ip in 0..i {
                        for jp in 0..j {
                            let cand = m.get(ip, jp) + self.weight(ip + jp, i + j);
                            if cand < best {
                                best = cand;
                            }
                        }
                    }
                    best
                };
                m.set(i, j, v);
            }
        }
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        (p.row as u64 * p.col as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let p1 = Quadrant2D2D::new(12, 99);
        let p2 = Quadrant2D2D::new(12, 99);
        assert_eq!(
            p1.result(&p1.solve_sequential()),
            p2.result(&p2.solve_sequential())
        );
        let p3 = Quadrant2D2D::new(12, 100);
        // Different seed almost surely differs.
        assert_ne!(
            p1.solve_sequential().as_slice(),
            p3.solve_sequential().as_slice()
        );
    }

    #[test]
    fn monotone_minimum_structure() {
        // D[i,j] >= min border - nothing, but at least every interior cell
        // equals some dominated cell plus a weight in 1..=16.
        let p = Quadrant2D2D::new(8, 5);
        let m = p.solve_sequential();
        for i in 1..=8u32 {
            for j in 1..=8u32 {
                let v = m.get(i, j);
                let found =
                    (0..i).any(|ip| (0..j).any(|jp| m.get(ip, jp) + p.weight(ip + jp, i + j) == v));
                assert!(found, "cell ({i},{j}) not witnessed");
            }
        }
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let p = Quadrant2D2D::new(14, 3);
        let seq = p.solve_sequential();

        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(4, 3))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }
}
