//! Optimal binary search tree construction — triangular 2D/1D.

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::TriangularGap;
use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use std::sync::Arc;

/// Optimal static binary search tree over keys `0..n` with access
/// frequencies `freq` (paper ref.\[4\], "optimal static search tree
/// construction"):
///
/// ```text
/// C[i,j] = min_{i<=r<=j} ( C[i,r-1] + C[r+1,j] ) + sum(freq[i..=j])
/// ```
///
/// with `C[i,j] = 0` for empty ranges. Costs are expected comparisons
/// scaled by total frequency.
#[derive(Clone, Debug)]
pub struct OptimalBst {
    freq: Vec<u64>,
    /// Prefix sums of `freq` (length n + 1) for O(1) range sums.
    prefix: Vec<u64>,
}

impl OptimalBst {
    /// Build for access frequencies `freq` (one per key, in key order).
    pub fn new(freq: Vec<u64>) -> Self {
        assert!(!freq.is_empty(), "need at least one key");
        let mut prefix = Vec::with_capacity(freq.len() + 1);
        prefix.push(0);
        for &f in &freq {
            prefix.push(prefix.last().unwrap() + f);
        }
        Self { freq, prefix }
    }

    fn n(&self) -> u32 {
        self.freq.len() as u32
    }

    #[inline]
    fn weight(&self, i: u32, j: u32) -> u64 {
        self.prefix[j as usize + 1] - self.prefix[i as usize]
    }

    /// Total weighted search cost of the optimal tree.
    pub fn optimal_cost(&self, m: &DpMatrix<u64>) -> u64 {
        m.get(0, self.n() - 1)
    }

    /// Root key of the optimal tree for the key range `i..=j`.
    pub fn root_of(&self, m: &DpMatrix<u64>, i: u32, j: u32) -> u32 {
        assert!(i <= j && j < self.n());
        let target = m.get(i, j);
        for r in i..=j {
            let left = if r > i { m.get(i, r - 1) } else { 0 };
            let right = if r < j { m.get(r + 1, j) } else { 0 };
            if left + right + self.weight(i, j) == target {
                return r;
            }
        }
        unreachable!("no root reproduces C[{i},{j}]");
    }
}

impl DpProblem for OptimalBst {
    type Cell = u64;

    fn name(&self) -> String {
        "optimal-bst".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::square(self.n())
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(TriangularGap::new(self.n()))
    }

    fn compute_region<G: DpGrid<u64>>(&self, m: &mut G, region: TileRegion) {
        for i in (region.row_start..region.row_end).rev() {
            for j in region.col_start..region.col_end {
                if j < i {
                    continue;
                }
                let v = if i == j {
                    self.freq[i as usize]
                } else {
                    (i..=j)
                        .map(|r| {
                            let left = if r > i { m.get(i, r - 1) } else { 0 };
                            let right = if r < j { m.get(r + 1, j) } else { 0 };
                            left + right
                        })
                        .min()
                        .expect("nonempty root range")
                        + self.weight(i, j)
                };
                m.set(i, j, v);
            }
        }
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        if p.col < p.row {
            0
        } else {
            (p.col - p.row) as u64 + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_keys_pick_heavier_root() {
        // freq = [1, 10]: root must be key 1 (cost 10*1 + 1*2 = 12), not
        // key 0 (cost 1*1 + 10*2 = 21).
        let p = OptimalBst::new(vec![1, 10]);
        let m = p.solve_sequential();
        assert_eq!(p.optimal_cost(&m), 12);
        assert_eq!(p.root_of(&m, 0, 1), 1);
    }

    #[test]
    fn classic_textbook_instance() {
        // Known instance: freq = [34, 8, 50] -> optimal cost 142 with root 0
        // ... verify against brute force instead of folklore numbers.
        let freq = vec![34, 8, 50];
        let p = OptimalBst::new(freq.clone());
        let m = p.solve_sequential();
        assert_eq!(p.optimal_cost(&m), brute_force(&freq));
    }

    /// Exhaustive check over all BST shapes (Catalan enumeration via
    /// recursion) for small n.
    fn brute_force(freq: &[u64]) -> u64 {
        fn go(freq: &[u64], i: usize, j: usize, depth: u64) -> u64 {
            if i > j {
                return 0;
            }
            let mut best = u64::MAX;
            for r in i..=j {
                let left = if r > i {
                    go(freq, i, r - 1, depth + 1)
                } else {
                    0
                };
                let right = if r < j {
                    go(freq, r + 1, j, depth + 1)
                } else {
                    0
                };
                best = best.min(left + right + freq[r] * depth);
            }
            best
        }
        go(freq, 0, freq.len() - 1, 1)
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let instances = [
            vec![5, 1, 1, 5],
            vec![1, 2, 3, 4, 5],
            vec![9, 1, 9, 1, 9, 1],
            vec![3, 3, 3],
            vec![7],
        ];
        for freq in instances {
            let p = OptimalBst::new(freq.clone());
            let m = p.solve_sequential();
            assert_eq!(p.optimal_cost(&m), brute_force(&freq), "freq {freq:?}");
        }
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let freq: Vec<u64> = (0..17).map(|i| 1 + (i * 5 % 11)).collect();
        let p = OptimalBst::new(freq);
        let seq = p.solve_sequential();

        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::square(5))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        for i in 0..17u32 {
            for j in i..17u32 {
                assert_eq!(m.get(i, j), seq.get(i, j), "cell ({i},{j})");
            }
        }
    }
}
