//! Nussinov RNA secondary-structure prediction — triangular 2D/1D.

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use crate::sequence::rna_pairs;
use easyhps_core::patterns::TriangularGap;
use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use std::sync::Arc;

/// Nussinov's maximum base-pairing recurrence over the upper triangle
/// (`0 <= i <= j < n`):
///
/// ```text
/// F[i,j] = max( F[i+1,j],
///               F[i,j-1],
///               F[i+1,j-1] + pair(i,j)        if j - i > min_loop
///               max_{i<k<j} F[i,k] + F[k+1,j] )
/// ```
///
/// The bifurcation scan makes each cell `O(j - i)` — the same 2D/1D class
/// as SWGG but over a triangle, so the work per anti-diagonal grows toward
/// the upper-right corner. This skew is what defeats static block-cyclic
/// scheduling in the paper's Fig. 17.
#[derive(Clone, Debug)]
pub struct Nussinov {
    seq: Vec<u8>,
    /// Minimum unpaired loop length between a pair (`j - i > min_loop`);
    /// the classic algorithm uses 1 (no sharp hairpins).
    min_loop: u32,
}

impl Nussinov {
    /// Fold `seq` with the default minimum loop length of 1.
    pub fn new(seq: impl Into<Vec<u8>>) -> Self {
        Self {
            seq: seq.into(),
            min_loop: 1,
        }
    }

    /// Fold with a custom minimum loop length.
    pub fn with_min_loop(seq: impl Into<Vec<u8>>, min_loop: u32) -> Self {
        Self {
            seq: seq.into(),
            min_loop,
        }
    }

    fn n(&self) -> u32 {
        self.seq.len() as u32
    }

    /// Maximum number of base pairs, read from a computed matrix.
    pub fn max_pairs(&self, m: &DpMatrix<i32>) -> i32 {
        if self.seq.is_empty() {
            return 0;
        }
        m.get(0, self.n() - 1)
    }

    /// Reconstruct one optimal set of base pairs `(i, j)` from a computed
    /// matrix.
    pub fn traceback(&self, m: &DpMatrix<i32>) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        if self.seq.is_empty() {
            return pairs;
        }
        let mut stack = vec![(0u32, self.n() - 1)];
        while let Some((i, j)) = stack.pop() {
            if j <= i {
                continue;
            }
            let cur = m.get(i, j);
            if cur == 0 {
                continue;
            }
            if m.get(i + 1, j) == cur {
                stack.push((i + 1, j));
            } else if m.get(i, j - 1) == cur {
                stack.push((i, j - 1));
            } else if j - i > self.min_loop
                && rna_pairs(self.seq[i as usize], self.seq[j as usize])
                && m.get(i + 1, j - 1) + 1 == cur
            {
                pairs.push((i, j));
                stack.push((i + 1, j - 1));
            } else {
                let mut found = false;
                for k in (i + 1)..j {
                    if m.get(i, k) + m.get(k + 1, j) == cur {
                        stack.push((i, k));
                        stack.push((k + 1, j));
                        found = true;
                        break;
                    }
                }
                assert!(found, "traceback stuck at ({i},{j})");
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// Dot-bracket string of a pair set.
    pub fn dot_bracket(&self, pairs: &[(u32, u32)]) -> String {
        let mut s = vec![b'.'; self.seq.len()];
        for &(i, j) in pairs {
            s[i as usize] = b'(';
            s[j as usize] = b')';
        }
        String::from_utf8(s).expect("ASCII")
    }
}

impl DpProblem for Nussinov {
    type Cell = i32;

    fn name(&self) -> String {
        "nussinov".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::square(self.n())
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(TriangularGap::new(self.n()))
    }

    fn compute_region<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        self.compute_region_recursive(m, region, RECURSE_BASE);
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        if p.col < p.row {
            0
        } else {
            (p.col - p.row) as u64 + 1
        }
    }
}

/// Base-case edge length of the cache-oblivious recursion: regions no
/// larger than this on either side run the iterative kernel directly.
/// A 256-cell side keeps the iterative kernel's scan buffers inside L2;
/// smaller bases trade too much per-leaf setup (buffer allocation,
/// column gathers along quadrant seams) for locality the caches already
/// provide.
const RECURSE_BASE: u32 = 256;

impl Nussinov {
    /// Cache-oblivious recursive tiling: halve any side larger than
    /// `base` and visit the quadrants in dependency order — bottom-left
    /// first (it feeds both neighbours), then top-left and bottom-right
    /// (independent of each other), then top-right, which consumes row
    /// prefixes from the top-left and column suffixes from the
    /// bottom-right. Leaves run the iterative slice kernel, so every
    /// scan walks buffers sized to the base case regardless of how big
    /// the outer region is. Exposed with a tunable `base` for tests and
    /// benches; [`DpProblem::compute_region`] fixes it at
    /// [`RECURSE_BASE`].
    #[doc(hidden)]
    pub fn compute_region_recursive<G: DpGrid<i32>>(
        &self,
        m: &mut G,
        region: TileRegion,
        base: u32,
    ) {
        let (r0, r1, c0, c1) = (
            region.row_start,
            region.row_end,
            region.col_start,
            region.col_end,
        );
        if r0 >= r1 || c0 >= c1 || c1 <= r0 {
            return;
        }
        let (rows, cols) = (r1 - r0, c1 - c0);
        if rows <= base && cols <= base {
            self.compute_region_iterative(m, region);
            return;
        }
        let rm = if rows > base { r0 + rows / 2 } else { r1 };
        let cm = if cols > base { c0 + cols / 2 } else { c1 };
        self.compute_region_recursive(m, TileRegion::new(rm, r1, c0, cm), base);
        self.compute_region_recursive(m, TileRegion::new(r0, rm, c0, cm), base);
        self.compute_region_recursive(m, TileRegion::new(rm, r1, cm, c1), base);
        self.compute_region_recursive(m, TileRegion::new(r0, rm, cm, c1), base);
    }

    /// The iterative slice kernel (the recursion's base case): bottom-up
    /// rows, left-to-right columns — inside the region, (i+1, *) is done
    /// before row i, and (i, j-1) before (i, j).
    #[doc(hidden)]
    pub fn compute_region_iterative<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        let (r0, r1, c0, c1) = (
            region.row_start,
            region.row_end,
            region.col_start,
            region.col_end,
        );
        if r0 >= r1 || c0 >= c1 || c1 <= r0 {
            // (c1 <= r0: the region lies entirely in the untouched lower
            // triangle.)
            return;
        }
        let w = (c1 - c0) as usize;
        // Per region column j, cells of rows [r0, c1) — the bifurcation
        // scan's right operand. Rows below the region come from finished
        // tiles (or the never-written lower triangle, which reads as 0).
        let span = (c1 - r0) as usize;
        let mut cols = vec![0i32; w * span];
        let mut tmp = vec![0i32; w];
        for r in r1..c1 {
            m.read_row_into(r, c0, &mut tmp);
            for (idx, &v) in tmp.iter().enumerate() {
                cols[idx * span + (r - r0) as usize] = v;
            }
        }
        // The current row over columns [0, c1); the prefix [0, c0) is one
        // bulk read per row, the region part is produced in place.
        let mut rowbuf = vec![0i32; c1 as usize];
        for i in (r0..r1).rev() {
            if c0 > 0 {
                m.read_row_into(i, 0, &mut rowbuf[..c0 as usize]);
            }
            let start = c0.max(i);
            for j in start..c1 {
                let idx = (j - c0) as usize;
                let col_j = &cols[idx * span..(idx + 1) * span];
                let v = if j <= i {
                    0
                } else {
                    // F[i+1, j] and F[i, j-1].
                    let mut best = col_j[(i + 1 - r0) as usize].max(rowbuf[j as usize - 1]);
                    if j - i > self.min_loop
                        && rna_pairs(self.seq[i as usize], self.seq[j as usize])
                    {
                        let pair_diag = if j == c0 {
                            m.get(i + 1, c0 - 1)
                        } else {
                            cols[(idx - 1) * span + (i + 1 - r0) as usize]
                        };
                        best = best.max(pair_diag + 1);
                    }
                    // Bifurcation: k in (i, j) pairs F[i, k] (row) with
                    // F[k+1, j] (column).
                    best = best.max(crate::simd::add_scan_max(
                        &rowbuf[(i + 1) as usize..j as usize],
                        &col_j[(i + 2 - r0) as usize..(j + 1 - r0) as usize],
                    ));
                    best
                };
                rowbuf[j as usize] = v;
                cols[idx * span + (i - r0) as usize] = v;
            }
            if start < c1 {
                m.write_row(i, start, &rowbuf[start as usize..c1 as usize]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{random_sequence, Alphabet};

    /// The recurrence written cell-at-a-time, as a reference for the
    /// slice-sweep kernel.
    fn reference_cell(p: &Nussinov, m: &DpMatrix<i32>, i: u32, j: u32) -> i32 {
        if j <= i {
            return 0;
        }
        let mut best = m.get(i + 1, j).max(m.get(i, j - 1));
        if j - i > p.min_loop && rna_pairs(p.seq[i as usize], p.seq[j as usize]) {
            best = best.max(m.get(i + 1, j - 1) + 1);
        }
        for k in (i + 1)..j {
            best = best.max(m.get(i, k) + m.get(k + 1, j));
        }
        best
    }

    #[test]
    fn sweep_kernel_matches_per_cell_reference() {
        let seq = random_sequence(Alphabet::Rna, 41, 17);
        let p = Nussinov::new(seq);
        let m = p.solve_sequential();
        let n = p.n();
        let mut r = DpMatrix::new(p.dims());
        for i in (0..n).rev() {
            for j in i..n {
                let v = reference_cell(&p, &r, i, j);
                r.set(i, j, v);
            }
        }
        for i in 0..n {
            for j in i..n {
                assert_eq!(m.get(i, j), r.get(i, j), "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn tiny_hairpin() {
        // GGGAAACCC folds into three GC pairs with an AAA loop.
        let p = Nussinov::new(b"GGGAAACCC".to_vec());
        let m = p.solve_sequential();
        assert_eq!(p.max_pairs(&m), 3);
        let pairs = p.traceback(&m);
        assert_eq!(pairs.len(), 3);
        let db = p.dot_bracket(&pairs);
        assert_eq!(db.matches('(').count(), 3);
        assert_eq!(db.matches(')').count(), 3);
    }

    #[test]
    fn unpairable_sequence() {
        let p = Nussinov::new(b"AAAA".to_vec());
        let m = p.solve_sequential();
        assert_eq!(p.max_pairs(&m), 0);
        assert!(p.traceback(&m).is_empty());
    }

    #[test]
    fn empty_and_single() {
        let p = Nussinov::new(Vec::<u8>::new());
        assert_eq!(p.max_pairs(&p.solve_sequential()), 0);
        let p = Nussinov::new(b"A".to_vec());
        assert_eq!(p.max_pairs(&p.solve_sequential()), 0);
    }

    #[test]
    fn min_loop_blocks_sharp_hairpins() {
        // AU adjacent: with min_loop 1, A-U at distance 1 cannot pair.
        let p = Nussinov::new(b"AU".to_vec());
        let m = p.solve_sequential();
        assert_eq!(p.max_pairs(&m), 0);
        let p0 = Nussinov::with_min_loop(b"AU".to_vec(), 0);
        let m0 = p0.solve_sequential();
        assert_eq!(p0.max_pairs(&m0), 1);
    }

    #[test]
    fn pairs_are_valid_and_non_crossing_count() {
        let seq = random_sequence(Alphabet::Rna, 60, 42);
        let p = Nussinov::new(seq.clone());
        let m = p.solve_sequential();
        let pairs = p.traceback(&m);
        assert_eq!(pairs.len() as i32, p.max_pairs(&m));
        for &(i, j) in &pairs {
            assert!(j > i + 1);
            assert!(rna_pairs(seq[i as usize], seq[j as usize]));
        }
        // Nussinov structures are nested: for i1 < i2, either the second
        // pair nests inside the first (j2 < j1) or is disjoint (i2 > j1).
        for &(i1, j1) in &pairs {
            for &(i2, j2) in &pairs {
                if i1 < i2 {
                    assert!(j2 < j1 || i2 > j1, "crossing pair");
                }
            }
        }
    }

    #[test]
    fn recursive_tiling_matches_iterative_with_tiny_base() {
        // Force several recursion levels (90 >> base 8) and ragged splits,
        // then demand bit-identical output against the iterative kernel.
        let seq = random_sequence(Alphabet::Rna, 90, 23);
        let p = Nussinov::new(seq);
        let full = easyhps_core::TileRegion::new(0, p.n(), 0, p.n());
        let mut iter = DpMatrix::new(p.dims());
        p.compute_region_iterative(&mut iter, full);
        for base in [8, 13, 64] {
            let mut rec = DpMatrix::new(p.dims());
            p.compute_region_recursive(&mut rec, full, base);
            assert_eq!(rec, iter, "base {base}");
        }
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let seq = random_sequence(Alphabet::Rna, 47, 9);
        let p = Nussinov::new(seq);
        let seq_m = p.solve_sequential();

        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::square(8))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        // Compare only the upper triangle (lower is never touched).
        for i in 0..47u32 {
            for j in i..47u32 {
                assert_eq!(m.get(i, j), seq_m.get(i, j), "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn cell_work_grows_with_span() {
        let p = Nussinov::new(random_sequence(Alphabet::Rna, 10, 1));
        assert_eq!(p.cell_work(GridPos::new(3, 3)), 1);
        assert_eq!(p.cell_work(GridPos::new(0, 9)), 10);
        assert_eq!(p.cell_work(GridPos::new(5, 2)), 0);
    }
}
