//! Viterbi decoding of a hidden Markov model.
//!
//! The trellis is a `(T x S)` grid (time by state); every cell reads the
//! whole previous time-row, so rows are barriers — the [`PrevRow2D`]
//! pattern. Partition by rows only (the runtime rejects column-split
//! multi-row tiles as cyclic; see the pattern docs). Log-space scores
//! keep everything in `f64`.

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::PrevRow2D;
use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use std::sync::Arc;

/// A discrete hidden Markov model in log space.
#[derive(Clone, Debug)]
pub struct Hmm {
    /// Number of hidden states `S`.
    pub states: usize,
    /// Number of observation symbols `M`.
    pub symbols: usize,
    /// `log P(s at t=0)`, length `S`.
    pub log_init: Vec<f64>,
    /// `log P(s' | s)`, row-major `S x S`.
    pub log_trans: Vec<f64>,
    /// `log P(o | s)`, row-major `S x M`.
    pub log_emit: Vec<f64>,
}

impl Hmm {
    /// Validate dimensions.
    pub fn validate(&self) -> Result<(), String> {
        if self.states == 0 || self.symbols == 0 {
            return Err("need at least one state and one symbol".into());
        }
        if self.log_init.len() != self.states {
            return Err("log_init length != states".into());
        }
        if self.log_trans.len() != self.states * self.states {
            return Err("log_trans length != states^2".into());
        }
        if self.log_emit.len() != self.states * self.symbols {
            return Err("log_emit length != states*symbols".into());
        }
        Ok(())
    }

    /// A deterministic random HMM (probabilities normalized per row) for
    /// tests and demos.
    pub fn random(states: usize, symbols: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row = |n: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..1.0)).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|x| (x / sum).ln()).collect()
        };
        let log_init = row(states);
        let mut log_trans = Vec::with_capacity(states * states);
        for _ in 0..states {
            log_trans.extend(row(states));
        }
        let mut log_emit = Vec::with_capacity(states * symbols);
        for _ in 0..states {
            log_emit.extend(row(symbols));
        }
        Self {
            states,
            symbols,
            log_init,
            log_trans,
            log_emit,
        }
    }

    #[inline]
    fn trans(&self, from: usize, to: usize) -> f64 {
        self.log_trans[from * self.states + to]
    }

    #[inline]
    fn emit(&self, state: usize, symbol: usize) -> f64 {
        self.log_emit[state * self.symbols + symbol]
    }
}

/// Viterbi decoding of one observation sequence under an [`Hmm`].
#[derive(Clone, Debug)]
pub struct Viterbi {
    hmm: Hmm,
    observations: Vec<u32>,
}

impl Viterbi {
    /// Decoder for `observations` (each `< hmm.symbols`).
    pub fn new(hmm: Hmm, observations: Vec<u32>) -> Self {
        hmm.validate().expect("valid HMM");
        assert!(
            observations.iter().all(|&o| (o as usize) < hmm.symbols),
            "observation outside the symbol alphabet"
        );
        Self { hmm, observations }
    }

    /// Log-probability of the best state path, from a computed trellis.
    pub fn best_log_prob(&self, m: &DpMatrix<f64>) -> f64 {
        let t = self.observations.len() as u32;
        if t == 0 {
            return 0.0;
        }
        (0..self.hmm.states as u32)
            .map(|s| m.get(t - 1, s))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The most likely state path, reconstructed from a computed trellis.
    pub fn best_path(&self, m: &DpMatrix<f64>) -> Vec<usize> {
        let t = self.observations.len();
        if t == 0 {
            return Vec::new();
        }
        let s_count = self.hmm.states;
        let argmax_row = |row: u32| -> usize {
            (0..s_count)
                .max_by(|&a, &b| {
                    m.get(row, a as u32)
                        .partial_cmp(&m.get(row, b as u32))
                        .expect("finite scores")
                })
                .expect("at least one state")
        };
        let mut path = vec![0usize; t];
        path[t - 1] = argmax_row(t as u32 - 1);
        // Walk back: find the predecessor consistent with the cell value.
        for row in (1..t).rev() {
            let cur = path[row];
            let target = m.get(row as u32, cur as u32);
            let emit = self.hmm.emit(cur, self.observations[row] as usize);
            let mut chosen = 0usize;
            let mut best_err = f64::INFINITY;
            for prev in 0..s_count {
                let cand = m.get(row as u32 - 1, prev as u32) + self.hmm.trans(prev, cur) + emit;
                let err = (cand - target).abs();
                if err < best_err {
                    best_err = err;
                    chosen = prev;
                }
            }
            path[row - 1] = chosen;
        }
        path
    }
}

impl DpProblem for Viterbi {
    type Cell = f64;

    fn name(&self) -> String {
        "viterbi".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::new(
            self.observations.len().max(1) as u32,
            self.hmm.states as u32,
        )
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(PrevRow2D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<f64>>(&self, m: &mut G, region: TileRegion) {
        if self.observations.is_empty() {
            return;
        }
        for t in region.row_start..region.row_end {
            let obs = self.observations[t as usize] as usize;
            for s in region.col_start..region.col_end {
                let v = if t == 0 {
                    self.hmm.log_init[s as usize] + self.hmm.emit(s as usize, obs)
                } else {
                    let mut best = f64::NEG_INFINITY;
                    for prev in 0..self.hmm.states {
                        let cand = m.get(t - 1, prev as u32) + self.hmm.trans(prev, s as usize);
                        if cand > best {
                            best = cand;
                        }
                    }
                    best + self.hmm.emit(s as usize, obs)
                };
                m.set(t, s, v);
            }
        }
    }

    fn cell_work(&self, _p: GridPos) -> u64 {
        self.hmm.states as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exhaustive best path over all S^T assignments.
    fn brute_force(hmm: &Hmm, obs: &[u32]) -> (f64, Vec<usize>) {
        let (s, t) = (hmm.states, obs.len());
        let mut best = (f64::NEG_INFINITY, vec![0; t]);
        let total = (s as u64).pow(t as u32);
        for mut code in 0..total {
            let mut path = Vec::with_capacity(t);
            for _ in 0..t {
                path.push((code % s as u64) as usize);
                code /= s as u64;
            }
            let mut lp = hmm.log_init[path[0]] + hmm.emit(path[0], obs[0] as usize);
            for k in 1..t {
                lp += hmm.trans(path[k - 1], path[k]) + hmm.emit(path[k], obs[k] as usize);
            }
            if lp > best.0 {
                best = (lp, path);
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        for seed in 0..6u64 {
            let hmm = Hmm::random(3, 4, seed);
            let mut rng = StdRng::seed_from_u64(seed + 77);
            let obs: Vec<u32> = (0..7).map(|_| rng.random_range(0..4)).collect();
            let v = Viterbi::new(hmm.clone(), obs.clone());
            let m = v.solve_sequential();
            let (bf_lp, bf_path) = brute_force(&hmm, &obs);
            assert!((v.best_log_prob(&m) - bf_lp).abs() < 1e-9, "seed {seed}");
            // The reconstructed path must score identically (ties allowed).
            let path = v.best_path(&m);
            let mut lp = hmm.log_init[path[0]] + hmm.emit(path[0], obs[0] as usize);
            for k in 1..obs.len() {
                lp += hmm.trans(path[k - 1], path[k]) + hmm.emit(path[k], obs[k] as usize);
            }
            assert!(
                (lp - bf_lp).abs() < 1e-9,
                "seed {seed}: path {path:?} vs {bf_path:?}"
            );
        }
    }

    #[test]
    fn empty_observations() {
        let hmm = Hmm::random(2, 2, 1);
        let v = Viterbi::new(hmm, vec![]);
        let m = v.solve_sequential();
        assert_eq!(v.best_log_prob(&m), 0.0);
        assert!(v.best_path(&m).is_empty());
    }

    #[test]
    fn validation_rejects_bad_dims() {
        let mut hmm = Hmm::random(2, 3, 0);
        hmm.log_init.pop();
        assert!(hmm.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "symbol alphabet")]
    fn rejects_out_of_alphabet_observation() {
        let hmm = Hmm::random(2, 3, 0);
        Viterbi::new(hmm, vec![5]);
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let hmm = Hmm::random(12, 5, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let obs: Vec<u32> = (0..40).map(|_| rng.random_range(0..5)).collect();
        let v = Viterbi::new(hmm, obs);
        let seq = v.solve_sequential();
        let model = easyhps_core::DagDataDrivenModel::builder(v.pattern())
            .process_partition_size(easyhps_core::GridDims::new(7, 12)) // full-row bands
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(v.dims());
        DagParser::drain_sequential(&dag, |x| {
            v.compute_region(&mut m, model.tile_region(dag.vertex(x).pos));
        });
        assert_eq!(m, seq);
    }
}
