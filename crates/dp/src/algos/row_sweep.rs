//! Shared row-sweep kernel skeleton for 2D/0D wavefront recurrences.
//!
//! Needleman-Wunsch, edit distance and LCS all read the same three
//! neighbours (up-left, up, left). Instead of four grid calls per cell,
//! the sweep keeps rows `i-1` and `i` in two flat buffers and touches the
//! grid once per row: one bulk read to seed the previous row, one `get`
//! per row for the left-boundary column, one bulk write of the finished
//! row. On grids with region checks this also turns per-cell asserts into
//! one check per row.

use crate::matrix::DpGrid;
use easyhps_core::TileRegion;

/// Sweep `region` row by row, filling each cell from its three
/// neighbours.
///
/// * `top(j)` — value of boundary row `i == 0` at column `j`;
/// * `left(i)` — value of boundary column `j == 0` at row `i > 0`;
/// * `inner(diag, up, left_cell, i, j)` — the recurrence for `i, j > 0`
///   given `m[i-1,j-1]`, `m[i-1,j]` and `m[i,j-1]`.
///
/// The buffers cover columns `[c0 - off, c1)` where slot 0 carries the
/// left-boundary column `c0 - 1` whenever the region does not start at
/// column 0, so `inner` never needs a grid read.
pub(crate) fn sweep_rows_2d<G: DpGrid<i32>>(
    m: &mut G,
    region: TileRegion,
    top: impl Fn(u32) -> i32,
    left: impl Fn(u32) -> i32,
    inner: impl Fn(i32, i32, i32, u32, u32) -> i32,
) {
    let (r0, r1, c0, c1) = (
        region.row_start,
        region.row_end,
        region.col_start,
        region.col_end,
    );
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    let off = (c0 > 0) as usize;
    let width = (c1 - c0) as usize + off;
    let mut prev = vec![0i32; width];
    let mut cur = vec![0i32; width];
    if r0 > 0 {
        // Row r0-1 over [c0-off, c1): the up row plus the diagonal corner.
        m.read_row_into(r0 - 1, c0 - off as u32, &mut prev);
    }
    for i in r0..r1 {
        if i == 0 {
            for (k, v) in cur.iter_mut().enumerate() {
                *v = top(c0 - off as u32 + k as u32);
            }
        } else {
            if off == 1 {
                // Left-boundary column, produced by the left-neighbour tile.
                cur[0] = m.get(i, c0 - 1);
            }
            for k in off..width {
                let j = c0 + (k - off) as u32;
                cur[k] = if j == 0 {
                    left(i)
                } else {
                    // j > 0 implies k >= 1 (k == 0 only at c0 == 0, j == 0).
                    inner(prev[k - 1], prev[k], cur[k - 1], i, j)
                };
            }
        }
        m.write_row(i, c0, &cur[off..]);
        std::mem::swap(&mut prev, &mut cur);
    }
}
