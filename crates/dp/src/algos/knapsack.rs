//! 0/1 knapsack (2D/0D over an item x capacity grid).

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::RowLookback2D;
use easyhps_core::{DagPattern, GridDims, TileRegion};
use std::sync::Arc;

/// The 0/1 knapsack recurrence over an `(n+1) x (W+1)` grid:
///
/// ```text
/// V[i,w] = max( V[i-1,w], V[i-1, w - weight_i] + value_i )
/// ```
///
/// Strictly a "1.5D" problem — each cell looks one row up at two columns —
/// but the lookback `weight_i` can reach arbitrarily far left, so the
/// data-communication level must carry the whole previous-row prefix; the
/// [`RowLookback2D`] pattern declares exactly that, and the runtime ships
/// the corresponding strips.
#[derive(Clone, Debug)]
pub struct Knapsack {
    weights: Vec<u32>,
    values: Vec<u64>,
    capacity: u32,
}

impl Knapsack {
    /// Items as `(weight, value)` pairs with a knapsack of `capacity`.
    pub fn new(items: &[(u32, u64)], capacity: u32) -> Self {
        Self {
            weights: items.iter().map(|i| i.0).collect(),
            values: items.iter().map(|i| i.1).collect(),
            capacity,
        }
    }

    fn n(&self) -> u32 {
        self.weights.len() as u32
    }

    /// Best achievable value, from a computed matrix.
    pub fn best_value(&self, m: &DpMatrix<u64>) -> u64 {
        m.get(self.n(), self.capacity)
    }

    /// The chosen item indices, reconstructed from a computed matrix.
    pub fn chosen_items(&self, m: &DpMatrix<u64>) -> Vec<usize> {
        let mut out = Vec::new();
        let mut w = self.capacity;
        for i in (1..=self.n()).rev() {
            if m.get(i, w) != m.get(i - 1, w) {
                out.push(i as usize - 1);
                w -= self.weights[i as usize - 1];
            }
        }
        out.reverse();
        out
    }
}

impl DpProblem for Knapsack {
    type Cell = u64;

    fn name(&self) -> String {
        "knapsack".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::new(self.n() + 1, self.capacity + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(RowLookback2D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<u64>>(&self, m: &mut G, region: TileRegion) {
        for i in region.row_start..region.row_end {
            for w in region.col_start..region.col_end {
                let v = if i == 0 {
                    0
                } else {
                    let skip = m.get(i - 1, w);
                    let wt = self.weights[i as usize - 1];
                    if wt <= w {
                        skip.max(m.get(i - 1, w - wt) + self.values[i as usize - 1])
                    } else {
                        skip
                    }
                };
                m.set(i, w, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_instance() {
        // Items (weight, value): capacity 10.
        let items = [(5, 10), (4, 40), (6, 30), (3, 50)];
        let p = Knapsack::new(&items, 10);
        let m = p.solve_sequential();
        assert_eq!(p.best_value(&m), 90); // items 1 and 3 (40 + 50)
        assert_eq!(p.chosen_items(&m), vec![1, 3]);
    }

    #[test]
    fn zero_capacity_and_no_items() {
        let p = Knapsack::new(&[(1, 5)], 0);
        assert_eq!(p.best_value(&p.solve_sequential()), 0);
        let p = Knapsack::new(&[], 10);
        assert_eq!(p.best_value(&p.solve_sequential()), 0);
        assert!(p.chosen_items(&p.solve_sequential()).is_empty());
    }

    #[test]
    fn all_items_fit() {
        let items = [(1, 1), (2, 2), (3, 3)];
        let p = Knapsack::new(&items, 6);
        let m = p.solve_sequential();
        assert_eq!(p.best_value(&m), 6);
        assert_eq!(p.chosen_items(&m), vec![0, 1, 2]);
    }

    #[test]
    fn matches_brute_force() {
        let items = [(3u32, 7u64), (5, 9), (2, 4), (4, 8), (1, 2), (6, 11)];
        for cap in [0u32, 5, 9, 13, 21] {
            let p = Knapsack::new(&items, cap);
            let dp = p.best_value(&p.solve_sequential());
            // Brute force over all 2^6 subsets.
            let mut best = 0u64;
            for mask in 0u32..64 {
                let (mut w, mut v) = (0u32, 0u64);
                for (i, &(wt, val)) in items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        w += wt;
                        v += val;
                    }
                }
                if w <= cap {
                    best = best.max(v);
                }
            }
            assert_eq!(dp, best, "capacity {cap}");
        }
    }

    #[test]
    fn chosen_items_are_feasible_and_optimal() {
        let items = [(3u32, 7u64), (5, 9), (2, 4), (4, 8), (1, 2)];
        let p = Knapsack::new(&items, 9);
        let m = p.solve_sequential();
        let chosen = p.chosen_items(&m);
        let weight: u32 = chosen.iter().map(|&i| items[i].0).sum();
        let value: u64 = chosen.iter().map(|&i| items[i].1).sum();
        assert!(weight <= 9);
        assert_eq!(value, p.best_value(&m));
    }

    #[test]
    fn tiled_equal_sequential_even_with_column_partitions() {
        use easyhps_core::{DagParser, TaskDag};
        let items: Vec<(u32, u64)> = (0..12)
            .map(|i| (1 + i % 5, (i * 3 % 11) as u64 + 1))
            .collect();
        let p = Knapsack::new(&items, 30);
        let seq = p.solve_sequential();
        // Column partitions are safe because RowLookback2D ships the whole
        // previous-row prefix.
        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(3, 7))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }
}
