//! Semi-global ("glocal") alignment: full query against a substring of
//! the reference — read mapping's workhorse.

use crate::alignment::LocalAlignment;
use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use crate::scoring::Substitution;
use easyhps_core::patterns::Wavefront2D;
use easyhps_core::{DagPattern, GridDims, TileRegion};
use std::sync::Arc;

/// Semi-global alignment with linear gaps: the whole of `query` (rows)
/// aligns against *some window* of `reference` (columns) — gaps before and
/// after the window in the reference are free:
///
/// ```text
/// F[i,0] = -i*gap          F[0,j] = 0
/// F[i,j] = max( F[i-1,j-1] + s(q_i, r_j), F[i-1,j] - gap, F[i,j-1] - gap )
/// answer = max_j F[|q|, j]
/// ```
#[derive(Clone, Debug)]
pub struct SemiGlobal {
    query: Vec<u8>,
    reference: Vec<u8>,
    substitution: Substitution,
    gap: i32,
}

impl SemiGlobal {
    /// Map `query` onto `reference`.
    pub fn new(
        query: impl Into<Vec<u8>>,
        reference: impl Into<Vec<u8>>,
        substitution: Substitution,
        gap: i32,
    ) -> Self {
        assert!(gap >= 0, "gap penalty is a cost (non-negative)");
        Self {
            query: query.into(),
            reference: reference.into(),
            substitution,
            gap,
        }
    }

    /// DNA defaults: +2/-1, gap 2.
    pub fn dna(query: impl Into<Vec<u8>>, reference: impl Into<Vec<u8>>) -> Self {
        Self::new(query, reference, Substitution::dna_default(), 2)
    }

    /// Best mapping score and its end column in the reference.
    pub fn best(&self, m: &DpMatrix<i32>) -> (i32, u32) {
        let last = self.query.len() as u32;
        (0..=self.reference.len() as u32)
            .map(|j| (m.get(last, j), j))
            .max()
            .expect("nonempty row")
    }

    /// Reconstruct the mapping (query fully consumed; reference windowed).
    pub fn traceback(&self, m: &DpMatrix<i32>) -> LocalAlignment {
        let (score, end_j) = self.best(m);
        let (mut i, mut j) = (self.query.len() as u32, end_j);
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        while i > 0 {
            let cur = m.get(i, j);
            if j > 0 {
                let s = self
                    .substitution
                    .score(self.query[i as usize - 1], self.reference[j as usize - 1]);
                if m.get(i - 1, j - 1) + s == cur {
                    ra.push(self.query[i as usize - 1]);
                    rb.push(self.reference[j as usize - 1]);
                    i -= 1;
                    j -= 1;
                    continue;
                }
                if m.get(i, j - 1) - self.gap == cur {
                    ra.push(b'-');
                    rb.push(self.reference[j as usize - 1]);
                    j -= 1;
                    continue;
                }
            }
            debug_assert!(m.get(i - 1, j) - self.gap == cur);
            ra.push(self.query[i as usize - 1]);
            rb.push(b'-');
            i -= 1;
        }
        ra.reverse();
        rb.reverse();
        LocalAlignment {
            score,
            a_range: 0..self.query.len(),
            b_range: j as usize..end_j as usize,
            a_aligned: ra,
            b_aligned: rb,
        }
    }
}

impl DpProblem for SemiGlobal {
    type Cell = i32;

    fn name(&self) -> String {
        "semi-global".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::new(self.query.len() as u32 + 1, self.reference.len() as u32 + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(Wavefront2D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        for i in region.row_start..region.row_end {
            for j in region.col_start..region.col_end {
                let v = if i == 0 {
                    0
                } else if j == 0 {
                    -(i as i32) * self.gap
                } else {
                    let s = self
                        .substitution
                        .score(self.query[i as usize - 1], self.reference[j as usize - 1]);
                    (m.get(i - 1, j - 1) + s)
                        .max(m.get(i - 1, j) - self.gap)
                        .max(m.get(i, j - 1) - self.gap)
                };
                m.set(i, j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{random_sequence, Alphabet};

    #[test]
    fn exact_substring_maps_perfectly() {
        let reference = random_sequence(Alphabet::Dna, 80, 1);
        let query = reference[30..50].to_vec();
        let p = SemiGlobal::dna(query.clone(), reference);
        let m = p.solve_sequential();
        let (score, end) = p.best(&m);
        assert_eq!(score, 2 * query.len() as i32, "perfect match, no gap cost");
        assert_eq!(end, 50);
        let aln = p.traceback(&m);
        assert_eq!(aln.b_range, 30..50);
        assert_eq!(aln.identity(), 1.0);
    }

    #[test]
    fn query_with_mismatch_still_maps_to_the_right_window() {
        let reference = random_sequence(Alphabet::Dna, 60, 2);
        let mut query = reference[20..40].to_vec();
        query[10] = if query[10] == b'A' { b'C' } else { b'A' };
        let p = SemiGlobal::dna(query, reference);
        let m = p.solve_sequential();
        let aln = p.traceback(&m);
        assert_eq!(aln.b_range, 20..40);
        assert_eq!(aln.score, 2 * 19 - 1);
    }

    #[test]
    fn query_consumed_fully_even_against_poor_reference() {
        let query = b"ACGTACGT".to_vec();
        let reference = b"TTTT".to_vec();
        let p = SemiGlobal::dna(query.clone(), reference);
        let m = p.solve_sequential();
        let aln = p.traceback(&m);
        let used: Vec<u8> = aln
            .a_aligned
            .iter()
            .copied()
            .filter(|&c| c != b'-')
            .collect();
        assert_eq!(used, query, "semi-global must consume the whole query");
    }

    #[test]
    fn semi_global_at_least_matches_global_score() {
        use crate::algos::NeedlemanWunsch;
        let q = random_sequence(Alphabet::Dna, 20, 3);
        let r = random_sequence(Alphabet::Dna, 40, 4);
        let sg = SemiGlobal::dna(q.clone(), r.clone());
        let nw = NeedlemanWunsch::dna(q, r);
        let sg_score = sg.best(&sg.solve_sequential()).0;
        let nw_score = nw.score(&nw.solve_sequential());
        assert!(
            sg_score >= nw_score,
            "free end gaps can only help: {sg_score} vs {nw_score}"
        );
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let q = random_sequence(Alphabet::Dna, 23, 5);
        let r = random_sequence(Alphabet::Dna, 37, 6);
        let p = SemiGlobal::dna(q, r);
        let seq = p.solve_sequential();
        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(6, 8))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }
}
