//! Anti-diagonal SIMD kernels for the 2D/0D wavefront recurrences.
//!
//! Cells on one anti-diagonal `i + j = d` are mutually independent, so
//! the inner loop vectorizes: the three neighbour diagonals live in
//! contiguous buffers indexed by row, the `a` characters stream forward,
//! and a reversed copy of the `b` slice makes the column characters
//! stream forward too. Each finished diagonal is scattered into a
//! row-major tile buffer (strided stores, L1-resident for runtime-sized
//! tiles) which is then bulk-written row by row.
//!
//! Only the `Simple` substitution vectorizes (compare + select); `Table`
//! lookups stay on the scalar slice sweep. Results are bit-identical to
//! the sweep: the recurrences use only `max`/`add` over `i32`, whose
//! value is independent of evaluation order.
#![cfg(feature = "simd")]

use crate::matrix::DpGrid;
use easyhps_core::TileRegion;

/// One wavefront recurrence: boundary formulas plus the cell rule,
/// split into a byte-compare *score* pass and a pure-`i32` *cell* pass.
/// The split matters for vectorization: a fused body mixes 8-bit
/// compares with 32-bit arithmetic, which LLVM's cost model refuses to
/// vectorize for the wider rules, while each half alone is a clean
/// element-wise map.
pub(crate) trait AdiagRule {
    /// Value of boundary row 0 at column `j`.
    fn top(&self, j: u32) -> i32;
    /// Value of boundary column 0 at row `i`.
    fn left(&self, i: u32) -> i32;
    /// Score contribution of one character pair.
    fn score(&self, ac: u8, bc: u8) -> i32;
    /// The recurrence for `i, j > 0` from the three neighbours and the
    /// pair score. Must compile to compare/select, `max` and adds.
    fn cell(&self, diag: i32, up: i32, left: i32, score: i32) -> i32;
}

/// Needleman-Wunsch with `Simple` substitution and a linear gap.
pub(crate) struct NwRule {
    pub match_score: i32,
    pub mismatch: i32,
    pub gap: i32,
}

impl AdiagRule for NwRule {
    #[inline(always)]
    fn top(&self, j: u32) -> i32 {
        -(j as i32) * self.gap
    }

    #[inline(always)]
    fn left(&self, i: u32) -> i32 {
        -(i as i32) * self.gap
    }

    #[inline(always)]
    fn score(&self, ac: u8, bc: u8) -> i32 {
        if ac == bc {
            self.match_score
        } else {
            self.mismatch
        }
    }

    #[inline(always)]
    fn cell(&self, diag: i32, up: i32, left: i32, score: i32) -> i32 {
        (diag + score).max(up.max(left) - self.gap)
    }
}

/// Longest common subsequence.
pub(crate) struct LcsRule;

impl AdiagRule for LcsRule {
    #[inline(always)]
    fn top(&self, _j: u32) -> i32 {
        0
    }

    #[inline(always)]
    fn left(&self, _i: u32) -> i32 {
        0
    }

    #[inline(always)]
    fn score(&self, ac: u8, bc: u8) -> i32 {
        (ac == bc) as i32
    }

    #[inline(always)]
    fn cell(&self, diag: i32, up: i32, left: i32, score: i32) -> i32 {
        if score != 0 {
            diag + 1
        } else {
            up.max(left)
        }
    }
}

/// Fill `region` of the wavefront matrix of `a` (rows) vs `b` (columns)
/// in anti-diagonal order. Same boundary contract as the row sweep.
pub(crate) fn sweep<G: DpGrid<i32>, R: AdiagRule>(
    m: &mut G,
    region: TileRegion,
    a: &[u8],
    b: &[u8],
    rule: &R,
) {
    let (r0, r1, c0, c1) = (
        region.row_start,
        region.row_end,
        region.col_start,
        region.col_end,
    );
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    if r0 == 0 {
        let row0: Vec<i32> = (c0..c1).map(|j| rule.top(j)).collect();
        m.write_row(0, c0, &row0);
    }
    let ri0 = r0.max(1);
    if ri0 >= r1 {
        return;
    }
    let ci0 = c0.max(1);
    let off = (c0 < ci0) as usize;
    let width_out = (c1 - c0) as usize;
    if ci0 >= c1 {
        for i in ri0..r1 {
            m.write_row(i, 0, &[rule.left(i)]);
        }
        return;
    }
    let h = (r1 - ri0) as usize;
    let w = (c1 - ci0) as usize;

    // Characters for rows ri0..r1 forward, columns c1-1..ci0 reversed, so
    // both stream forward along a diagonal.
    let arow = &a[ri0 as usize - 1..r1 as usize - 1];
    let brev: Vec<u8> = b[ci0 as usize - 1..c1 as usize - 1]
        .iter()
        .rev()
        .copied()
        .collect();

    // Halo: top boundary row over local columns 0..=w, left boundary
    // column over local rows 0..=h (local (k, l) is matrix
    // (ri0-1+k, ci0-1+l)).
    let mut toprow = vec![0i32; w + 1];
    if r0 == 0 {
        for (x, v) in toprow.iter_mut().enumerate() {
            *v = rule.top(ci0 - 1 + x as u32);
        }
    } else {
        m.read_row_into(ri0 - 1, ci0 - 1, &mut toprow);
    }
    let mut leftcol = vec![0i32; h + 1];
    leftcol[0] = toprow[0];
    if ci0 == 1 {
        for (k, v) in leftcol.iter_mut().enumerate().skip(1) {
            *v = rule.left(ri0 - 1 + k as u32);
        }
    } else {
        for (k, v) in leftcol.iter_mut().enumerate().skip(1) {
            *v = m.get(ri0 - 1 + k as u32, ci0 - 1);
        }
    }

    // Three rolling diagonals, indexed by local row k, plus the row-major
    // output tile.
    let mut prev2 = vec![0i32; h + 1];
    let mut prev1 = vec![0i32; h + 1];
    let mut cur = vec![0i32; h + 1];
    let mut scores = vec![0i32; h.min(w)];
    prev1[0] = toprow[0]; // diagonal d = 0 is the single corner cell
    let mut out = vec![0i32; h * width_out];
    if off == 1 {
        for k in 1..=h {
            out[(k - 1) * width_out] = rule.left(ri0 - 1 + k as u32);
        }
    }
    for d in 1..=(h + w) {
        if d <= w {
            cur[0] = toprow[d];
        }
        if d <= h {
            cur[d] = leftcol[d];
        }
        let klo = 1.max(d as isize - w as isize) as usize;
        let khi = h.min(d - 1);
        // Bind the input streams as contiguous slices so each pass is a
        // pure element-wise map — the shape LLVM's loop vectorizer turns
        // into compare/blend/max vector code.
        if klo <= khi {
            let span = khi + 1 - klo;
            let ac = &arow[klo - 1..klo - 1 + span];
            let bc = &brev[w + klo - d..w + klo - d + span];
            let sc = &mut scores[..span];
            for t in 0..span {
                sc[t] = rule.score(ac[t], bc[t]);
            }
            let diag = &prev2[klo - 1..klo - 1 + span];
            let up = &prev1[klo - 1..klo - 1 + span];
            let lf = &prev1[klo..klo + span];
            let dst = &mut cur[klo..klo + span];
            for t in 0..span {
                dst[t] = rule.cell(diag[t], up[t], lf[t], sc[t]);
            }
        }
        // Scatter the finished span (halo cells excluded: k = 0 is the
        // boundary row, l = 0 the boundary column) into the tile.
        for k in klo..=khi {
            out[(k - 1) * width_out + off + (d - k - 1)] = cur[k];
        }
        std::mem::swap(&mut prev2, &mut prev1);
        std::mem::swap(&mut prev1, &mut cur);
    }
    for k in 1..=h {
        m.write_row(
            ri0 - 1 + k as u32,
            c0,
            &out[(k - 1) * width_out..k * width_out],
        );
    }
}
