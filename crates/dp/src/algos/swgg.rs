//! Smith-Waterman with a *general* gap function (SWGG) — the paper's
//! primary workload and a 2D/1D recurrence.

use crate::alignment::LocalAlignment;
use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use crate::scoring::{GapPenalty, Substitution};
use easyhps_core::patterns::RowColumn2D1D;
use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use std::sync::Arc;

/// Local alignment with an arbitrary gap penalty `w(k)`:
///
/// ```text
/// H[i,j] = max( 0,
///               H[i-1,j-1] + s(a_i, b_j),
///               max_{1<=k<=j} H[i,j-k] - w(k),
///               max_{1<=k<=i} H[i-k,j] - w(k) )
/// ```
///
/// Because `w` is not affine, each cell scans its whole row and column
/// prefix — `O(n)` work per cell, `O(n^3)` total — which is exactly why the
/// paper parallelizes it on a cluster. The data-communication level of the
/// pattern carries the row/column prefixes (see
/// [`RowColumn2D1D`]).
#[derive(Clone, Debug)]
pub struct SmithWatermanGeneralGap {
    a: Vec<u8>,
    b: Vec<u8>,
    substitution: Substitution,
    gap: GapPenalty,
}

impl SmithWatermanGeneralGap {
    /// Align `a` (rows) against `b` (columns).
    pub fn new(
        a: impl Into<Vec<u8>>,
        b: impl Into<Vec<u8>>,
        substitution: Substitution,
        gap: GapPenalty,
    ) -> Self {
        Self {
            a: a.into(),
            b: b.into(),
            substitution,
            gap,
        }
    }

    /// Convenience: DNA defaults (+2/-1) with the logarithmic gap
    /// `w(k) = 4 + 2*floor(log2 k)`.
    pub fn dna(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        Self::new(
            a,
            b,
            Substitution::dna_default(),
            GapPenalty::Logarithmic { a: 4, b: 2 },
        )
    }

    /// Best local alignment score in a computed matrix.
    pub fn best_score(&self, m: &DpMatrix<i32>) -> i32 {
        let d = m.dims();
        m.max_in_region_by_key(TileRegion::new(0, d.rows, 0, d.cols), |c| c)
            .map(|(_, v)| v)
            .unwrap_or(0)
    }

    /// Reconstruct the best local alignment from a computed matrix.
    pub fn traceback(&self, m: &DpMatrix<i32>) -> LocalAlignment {
        let d = m.dims();
        let (end, score) = m
            .max_in_region_by_key(TileRegion::new(0, d.rows, 0, d.cols), |c| c)
            .expect("nonempty matrix");
        if score <= 0 {
            return LocalAlignment {
                score: 0,
                a_range: 0..0,
                b_range: 0..0,
                a_aligned: vec![],
                b_aligned: vec![],
            };
        }

        let (mut i, mut j) = (end.row, end.col);
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        while i > 0 && j > 0 && m.get(i, j) > 0 {
            let cur = m.get(i, j);
            let s = self
                .substitution
                .score(self.a[i as usize - 1], self.b[j as usize - 1]);
            if m.get(i - 1, j - 1) + s == cur {
                ra.push(self.a[i as usize - 1]);
                rb.push(self.b[j as usize - 1]);
                i -= 1;
                j -= 1;
                continue;
            }
            let mut moved = false;
            // The `j -= k` below is followed by `break`; the captured range
            // bound is never re-read.
            #[allow(clippy::mut_range_bound)]
            for k in 1..=j {
                if m.get(i, j - k) - self.gap.cost(k) == cur {
                    for kk in 0..k {
                        ra.push(b'-');
                        rb.push(self.b[(j - kk) as usize - 1]);
                    }
                    j -= k;
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }
            #[allow(clippy::mut_range_bound)]
            for k in 1..=i {
                if m.get(i - k, j) - self.gap.cost(k) == cur {
                    for kk in 0..k {
                        ra.push(self.a[(i - kk) as usize - 1]);
                        rb.push(b'-');
                    }
                    i -= k;
                    moved = true;
                    break;
                }
            }
            assert!(
                moved,
                "traceback stuck at ({i},{j}): matrix inconsistent with scoring"
            );
        }
        ra.reverse();
        rb.reverse();
        LocalAlignment {
            score,
            a_range: i as usize..end.row as usize,
            b_range: j as usize..end.col as usize,
            a_aligned: ra,
            b_aligned: rb,
        }
    }
}

impl DpProblem for SmithWatermanGeneralGap {
    type Cell = i32;

    fn name(&self) -> String {
        "smith-waterman-general-gap".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(RowColumn2D1D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        let (r0, r1, c0, c1) = (
            region.row_start,
            region.row_end,
            region.col_start,
            region.col_end,
        );
        if r0 >= r1 || c0 >= c1 {
            return;
        }
        let rows = r1 as usize;
        let w = (c1 - c0) as usize;
        // The gap cost is pure in k: tabulate it once per region instead of
        // re-evaluating inside every row/column scan.
        let max_k = (r1.max(c1) - 1) as usize;
        let mut wtab = vec![0i32; max_k + 1];
        for (k, wk) in wtab.iter_mut().enumerate().skip(1) {
            *wk = self.gap.cost(k as u32);
        }
        // rowbuf holds the current row over columns [0, c1): the prefix
        // [0, c0) comes from earlier tiles (one bulk read per row), the
        // region part is produced in place, so the row scan sweeps one
        // contiguous slice.
        let mut rowbuf = vec![0i32; c1 as usize];
        // cols holds, column-major, rows [0, i) of every region column —
        // the column scan's input. Rows above the region are loaded once.
        let mut cols = vec![0i32; w * rows];
        if r0 > 0 {
            let mut tmp = vec![0i32; w];
            for r in 0..r0 {
                m.read_row_into(r, c0, &mut tmp);
                for (idx, &v) in tmp.iter().enumerate() {
                    cols[idx * rows + r as usize] = v;
                }
            }
        }
        for i in r0..r1 {
            if c0 > 0 {
                m.read_row_into(i, 0, &mut rowbuf[..c0 as usize]);
            }
            for j in c0..c1 {
                let idx = (j - c0) as usize;
                let v = if i == 0 || j == 0 {
                    0
                } else {
                    let s = self
                        .substitution
                        .score(self.a[i as usize - 1], self.b[j as usize - 1]);
                    let diag = if j == c0 {
                        m.get(i - 1, j - 1)
                    } else {
                        cols[(idx - 1) * rows + i as usize - 1]
                    };
                    let mut best = 0.max(diag + s);
                    // max_{1<=k<=j} H[i, j-k] - w(k): the row walked
                    // backwards against the gap table (eight lanes at a
                    // time under the `simd` feature).
                    best = best.max(crate::simd::rev_scan_max(
                        &rowbuf[..j as usize],
                        &wtab[1..=j as usize],
                    ));
                    // max_{1<=k<=i} H[i-k, j] - w(k): same over the column.
                    let col = &cols[idx * rows..idx * rows + i as usize];
                    best = best.max(crate::simd::rev_scan_max(col, &wtab[1..=i as usize]));
                    best
                };
                rowbuf[j as usize] = v;
                cols[idx * rows + i as usize] = v;
            }
            m.write_row(i, c0, &rowbuf[c0 as usize..]);
        }
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        // Row scan of length j, column scan of length i, plus O(1) terms.
        p.row as u64 + p.col as u64 + 1
    }

    fn region_work(&self, region: TileRegion) -> u64 {
        // Closed form of sum_{i,j in region} (i + j + 1).
        let rows = region.rows() as u64;
        let cols = region.cols() as u64;
        let sum_i = rows * (region.row_start as u64 + region.row_end as u64 - 1) / 2;
        let sum_j = cols * (region.col_start as u64 + region.col_end as u64 - 1) / 2;
        sum_i * cols + sum_j * rows + rows * cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{random_sequence, Alphabet};

    /// The recurrence written cell-at-a-time, as a reference for the
    /// slice-sweep kernel.
    fn reference_cell(p: &SmithWatermanGeneralGap, m: &DpMatrix<i32>, i: u32, j: u32) -> i32 {
        if i == 0 || j == 0 {
            return 0;
        }
        let s = p
            .substitution
            .score(p.a[i as usize - 1], p.b[j as usize - 1]);
        let mut best = 0.max(m.get(i - 1, j - 1) + s);
        for k in 1..=j {
            best = best.max(m.get(i, j - k) - p.gap.cost(k));
        }
        for k in 1..=i {
            best = best.max(m.get(i - k, j) - p.gap.cost(k));
        }
        best
    }

    #[test]
    fn sweep_kernel_matches_per_cell_reference() {
        let a = random_sequence(Alphabet::Dna, 21, 41);
        let b = random_sequence(Alphabet::Dna, 18, 42);
        let p = SmithWatermanGeneralGap::dna(a, b);
        let m = p.solve_sequential();
        let mut r = DpMatrix::new(p.dims());
        for i in 0..p.dims().rows {
            for j in 0..p.dims().cols {
                r.set(i, j, reference_cell(&p, &r, i, j));
            }
        }
        assert_eq!(m, r);
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let p = SmithWatermanGeneralGap::dna(b"ACGTACGT".to_vec(), b"ACGTACGT".to_vec());
        let m = p.solve_sequential();
        assert_eq!(p.best_score(&m), 16); // 8 matches x 2
        let aln = p.traceback(&m);
        assert_eq!(aln.a_aligned, b"ACGTACGT");
        assert_eq!(aln.identity(), 1.0);
    }

    #[test]
    fn disjoint_sequences_score_small() {
        let p = SmithWatermanGeneralGap::dna(b"AAAA".to_vec(), b"CCCC".to_vec());
        let m = p.solve_sequential();
        assert_eq!(p.best_score(&m), 0);
        assert!(p.traceback(&m).is_empty());
    }

    #[test]
    fn gap_is_taken_when_cheaper() {
        // b has an insertion of 3 symbols; log gap (4 + 2*log2 3 = 6) beats
        // three mismatches only if the flanks are long enough to pay for it.
        let p = SmithWatermanGeneralGap::dna(b"ACGTACGTACGT".to_vec(), b"ACGTACTTTGTACGT".to_vec());
        let m = p.solve_sequential();
        let aln = p.traceback(&m);
        assert!(aln.score > 0);
        assert!(
            aln.a_aligned.contains(&b'-') || aln.b_aligned.contains(&b'-'),
            "expected a gap in {aln}"
        );
    }

    #[test]
    fn matrix_values_are_nonnegative() {
        let a = random_sequence(Alphabet::Dna, 40, 1);
        let b = random_sequence(Alphabet::Dna, 40, 2);
        let p = SmithWatermanGeneralGap::dna(a, b);
        let m = p.solve_sequential();
        assert!(m.as_slice().iter().all(|&v| v >= 0));
    }

    #[test]
    fn region_work_closed_form_matches_sum() {
        let p = SmithWatermanGeneralGap::dna(b"ACGT".repeat(8), b"TTGA".repeat(7));
        for region in [
            TileRegion::new(0, 5, 0, 5),
            TileRegion::new(3, 9, 10, 20),
            TileRegion::new(32, 33, 0, 29),
        ] {
            let by_sum: u64 = region.iter().map(|q| p.cell_work(q)).sum();
            assert_eq!(p.region_work(region), by_sum, "{region:?}");
        }
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let a = random_sequence(Alphabet::Dna, 33, 5);
        let b = random_sequence(Alphabet::Dna, 29, 6);
        let p = SmithWatermanGeneralGap::dna(a, b);
        let seq = p.solve_sequential();

        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(7, 5))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }
}
