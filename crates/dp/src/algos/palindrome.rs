//! Longest palindromic subsequence — triangular 2D/1D-pattern member
//! with O(1) cells (a 2D/0D recurrence on the triangle).

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::TriangularGap;
use easyhps_core::{DagPattern, GridDims, TileRegion};
use std::sync::Arc;

/// Longest palindromic subsequence of a byte string:
///
/// ```text
/// L[i,i] = 1
/// L[i,j] = L[i+1,j-1] + 2              if s_i == s_j
///        = max(L[i+1,j], L[i,j-1])     otherwise
/// ```
///
/// Same upper-triangular grid as Nussinov but constant work per cell —
/// a useful contrast workload: the *shape* skews toward the corner while
/// the *cost* stays flat.
#[derive(Clone, Debug)]
pub struct LongestPalindrome {
    s: Vec<u8>,
}

impl LongestPalindrome {
    /// LPS of `s`.
    pub fn new(s: impl Into<Vec<u8>>) -> Self {
        Self { s: s.into() }
    }

    fn n(&self) -> u32 {
        self.s.len() as u32
    }

    /// Length of the longest palindromic subsequence.
    pub fn length(&self, m: &DpMatrix<i32>) -> i32 {
        if self.s.is_empty() {
            return 0;
        }
        m.get(0, self.n() - 1)
    }

    /// Reconstruct one longest palindromic subsequence.
    pub fn traceback(&self, m: &DpMatrix<i32>) -> Vec<u8> {
        if self.s.is_empty() {
            return Vec::new();
        }
        let (mut left, mut right) = (Vec::new(), Vec::new());
        let (mut i, mut j) = (0u32, self.n() - 1);
        while i < j {
            if self.s[i as usize] == self.s[j as usize] {
                left.push(self.s[i as usize]);
                right.push(self.s[j as usize]);
                i += 1;
                if j == 0 {
                    break;
                }
                j -= 1;
            } else if m.get(i + 1, j) >= m.get(i, j - 1) {
                i += 1;
            } else {
                j -= 1;
            }
        }
        if i == j {
            left.push(self.s[i as usize]);
        }
        right.reverse();
        left.extend(right);
        left
    }
}

impl DpProblem for LongestPalindrome {
    type Cell = i32;

    fn name(&self) -> String {
        "longest-palindrome".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::square(self.n())
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(TriangularGap::new(self.n()))
    }

    fn compute_region<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        for i in (region.row_start..region.row_end).rev() {
            for j in region.col_start..region.col_end {
                if j < i {
                    continue;
                }
                let v = if i == j {
                    1
                } else if self.s[i as usize] == self.s[j as usize] {
                    // (i+1, j-1) is the lower triangle's default 0 when
                    // j == i + 1, which is exactly the needed base.
                    m.get(i + 1, j - 1) + 2
                } else {
                    m.get(i + 1, j).max(m.get(i, j - 1))
                };
                m.set(i, j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lps(s: &str) -> (i32, String) {
        let p = LongestPalindrome::new(s.as_bytes().to_vec());
        let m = p.solve_sequential();
        (p.length(&m), String::from_utf8(p.traceback(&m)).unwrap())
    }

    #[test]
    fn known_cases() {
        assert_eq!(lps("bbbab").0, 4); // bbbb
        assert_eq!(lps("cbbd").0, 2);
        assert_eq!(lps("a").0, 1);
        assert_eq!(lps("").0, 0);
        assert_eq!(lps("racecar").0, 7);
    }

    #[test]
    fn traceback_is_a_palindromic_subsequence() {
        for s in ["character", "bananas", "abcdefgfedcba", "zzzyx"] {
            let (len, pal) = lps(s);
            assert_eq!(pal.len() as i32, len, "{s}");
            // Palindrome.
            assert!(pal.bytes().eq(pal.bytes().rev()), "{pal} not a palindrome");
            // Subsequence of s.
            let mut it = s.bytes();
            assert!(
                pal.bytes().all(|c| it.any(|h| h == c)),
                "{pal} not a subsequence of {s}"
            );
        }
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let p = LongestPalindrome::new(b"dynamicprogrammingmarvellouslyredundant".to_vec());
        let seq = p.solve_sequential();
        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::square(7))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        let n = p.n();
        for i in 0..n {
            for j in i..n {
                assert_eq!(m.get(i, j), seq.get(i, j), "cell ({i},{j})");
            }
        }
    }
}
