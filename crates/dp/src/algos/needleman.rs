//! Needleman-Wunsch global alignment (2D/0D).

use crate::alignment::LocalAlignment;
use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use crate::scoring::Substitution;
use easyhps_core::patterns::Wavefront2D;
use easyhps_core::{DagPattern, GridDims, TileRegion};
use std::sync::Arc;

/// Global alignment with linear gaps:
///
/// ```text
/// F[i,j] = max( F[i-1,j-1] + s(a_i, b_j),
///               F[i-1,j] - gap,
///               F[i,j-1] - gap )
/// ```
///
/// with `F[i,0] = -i*gap`, `F[0,j] = -j*gap`. The global cousin of
/// Smith-Waterman; same wavefront pattern, different boundary conditions
/// and no clamping at zero.
#[derive(Clone, Debug)]
pub struct NeedlemanWunsch {
    a: Vec<u8>,
    b: Vec<u8>,
    substitution: Substitution,
    gap: i32,
}

impl NeedlemanWunsch {
    /// Align `a` (rows) against `b` (columns) globally.
    pub fn new(
        a: impl Into<Vec<u8>>,
        b: impl Into<Vec<u8>>,
        substitution: Substitution,
        gap: i32,
    ) -> Self {
        assert!(gap >= 0, "gap penalty is a cost (non-negative)");
        Self {
            a: a.into(),
            b: b.into(),
            substitution,
            gap,
        }
    }

    /// DNA defaults: +2/-1 substitution, gap 2.
    pub fn dna(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        Self::new(a, b, Substitution::dna_default(), 2)
    }

    /// The global alignment score from a computed matrix.
    pub fn score(&self, m: &DpMatrix<i32>) -> i32 {
        m.get(self.a.len() as u32, self.b.len() as u32)
    }

    /// Reconstruct the global alignment (spans both full sequences).
    pub fn traceback(&self, m: &DpMatrix<i32>) -> LocalAlignment {
        let (mut i, mut j) = (self.a.len() as u32, self.b.len() as u32);
        let score = m.get(i, j);
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        while i > 0 || j > 0 {
            let cur = m.get(i, j);
            if i > 0 && j > 0 {
                let s = self
                    .substitution
                    .score(self.a[i as usize - 1], self.b[j as usize - 1]);
                if m.get(i - 1, j - 1) + s == cur {
                    ra.push(self.a[i as usize - 1]);
                    rb.push(self.b[j as usize - 1]);
                    i -= 1;
                    j -= 1;
                    continue;
                }
            }
            if i > 0 && m.get(i - 1, j) - self.gap == cur {
                ra.push(self.a[i as usize - 1]);
                rb.push(b'-');
                i -= 1;
            } else {
                debug_assert!(j > 0 && m.get(i, j - 1) - self.gap == cur);
                ra.push(b'-');
                rb.push(self.b[j as usize - 1]);
                j -= 1;
            }
        }
        ra.reverse();
        rb.reverse();
        LocalAlignment {
            score,
            a_range: 0..self.a.len(),
            b_range: 0..self.b.len(),
            a_aligned: ra,
            b_aligned: rb,
        }
    }
}

impl DpProblem for NeedlemanWunsch {
    type Cell = i32;

    fn name(&self) -> String {
        "needleman-wunsch".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(Wavefront2D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        // Simple substitution vectorizes as compare + select, so those
        // tiles take the anti-diagonal SIMD kernel; `Table` lookups (and
        // builds without the `simd` feature) use the scalar row sweep.
        #[cfg(feature = "simd")]
        if let Substitution::Simple {
            match_score,
            mismatch,
        } = self.substitution
        {
            let rule = crate::algos::adiag::NwRule {
                match_score,
                mismatch,
                gap: self.gap,
            };
            crate::algos::adiag::sweep(m, region, &self.a, &self.b, &rule);
            return;
        }
        self.compute_region_scalar(m, region);
    }
}

impl NeedlemanWunsch {
    /// The scalar slice-sweep kernel — the fallback for `Table`
    /// substitutions and `--no-default-features` builds, and the
    /// bit-identical reference for the SIMD path.
    #[doc(hidden)]
    pub fn compute_region_scalar<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        crate::algos::row_sweep::sweep_rows_2d(
            m,
            region,
            |j| -(j as i32) * self.gap,
            |i| -(i as i32) * self.gap,
            |diag, up, left, i, j| {
                let s = self
                    .substitution
                    .score(self.a[i as usize - 1], self.b[j as usize - 1]);
                (diag + s).max(up - self.gap).max(left - self.gap)
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{random_sequence, Alphabet};

    #[test]
    fn identical_sequences_score_full() {
        let p = NeedlemanWunsch::dna(b"ACGT".to_vec(), b"ACGT".to_vec());
        let m = p.solve_sequential();
        assert_eq!(p.score(&m), 8);
        let aln = p.traceback(&m);
        assert_eq!(aln.identity(), 1.0);
    }

    #[test]
    fn empty_vs_sequence_is_all_gaps() {
        let p = NeedlemanWunsch::dna(Vec::<u8>::new(), b"ACGT".to_vec());
        let m = p.solve_sequential();
        assert_eq!(p.score(&m), -8);
        let aln = p.traceback(&m);
        assert_eq!(aln.a_aligned, b"----");
        assert_eq!(aln.b_aligned, b"ACGT");
    }

    #[test]
    fn global_alignment_spans_everything() {
        let a = random_sequence(Alphabet::Dna, 25, 1);
        let b = random_sequence(Alphabet::Dna, 30, 2);
        let p = NeedlemanWunsch::dna(a.clone(), b.clone());
        let m = p.solve_sequential();
        let aln = p.traceback(&m);
        let a_used: Vec<u8> = aln
            .a_aligned
            .iter()
            .copied()
            .filter(|&c| c != b'-')
            .collect();
        let b_used: Vec<u8> = aln
            .b_aligned
            .iter()
            .copied()
            .filter(|&c| c != b'-')
            .collect();
        assert_eq!(a_used, a, "global alignment consumes all of a");
        assert_eq!(b_used, b, "global alignment consumes all of b");
    }

    #[test]
    fn traceback_replays_to_score() {
        let a = random_sequence(Alphabet::Dna, 20, 3);
        let b = random_sequence(Alphabet::Dna, 24, 4);
        let p = NeedlemanWunsch::dna(a, b);
        let m = p.solve_sequential();
        let aln = p.traceback(&m);
        let mut score = 0;
        for (x, y) in aln.a_aligned.iter().zip(&aln.b_aligned) {
            if *x == b'-' || *y == b'-' {
                score -= 2;
            } else {
                score += Substitution::dna_default().score(*x, *y);
            }
        }
        assert_eq!(score, aln.score);
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let a = random_sequence(Alphabet::Dna, 37, 5);
        let b = random_sequence(Alphabet::Dna, 31, 6);
        let p = NeedlemanWunsch::dna(a, b);
        let seq = p.solve_sequential();
        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(8, 7))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }
}
