//! CYK context-free-grammar recognition — triangular 2D/1D.
//!
//! The paper's introduction lists "context-free grammar recognition" among
//! the DP applications EasyHPS targets (ref. [3], an FPGA CYK
//! coprocessor). CYK fills the same upper-triangular table as Nussinov
//! with the same bifurcation scan, so it drops straight onto the
//! [`TriangularGap`] pattern.

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::TriangularGap;
use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use std::sync::Arc;

/// A context-free grammar in Chomsky normal form over at most 64
/// nonterminals.
///
/// Nonterminals are indices `0..n`; cell values are 64-bit sets of
/// nonterminals, which makes the CYK table a DP matrix of `u64` cells:
///
/// ```text
/// T[i,j] = { A | A -> a, a = w[i], i == j }
///        | { A | A -> B C, B in T[i,k], C in T[k+1,j], i <= k < j }
/// ```
#[derive(Clone, Debug)]
pub struct Grammar {
    /// Number of nonterminals (start symbol is 0).
    pub nonterminals: u32,
    /// Terminal rules: `(A, a)` for `A -> a`.
    pub terminal_rules: Vec<(u32, u8)>,
    /// Binary rules: `(A, B, C)` for `A -> B C`.
    pub binary_rules: Vec<(u32, u32, u32)>,
}

impl Grammar {
    /// Validate the grammar (symbol ranges, 64-nonterminal limit).
    pub fn validate(&self) -> Result<(), String> {
        if self.nonterminals == 0 || self.nonterminals > 64 {
            return Err(format!(
                "need 1..=64 nonterminals, got {}",
                self.nonterminals
            ));
        }
        for &(a, _) in &self.terminal_rules {
            if a >= self.nonterminals {
                return Err(format!("terminal rule head {a} out of range"));
            }
        }
        for &(a, b, c) in &self.binary_rules {
            if a.max(b).max(c) >= self.nonterminals {
                return Err(format!("binary rule ({a},{b},{c}) out of range"));
            }
        }
        Ok(())
    }

    /// The classic balanced-parentheses grammar in CNF:
    ///
    /// ```text
    /// S  -> L S' | L R | S S
    /// S' -> S R
    /// L  -> '('      R -> ')'
    /// ```
    pub fn balanced_parens() -> Self {
        // 0 = S, 1 = S', 2 = L, 3 = R
        Grammar {
            nonterminals: 4,
            terminal_rules: vec![(2, b'('), (3, b')')],
            binary_rules: vec![(0, 2, 1), (0, 2, 3), (0, 0, 0), (1, 0, 3)],
        }
    }
}

/// CYK recognition of `word` under `grammar`.
#[derive(Clone, Debug)]
pub struct CykParser {
    grammar: Grammar,
    word: Vec<u8>,
}

impl CykParser {
    /// Build a parser; panics on invalid grammars (validate first for a
    /// `Result`).
    pub fn new(grammar: Grammar, word: impl Into<Vec<u8>>) -> Self {
        grammar.validate().expect("valid grammar");
        Self {
            grammar,
            word: word.into(),
        }
    }

    fn n(&self) -> u32 {
        self.word.len() as u32
    }

    /// Whether the full word derives from the start symbol, per a computed
    /// table.
    pub fn recognized(&self, m: &DpMatrix<u64>) -> bool {
        if self.word.is_empty() {
            return false;
        }
        m.get(0, self.n() - 1) & 1 != 0
    }

    /// Nonterminal set deriving `word[i..=j]`.
    pub fn derivers(&self, m: &DpMatrix<u64>, i: u32, j: u32) -> u64 {
        m.get(i, j)
    }

    fn cell<G: DpGrid<u64>>(&self, m: &G, i: u32, j: u32) -> u64 {
        let mut set = 0u64;
        if i == j {
            for &(a, t) in &self.grammar.terminal_rules {
                if t == self.word[i as usize] {
                    set |= 1 << a;
                }
            }
            return set;
        }
        for k in i..j {
            let left = m.get(i, k);
            let right = m.get(k + 1, j);
            if left == 0 || right == 0 {
                continue;
            }
            for &(a, b, c) in &self.grammar.binary_rules {
                if left & (1 << b) != 0 && right & (1 << c) != 0 {
                    set |= 1 << a;
                }
            }
        }
        set
    }
}

impl DpProblem for CykParser {
    type Cell = u64;

    fn name(&self) -> String {
        "cyk".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::square(self.n())
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(TriangularGap::new(self.n()))
    }

    fn compute_region<G: DpGrid<u64>>(&self, m: &mut G, region: TileRegion) {
        for i in (region.row_start..region.row_end).rev() {
            for j in region.col_start..region.col_end {
                if j < i {
                    continue;
                }
                let v = self.cell(m, i, j);
                m.set(i, j, v);
            }
        }
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        if p.col < p.row {
            0
        } else {
            (p.col - p.row) as u64 + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recognizes(word: &str) -> bool {
        let p = CykParser::new(Grammar::balanced_parens(), word.as_bytes().to_vec());
        let m = p.solve_sequential();
        p.recognized(&m)
    }

    #[test]
    fn balanced_parens_accepted() {
        for w in ["()", "(())", "()()", "(()())", "((()))()"] {
            assert!(recognizes(w), "{w} should be accepted");
        }
    }

    #[test]
    fn unbalanced_rejected() {
        for w in ["(", ")", ")(", "(()", "())", "()(", ""] {
            assert!(!recognizes(w), "{w} should be rejected");
        }
    }

    #[test]
    fn grammar_validation() {
        assert!(Grammar::balanced_parens().validate().is_ok());
        let bad = Grammar {
            nonterminals: 2,
            terminal_rules: vec![(5, b'x')],
            binary_rules: vec![],
        };
        assert!(bad.validate().is_err());
        let too_many = Grammar {
            nonterminals: 65,
            terminal_rules: vec![],
            binary_rules: vec![],
        };
        assert!(too_many.validate().is_err());
    }

    #[test]
    fn derivers_expose_sub_spans() {
        let p = CykParser::new(Grammar::balanced_parens(), b"(())".to_vec());
        let m = p.solve_sequential();
        // "()" at positions 1..=2 derives S (bit 0).
        assert!(p.derivers(&m, 1, 2) & 1 != 0);
        // "((" derives nothing.
        assert_eq!(p.derivers(&m, 0, 1), 0);
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let word: Vec<u8> = b"(()())((()))()(()(()))".to_vec();
        let p = CykParser::new(Grammar::balanced_parens(), word);
        let seq = p.solve_sequential();

        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::square(5))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        for i in 0..22u32 {
            for j in i..22u32 {
                assert_eq!(m.get(i, j), seq.get(i, j), "cell ({i},{j})");
            }
        }
        assert!(p.recognized(&m));
    }
}
