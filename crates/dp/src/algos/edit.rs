//! Levenshtein edit distance (2D/0D).

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::Wavefront2D;
use easyhps_core::{DagPattern, GridDims, TileRegion};
use std::sync::Arc;

/// Levenshtein distance between two byte strings: the textbook 2D/0D
/// wavefront recurrence
///
/// ```text
/// D[i,j] = min( D[i-1,j] + 1, D[i,j-1] + 1, D[i-1,j-1] + [a_i != b_j] )
/// ```
///
/// over an `(m+1) x (n+1)` matrix.
#[derive(Clone, Debug)]
pub struct EditDistance {
    a: Vec<u8>,
    b: Vec<u8>,
}

impl EditDistance {
    /// Edit distance from `a` (rows) to `b` (columns).
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        Self {
            a: a.into(),
            b: b.into(),
        }
    }

    /// The final distance, read from a fully computed matrix.
    pub fn distance(&self, m: &DpMatrix<i32>) -> i32 {
        m.get(self.a.len() as u32, self.b.len() as u32)
    }

    /// Edit operations reconstructed from a computed matrix (see
    /// [`EditOp`]), from the start of both strings.
    pub fn traceback(&self, m: &DpMatrix<i32>) -> Vec<EditOp> {
        let mut ops = Vec::new();
        let (mut i, mut j) = (self.a.len() as u32, self.b.len() as u32);
        while i > 0 || j > 0 {
            let cur = m.get(i, j);
            if i > 0 && j > 0 {
                let sub = if self.a[i as usize - 1] == self.b[j as usize - 1] {
                    0
                } else {
                    1
                };
                if m.get(i - 1, j - 1) + sub == cur {
                    ops.push(if sub == 0 {
                        EditOp::Keep
                    } else {
                        EditOp::Substitute
                    });
                    i -= 1;
                    j -= 1;
                    continue;
                }
            }
            if i > 0 && m.get(i - 1, j) + 1 == cur {
                ops.push(EditOp::Delete);
                i -= 1;
            } else {
                debug_assert!(j > 0 && m.get(i, j - 1) + 1 == cur);
                ops.push(EditOp::Insert);
                j -= 1;
            }
        }
        ops.reverse();
        ops
    }
}

/// One step of an edit script (referring to transforming `a` into `b`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EditOp {
    /// Symbols match; keep.
    Keep,
    /// Replace a symbol of `a` with one of `b`.
    Substitute,
    /// Delete a symbol of `a`.
    Delete,
    /// Insert a symbol of `b`.
    Insert,
}

impl DpProblem for EditDistance {
    type Cell = i32;

    fn name(&self) -> String {
        "edit-distance".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(Wavefront2D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        // Edit distance is always unit-cost, so the bit-parallel Myers
        // kernel applies to every tile; the scalar slice sweep below is
        // its bit-identical reference.
        crate::algos::myers::compute_region(&self.a, &self.b, m, region);
    }
}

impl EditDistance {
    /// The scalar slice-sweep kernel — the pre-bit-parallel
    /// implementation, kept as the reference the Myers kernel must match
    /// and as a benchmark baseline.
    #[doc(hidden)]
    pub fn compute_region_scalar<G: DpGrid<i32>>(&self, m: &mut G, region: TileRegion) {
        crate::algos::row_sweep::sweep_rows_2d(
            m,
            region,
            |j| j as i32,
            |i| i as i32,
            |diag, up, left, i, j| {
                let sub = if self.a[i as usize - 1] == self.b[j as usize - 1] {
                    0
                } else {
                    1
                };
                (up + 1).min(left + 1).min(diag + sub)
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(a: &str, b: &str) -> i32 {
        let p = EditDistance::new(a.as_bytes().to_vec(), b.as_bytes().to_vec());
        let m = p.solve_sequential();
        p.distance(&m)
    }

    #[test]
    fn known_distances() {
        assert_eq!(dist("kitten", "sitting"), 3);
        assert_eq!(dist("", "abc"), 3);
        assert_eq!(dist("abc", ""), 3);
        assert_eq!(dist("same", "same"), 0);
        assert_eq!(dist("flaw", "lawn"), 2);
    }

    #[test]
    fn traceback_length_matches_distance() {
        let p = EditDistance::new(b"kitten".to_vec(), b"sitting".to_vec());
        let m = p.solve_sequential();
        let ops = p.traceback(&m);
        let cost = ops.iter().filter(|o| !matches!(o, EditOp::Keep)).count() as i32;
        assert_eq!(cost, 3);
        // Replaying the script transforms a into b.
        let (mut out, mut ai, mut bi) = (Vec::new(), 0usize, 0usize);
        for op in ops {
            match op {
                EditOp::Keep | EditOp::Substitute => {
                    out.push(b"sitting"[bi]);
                    ai += 1;
                    bi += 1;
                }
                EditOp::Delete => ai += 1,
                EditOp::Insert => {
                    out.push(b"sitting"[bi]);
                    bi += 1;
                }
            }
        }
        assert_eq!(ai, 6);
        assert_eq!(out, b"sitting");
    }

    #[test]
    fn myers_and_scalar_kernels_agree() {
        use crate::sequence::{random_sequence, Alphabet};
        let a = random_sequence(Alphabet::Dna, 101, 11);
        let b = random_sequence(Alphabet::Dna, 87, 12);
        let p = EditDistance::new(a, b);
        let full = easyhps_core::TileRegion::new(0, p.dims().rows, 0, p.dims().cols);
        let mut bitpar = DpMatrix::new(p.dims());
        p.compute_region(&mut bitpar, full);
        let mut scalar = DpMatrix::new(p.dims());
        p.compute_region_scalar(&mut scalar, full);
        assert_eq!(bitpar, scalar);
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let p = EditDistance::new(b"dynamicprogramming".to_vec(), b"parallelruntime".to_vec());
        let seq = p.solve_sequential();

        // Compute tile-by-tile in DAG order.
        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(4, 5))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }
}
