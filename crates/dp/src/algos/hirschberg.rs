//! Hirschberg's linear-space global alignment.
//!
//! The paper's §VII names space as EasyHPS's main limitation. For global
//! alignment the classic remedy is Hirschberg's divide-and-conquer: the
//! optimal alignment in `O(n*m)` time but only `O(min(n, m))` space, by
//! recursively splitting `a` at its midpoint and finding the optimal
//! crossing column via two forward/backward score-row sweeps. This is a
//! sequential utility (its recursion tree does not fit the tile-DAG
//! model); it doubles as an independent oracle for
//! [`NeedlemanWunsch`](crate::NeedlemanWunsch) in tests.

use crate::alignment::LocalAlignment;
use crate::scoring::Substitution;

/// Linear-space global aligner with linear gap cost.
#[derive(Clone, Debug)]
pub struct Hirschberg {
    substitution: Substitution,
    gap: i32,
}

impl Hirschberg {
    /// Aligner with the given substitution scores and per-symbol gap cost
    /// (non-negative).
    pub fn new(substitution: Substitution, gap: i32) -> Self {
        assert!(gap >= 0, "gap penalty is a cost (non-negative)");
        Self { substitution, gap }
    }

    /// DNA defaults: +2/-1 substitution, gap 2.
    pub fn dna() -> Self {
        Self::new(Substitution::dna_default(), 2)
    }

    /// Last row of the global-alignment score matrix of `a` vs `b`, in
    /// `O(|b|)` space.
    fn score_row(&self, a: &[u8], b: &[u8]) -> Vec<i64> {
        let gap = self.gap as i64;
        let mut prev: Vec<i64> = (0..=b.len() as i64).map(|j| -j * gap).collect();
        let mut cur = vec![0i64; b.len() + 1];
        for (i, &ca) in a.iter().enumerate() {
            cur[0] = -((i as i64 + 1) * gap);
            for (j, &cb) in b.iter().enumerate() {
                cur[j + 1] = (prev[j] + self.substitution.score(ca, cb) as i64)
                    .max(prev[j + 1] - gap)
                    .max(cur[j] - gap);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev
    }

    fn align_rec(&self, a: &[u8], b: &[u8], out_a: &mut Vec<u8>, out_b: &mut Vec<u8>) {
        if a.is_empty() {
            out_a.extend(std::iter::repeat_n(b'-', b.len()));
            out_b.extend_from_slice(b);
            return;
        }
        if b.is_empty() {
            out_a.extend_from_slice(a);
            out_b.extend(std::iter::repeat_n(b'-', a.len()));
            return;
        }
        if a.len() == 1 {
            // Align the single symbol against its best position in b (or
            // as a deletion if nothing pays).
            let ca = a[0];
            let gap = self.gap as i64;
            let all_gaps = -((b.len() as i64 + 1) * gap);
            let (best_j, best) = (0..b.len())
                .map(|j| {
                    (
                        j,
                        self.substitution.score(ca, b[j]) as i64 - (b.len() as i64 - 1) * gap,
                    )
                })
                .max_by_key(|(j, s)| (*s, std::cmp::Reverse(*j)))
                .expect("b nonempty");
            if best >= all_gaps {
                for (j, &cb) in b.iter().enumerate() {
                    if j == best_j {
                        out_a.push(ca);
                    } else {
                        out_a.push(b'-');
                    }
                    out_b.push(cb);
                }
            } else {
                out_a.push(ca);
                out_b.push(b'-');
                out_a.extend(std::iter::repeat_n(b'-', b.len()));
                out_b.extend_from_slice(b);
            }
            return;
        }

        let mid = a.len() / 2;
        let left = self.score_row(&a[..mid], b);
        let right_rev = {
            let ar: Vec<u8> = a[mid..].iter().rev().copied().collect();
            let br: Vec<u8> = b.iter().rev().copied().collect();
            self.score_row(&ar, &br)
        };
        // Optimal split: maximize left[k] + right_rev[|b| - k].
        let split = (0..=b.len())
            .max_by_key(|&k| left[k] + right_rev[b.len() - k])
            .expect("nonempty range");
        self.align_rec(&a[..mid], &b[..split], out_a, out_b);
        self.align_rec(&a[mid..], &b[split..], out_a, out_b);
    }

    /// Compute the optimal global alignment of `a` and `b`.
    pub fn align(&self, a: &[u8], b: &[u8]) -> LocalAlignment {
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        self.align_rec(a, b, &mut out_a, &mut out_b);
        let mut score = 0i32;
        for (x, y) in out_a.iter().zip(&out_b) {
            if *x == b'-' || *y == b'-' {
                score -= self.gap;
            } else {
                score += self.substitution.score(*x, *y);
            }
        }
        LocalAlignment {
            score,
            a_range: 0..a.len(),
            b_range: 0..b.len(),
            a_aligned: out_a,
            b_aligned: out_b,
        }
    }

    /// The optimal global score alone, in linear space.
    pub fn score(&self, a: &[u8], b: &[u8]) -> i64 {
        *self.score_row(a, b).last().expect("row nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::NeedlemanWunsch;
    use crate::problem::DpProblem;
    use crate::sequence::{random_sequence, Alphabet};

    fn nw_score(a: &[u8], b: &[u8]) -> i32 {
        let p = NeedlemanWunsch::dna(a.to_vec(), b.to_vec());
        p.score(&p.solve_sequential())
    }

    #[test]
    fn score_matches_full_matrix_nw() {
        for seed in 0..8u64 {
            let a = random_sequence(Alphabet::Dna, 20 + (seed as usize * 3) % 15, seed);
            let b = random_sequence(Alphabet::Dna, 18 + (seed as usize * 5) % 17, seed + 100);
            let h = Hirschberg::dna();
            assert_eq!(h.score(&a, &b), nw_score(&a, &b) as i64, "seed {seed}");
        }
    }

    #[test]
    fn alignment_score_is_optimal_and_consistent() {
        for seed in 0..8u64 {
            let a = random_sequence(Alphabet::Dna, 25, seed);
            let b = random_sequence(Alphabet::Dna, 30, seed + 50);
            let h = Hirschberg::dna();
            let aln = h.align(&a, &b);
            // The emitted alignment replays to the optimal score.
            assert_eq!(aln.score as i64, h.score(&a, &b), "seed {seed}");
            // And consumes both sequences fully.
            let a_used: Vec<u8> = aln
                .a_aligned
                .iter()
                .copied()
                .filter(|&c| c != b'-')
                .collect();
            let b_used: Vec<u8> = aln
                .b_aligned
                .iter()
                .copied()
                .filter(|&c| c != b'-')
                .collect();
            assert_eq!(a_used, a);
            assert_eq!(b_used, b);
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let h = Hirschberg::dna();
        let aln = h.align(b"", b"ACGT");
        assert_eq!(aln.a_aligned, b"----");
        let aln = h.align(b"ACGT", b"");
        assert_eq!(aln.b_aligned, b"----");
        let aln = h.align(b"", b"");
        assert!(aln.a_aligned.is_empty());
        assert_eq!(h.score(b"A", b"A"), 2);
    }

    #[test]
    fn identical_long_sequences() {
        let a = random_sequence(Alphabet::Dna, 300, 9);
        let h = Hirschberg::dna();
        let aln = h.align(&a, &a);
        assert_eq!(aln.score, 2 * a.len() as i32);
        assert_eq!(aln.identity(), 1.0);
    }
}
