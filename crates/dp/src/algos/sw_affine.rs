//! Smith-Waterman with affine gaps (Gotoh) — 2D/0D.

use crate::alignment::LocalAlignment;
use crate::cell::Gotoh;
use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use crate::scoring::Substitution;
use easyhps_core::patterns::Wavefront2D;
use easyhps_core::{DagPattern, GridDims, TileRegion};
use std::sync::Arc;

/// Very negative sentinel that survives additions without overflow.
const NEG_INF: i32 = i32::MIN / 4;

/// Gotoh's affine-gap local alignment: with `w(k) = open + extend*(k-1)`
/// the general-gap scans collapse into two extra running scores,
///
/// ```text
/// E[i,j] = max( H[i,j-1] - open, E[i,j-1] - extend )
/// F[i,j] = max( H[i-1,j] - open, F[i-1,j] - extend )
/// H[i,j] = max( 0, H[i-1,j-1] + s(a_i,b_j), E[i,j], F[i,j] )
/// ```
///
/// making every cell O(1) — a 2D/0D wavefront. This is the fast baseline
/// that SWGG degenerates to when the gap function happens to be affine.
#[derive(Clone, Debug)]
pub struct SmithWatermanAffine {
    a: Vec<u8>,
    b: Vec<u8>,
    substitution: Substitution,
    /// Gap open cost (positive).
    open: i32,
    /// Gap extend cost (positive).
    extend: i32,
}

impl SmithWatermanAffine {
    /// Align `a` (rows) against `b` (columns) with affine gaps.
    pub fn new(
        a: impl Into<Vec<u8>>,
        b: impl Into<Vec<u8>>,
        substitution: Substitution,
        open: i32,
        extend: i32,
    ) -> Self {
        Self {
            a: a.into(),
            b: b.into(),
            substitution,
            open,
            extend,
        }
    }

    /// DNA defaults: +2/-1 substitution, gap open 4, extend 1.
    pub fn dna(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        Self::new(a, b, Substitution::dna_default(), 4, 1)
    }

    /// Best local alignment score in a computed matrix.
    pub fn best_score(&self, m: &DpMatrix<Gotoh>) -> i32 {
        let d = m.dims();
        m.max_in_region_by_key(TileRegion::new(0, d.rows, 0, d.cols), |c| c.h)
            .map(|(_, v)| v.h)
            .unwrap_or(0)
    }

    /// Reconstruct the best local alignment from a computed matrix.
    pub fn traceback(&self, m: &DpMatrix<Gotoh>) -> LocalAlignment {
        let d = m.dims();
        let (end, cell) = m
            .max_in_region_by_key(TileRegion::new(0, d.rows, 0, d.cols), |c| c.h)
            .expect("nonempty matrix");
        let score = cell.h;
        if score <= 0 {
            return LocalAlignment {
                score: 0,
                a_range: 0..0,
                b_range: 0..0,
                a_aligned: vec![],
                b_aligned: vec![],
            };
        }

        // States: 0 = H, 1 = E (gap in a), 2 = F (gap in b).
        let (mut i, mut j, mut state) = (end.row, end.col, 0u8);
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        loop {
            match state {
                0 => {
                    let h = m.get(i, j).h;
                    if h == 0 || i == 0 || j == 0 {
                        break;
                    }
                    let s = self
                        .substitution
                        .score(self.a[i as usize - 1], self.b[j as usize - 1]);
                    if m.get(i - 1, j - 1).h + s == h {
                        ra.push(self.a[i as usize - 1]);
                        rb.push(self.b[j as usize - 1]);
                        i -= 1;
                        j -= 1;
                    } else if m.get(i, j).e == h {
                        state = 1;
                    } else {
                        debug_assert_eq!(m.get(i, j).f, h, "H must come from diag, E or F");
                        state = 2;
                    }
                }
                1 => {
                    // Gap in `a`: consume a symbol of `b`.
                    let e = m.get(i, j).e;
                    ra.push(b'-');
                    rb.push(self.b[j as usize - 1]);
                    let from_open = m.get(i, j - 1).h - self.open;
                    state = if from_open == e { 0 } else { 1 };
                    j -= 1;
                }
                _ => {
                    // Gap in `b`: consume a symbol of `a`.
                    let f = m.get(i, j).f;
                    ra.push(self.a[i as usize - 1]);
                    rb.push(b'-');
                    let from_open = m.get(i - 1, j).h - self.open;
                    state = if from_open == f { 0 } else { 2 };
                    i -= 1;
                }
            }
        }
        ra.reverse();
        rb.reverse();
        LocalAlignment {
            score,
            a_range: i as usize..end.row as usize,
            b_range: j as usize..end.col as usize,
            a_aligned: ra,
            b_aligned: rb,
        }
    }
}

impl DpProblem for SmithWatermanAffine {
    type Cell = Gotoh;

    fn name(&self) -> String {
        "smith-waterman-affine".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(Wavefront2D::new(self.dims()))
    }

    fn compute_region<G: DpGrid<Gotoh>>(&self, m: &mut G, region: TileRegion) {
        for i in region.row_start..region.row_end {
            for j in region.col_start..region.col_end {
                let cell = if i == 0 || j == 0 {
                    Gotoh {
                        h: 0,
                        e: NEG_INF,
                        f: NEG_INF,
                    }
                } else {
                    let e = (m.get(i, j - 1).h - self.open).max(m.get(i, j - 1).e - self.extend);
                    let f = (m.get(i - 1, j).h - self.open).max(m.get(i - 1, j).f - self.extend);
                    let s = self
                        .substitution
                        .score(self.a[i as usize - 1], self.b[j as usize - 1]);
                    let h = 0.max(m.get(i - 1, j - 1).h + s).max(e).max(f);
                    Gotoh { h, e, f }
                };
                m.set(i, j, cell);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::swgg::SmithWatermanGeneralGap;
    use crate::scoring::GapPenalty;
    use crate::sequence::{random_sequence, Alphabet};

    #[test]
    fn identical_sequences() {
        let p = SmithWatermanAffine::dna(b"ACGTACGT".to_vec(), b"ACGTACGT".to_vec());
        let m = p.solve_sequential();
        assert_eq!(p.best_score(&m), 16);
    }

    #[test]
    fn agrees_with_general_gap_on_affine_penalty() {
        // With the same affine w(k), SWGG's O(n) scan and Gotoh's O(1)
        // recurrence must produce identical best scores.
        for seed in 0..5u64 {
            let a = random_sequence(Alphabet::Dna, 24, seed * 2 + 1);
            let b = random_sequence(Alphabet::Dna, 26, seed * 2 + 2);
            let affine = SmithWatermanAffine::dna(a.clone(), b.clone());
            let general = SmithWatermanGeneralGap::new(
                a,
                b,
                Substitution::dna_default(),
                GapPenalty::Affine { open: 4, extend: 1 },
            );
            let ma = affine.solve_sequential();
            let mg = general.solve_sequential();
            assert_eq!(
                affine.best_score(&ma),
                general.best_score(&mg),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn traceback_replays_to_score() {
        let a = random_sequence(Alphabet::Dna, 30, 11);
        let b = random_sequence(Alphabet::Dna, 32, 12);
        let p = SmithWatermanAffine::dna(a, b);
        let m = p.solve_sequential();
        let aln = p.traceback(&m);
        // Recompute the score from the alignment columns.
        let mut score = 0;
        let mut k = 0;
        while k < aln.len() {
            let (x, y) = (aln.a_aligned[k], aln.b_aligned[k]);
            if x == b'-' || y == b'-' {
                let gap_in_a = x == b'-';
                let mut glen = 0;
                while k < aln.len()
                    && ((gap_in_a && aln.a_aligned[k] == b'-')
                        || (!gap_in_a && aln.b_aligned[k] == b'-'))
                {
                    glen += 1;
                    k += 1;
                }
                score -= 4 + (glen - 1);
            } else {
                score += Substitution::dna_default().score(x, y);
                k += 1;
            }
        }
        assert_eq!(score, aln.score);
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let a = random_sequence(Alphabet::Dna, 41, 21);
        let b = random_sequence(Alphabet::Dna, 37, 22);
        let p = SmithWatermanAffine::dna(a, b);
        let seq = p.solve_sequential();

        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(8, 6))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }
}
