//! The DP algorithm library: one module per recurrence, each implementing
//! [`crate::DpProblem`] with a sequential reference and a region kernel.

mod adiag;
mod myers;
mod row_sweep;

mod banded_edit;
mod cyk;
mod edit;
mod hirschberg;
mod knapsack;
mod lcs;
mod matrix_chain;
mod needleman;
mod nussinov;
mod obst;
mod palindrome;
mod quadrant;
mod semi_global;
mod sw_affine;
mod swgg;
mod viterbi;

pub use banded_edit::{BandedEditDistance, BAND_INF};
pub use cyk::{CykParser, Grammar};
pub use edit::{EditDistance, EditOp};
pub use hirschberg::Hirschberg;
pub use knapsack::Knapsack;
pub use lcs::Lcs;
pub use matrix_chain::MatrixChain;
pub use needleman::NeedlemanWunsch;
pub use nussinov::Nussinov;
pub use obst::OptimalBst;
pub use palindrome::LongestPalindrome;
pub use quadrant::Quadrant2D2D;
pub use semi_global::SemiGlobal;
pub use sw_affine::SmithWatermanAffine;
pub use swgg::SmithWatermanGeneralGap;
pub use viterbi::{Hmm, Viterbi};
