//! Matrix-chain multiplication parenthesization — triangular 2D/1D.

use crate::matrix::{DpGrid, DpMatrix};
use crate::problem::DpProblem;
use easyhps_core::patterns::TriangularGap;
use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use std::sync::Arc;

/// Optimal parenthesization of a chain of matrices with dimension vector
/// `p` (matrix `k` is `p[k] x p[k+1]`):
///
/// ```text
/// M[i,j] = min_{i<=k<j} M[i,k] + M[k+1,j] + p_i * p_{k+1} * p_{j+1}
/// ```
///
/// over the upper triangle of an `n x n` grid with `M[i,i] = 0`. Bradford's
/// PRAM work (paper ref.\[7\]) targets exactly this recurrence; it shares
/// the triangular 2D/1D pattern with Nussinov.
#[derive(Clone, Debug)]
pub struct MatrixChain {
    /// Dimension vector of length `n + 1`.
    p: Vec<u64>,
}

impl MatrixChain {
    /// Chain with dimension vector `p` (`p.len() >= 2`).
    pub fn new(p: Vec<u64>) -> Self {
        assert!(p.len() >= 2, "need at least one matrix");
        Self { p }
    }

    fn n(&self) -> u32 {
        (self.p.len() - 1) as u32
    }

    /// Minimum number of scalar multiplications, from a computed matrix.
    pub fn min_cost(&self, m: &DpMatrix<u64>) -> u64 {
        m.get(0, self.n() - 1)
    }

    /// Reconstruct an optimal parenthesization as a string like
    /// `((A0 A1) A2)`.
    pub fn parenthesization(&self, m: &DpMatrix<u64>) -> String {
        fn go(mc: &MatrixChain, m: &DpMatrix<u64>, i: u32, j: u32, out: &mut String) {
            if i == j {
                out.push('A');
                out.push_str(&i.to_string());
                return;
            }
            for k in i..j {
                let cost = m.get(i, k)
                    + m.get(k + 1, j)
                    + mc.p[i as usize] * mc.p[k as usize + 1] * mc.p[j as usize + 1];
                if cost == m.get(i, j) {
                    out.push('(');
                    go(mc, m, i, k, out);
                    out.push(' ');
                    go(mc, m, k + 1, j, out);
                    out.push(')');
                    return;
                }
            }
            unreachable!("no split reproduces M[{i},{j}]");
        }
        let mut s = String::new();
        go(self, m, 0, self.n() - 1, &mut s);
        s
    }
}

impl DpProblem for MatrixChain {
    type Cell = u64;

    fn name(&self) -> String {
        "matrix-chain".into()
    }

    fn dims(&self) -> GridDims {
        GridDims::square(self.n())
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        Arc::new(TriangularGap::new(self.n()))
    }

    fn compute_region<G: DpGrid<u64>>(&self, m: &mut G, region: TileRegion) {
        for i in (region.row_start..region.row_end).rev() {
            for j in region.col_start..region.col_end {
                if j < i {
                    continue;
                }
                let v = if i == j {
                    0
                } else {
                    (i..j)
                        .map(|k| {
                            m.get(i, k)
                                + m.get(k + 1, j)
                                + self.p[i as usize]
                                    * self.p[k as usize + 1]
                                    * self.p[j as usize + 1]
                        })
                        .min()
                        .expect("nonempty split range")
                };
                m.set(i, j, v);
            }
        }
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        if p.col < p.row {
            0
        } else {
            (p.col - p.row) as u64 + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clrs_example() {
        // CLRS 15.2: p = (30,35,15,5,10,20,25) -> 15125 multiplications.
        let p = MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25]);
        let m = p.solve_sequential();
        assert_eq!(p.min_cost(&m), 15125);
        assert_eq!(p.parenthesization(&m), "((A0 (A1 A2)) ((A3 A4) A5))");
    }

    #[test]
    fn single_matrix_costs_zero() {
        let p = MatrixChain::new(vec![4, 7]);
        let m = p.solve_sequential();
        assert_eq!(p.min_cost(&m), 0);
        assert_eq!(p.parenthesization(&m), "A0");
    }

    #[test]
    fn two_matrices() {
        let p = MatrixChain::new(vec![2, 3, 4]);
        let m = p.solve_sequential();
        assert_eq!(p.min_cost(&m), 24);
    }

    #[test]
    fn tiled_equals_sequential() {
        use easyhps_core::{DagParser, TaskDag};
        let dims: Vec<u64> = (0..20).map(|i| 2 + (i * 7 % 13)).collect();
        let p = MatrixChain::new(dims);
        let seq = p.solve_sequential();

        let model = easyhps_core::DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::square(4))
            .build();
        let dag: TaskDag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        for i in 0..19u32 {
            for j in i..19u32 {
                assert_eq!(m.get(i, j), seq.get(i, j), "cell ({i},{j})");
            }
        }
    }
}
