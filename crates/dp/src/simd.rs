//! Vector-friendly scan reductions shared by the 2D/1D kernels.
//!
//! These helpers are written as straight element-wise reduction loops
//! over contiguous slices — the exact shape LLVM's loop vectorizer
//! compiles to `max`/`add` vector code on any target, without
//! arch-specific intrinsics or extra crates. An earlier draft carried a
//! hand-rolled eight-lane `i32` wrapper here; measured on the tile
//! benches it *lost* to these plain loops (the array-shuffling loads
//! never folded into single vector moves and the per-call reduction
//! overhead dominated short scans), so the explicit-lane path was
//! dropped in favour of the autovectorized form. The `simd` cargo
//! feature instead gates the *algorithmic* layer above: the
//! anti-diagonal kernels in [`crate::algos::adiag`], which restructure
//! the wavefront recurrences so their inner loops become element-wise
//! maps like the ones below. Results are bit-identical to any scalar
//! evaluation order: only `max`, `add` and `sub` over `i32` are
//! involved, which are exact and associative-safe here.

/// `max_t (cells[n-1-t] - wt[t])` over `t in 0..n`, where
/// `n = cells.len() == wt.len()` — the SWGG row/column gap scan with the
/// cell operand walked backwards. Returns `i32::MIN` on empty input.
#[inline]
pub(crate) fn rev_scan_max(cells: &[i32], wt: &[i32]) -> i32 {
    debug_assert_eq!(cells.len(), wt.len());
    let mut best = i32::MIN;
    for (&c, &w) in cells.iter().rev().zip(wt.iter()) {
        best = best.max(c - w);
    }
    best
}

/// `max_t (x[t] + y[t])` over `t in 0..x.len()` — the Nussinov
/// bifurcation scan, both operands walked forwards. Returns `i32::MIN`
/// on empty input.
#[inline]
pub(crate) fn add_scan_max(x: &[i32], y: &[i32]) -> i32 {
    debug_assert_eq!(x.len(), y.len());
    let mut best = i32::MIN;
    for (&a, &b) in x.iter().zip(y.iter()) {
        best = best.max(a + b);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rev_scan_ref(cells: &[i32], wt: &[i32]) -> i32 {
        let mut best = i32::MIN;
        for (&c, &w) in cells.iter().rev().zip(wt) {
            best = best.max(c - w);
        }
        best
    }

    fn add_scan_ref(x: &[i32], y: &[i32]) -> i32 {
        let mut best = i32::MIN;
        for (&a, &b) in x.iter().zip(y) {
            best = best.max(a + b);
        }
        best
    }

    #[test]
    fn scans_match_reference_on_all_lengths() {
        // Cover empty, sub-lane, exactly-one-lane, ragged and multi-lane.
        for n in 0usize..40 {
            let cells: Vec<i32> = (0..n).map(|i| ((i * 37) % 23) as i32 - 11).collect();
            let wt: Vec<i32> = (0..n).map(|i| ((i * 13) % 17) as i32).collect();
            assert_eq!(
                rev_scan_max(&cells, &wt),
                rev_scan_ref(&cells, &wt),
                "n={n}"
            );
            assert_eq!(
                add_scan_max(&cells, &wt),
                add_scan_ref(&cells, &wt),
                "n={n}"
            );
        }
    }
}
