//! Dense DP matrix storage with strip extraction for the runtime.

use crate::cell::Cell;
use easyhps_core::{GridDims, GridPos, TileRegion};

/// Read/write access to a DP grid.
///
/// Kernels ([`crate::DpProblem::compute_region`]) are written against this
/// trait so they can run both on an owned [`DpMatrix`] (sequential
/// reference, master-side assembly) and on the runtime's shared node matrix
/// (where the DAG schedule guarantees race freedom).
pub trait DpGrid<C: Cell> {
    /// Grid extent.
    fn dims(&self) -> GridDims;

    /// Read the cell at `(row, col)`.
    fn get(&self, row: u32, col: u32) -> C;

    /// Write the cell at `(row, col)`.
    fn set(&mut self, row: u32, col: u32, value: C);

    /// Borrow cells `[col_start, col_end)` of `row` as a contiguous slice,
    /// if this grid stores them contiguously. `None` means the caller must
    /// fall back to [`DpGrid::read_row_into`].
    ///
    /// Callers must only request cells that are *finalized* for them: their
    /// own already-written cells, or cells whose producing task the DAG
    /// schedule orders (with happens-before) strictly before the caller.
    /// This is the same contract as per-cell `get`, stated once per row.
    fn row_slice(&self, row: u32, col_start: u32, col_end: u32) -> Option<&[C]> {
        let _ = (row, col_start, col_end);
        None
    }

    /// Bulk-read cells `[col_start, col_start + dst.len())` of `row` into
    /// `dst`. Same finalization contract as [`DpGrid::row_slice`]; the
    /// default copies the row slice when one exists and falls back to
    /// per-cell `get` otherwise.
    fn read_row_into(&self, row: u32, col_start: u32, dst: &mut [C]) {
        if let Some(s) = self.row_slice(row, col_start, col_start + dst.len() as u32) {
            dst.copy_from_slice(s);
            return;
        }
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.get(row, col_start + i as u32);
        }
    }

    /// Bulk-write `values` into `row` starting at `col_start`. Grids that
    /// enforce a writable region may check it once per call instead of once
    /// per cell.
    fn write_row(&mut self, row: u32, col_start: u32, values: &[C]) {
        for (i, v) in values.iter().enumerate() {
            self.set(row, col_start + i as u32, *v);
        }
    }
}

/// A dense, row-major DP matrix.
///
/// Triangular problems also use a dense matrix and simply never touch the
/// lower triangle; the memory overhead matches the paper's implementation
/// (its §VII explicitly lists space consumption as a known limitation).
#[derive(Clone, Debug, PartialEq)]
pub struct DpMatrix<C: Cell> {
    dims: GridDims,
    data: Vec<C>,
}

impl<C: Cell> DpMatrix<C> {
    /// Create a matrix filled with `C::default()`.
    pub fn new(dims: GridDims) -> Self {
        Self {
            dims,
            data: vec![C::default(); dims.area() as usize],
        }
    }

    /// Matrix extent.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Read the cell at `(row, col)`.
    #[inline]
    pub fn get(&self, row: u32, col: u32) -> C {
        debug_assert!(self.dims.contains(GridPos::new(row, col)));
        self.data[row as usize * self.dims.cols as usize + col as usize]
    }

    /// Write the cell at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: u32, col: u32, value: C) {
        debug_assert!(self.dims.contains(GridPos::new(row, col)));
        self.data[row as usize * self.dims.cols as usize + col as usize] = value;
    }

    /// Read by position.
    #[inline]
    pub fn at(&self, p: GridPos) -> C {
        self.get(p.row, p.col)
    }

    /// Borrow one row as a slice.
    pub fn row(&self, row: u32) -> &[C] {
        let w = self.dims.cols as usize;
        &self.data[row as usize * w..(row as usize + 1) * w]
    }

    /// Mutably borrow cells `[col_start, col_end)` of one row.
    fn row_span_mut(&mut self, row: u32, col_start: u32, col_end: u32) -> &mut [C] {
        debug_assert!(col_start <= col_end && col_end <= self.dims.cols);
        let base = row as usize * self.dims.cols as usize;
        &mut self.data[base + col_start as usize..base + col_end as usize]
    }

    /// Raw cells in row-major order.
    pub fn as_slice(&self) -> &[C] {
        &self.data
    }

    /// Serialize the cells of `region` (row-major) into bytes.
    pub fn encode_region(&self, region: TileRegion) -> Vec<u8> {
        let mut out = Vec::with_capacity(region.area() as usize * C::WIRE_SIZE);
        for r in region.row_start..region.row_end {
            let base = r as usize * self.dims.cols as usize;
            let row = &self.data[base + region.col_start as usize..base + region.col_end as usize];
            C::encode_slice(row, &mut out);
        }
        out
    }

    /// Overwrite the cells of `region` from bytes produced by
    /// [`Self::encode_region`]. Panics if the byte length does not match the
    /// region.
    pub fn decode_region(&mut self, region: TileRegion, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            region.area() as usize * C::WIRE_SIZE,
            "byte length does not match region {region:?}"
        );
        if region.cols() == 0 {
            return;
        }
        let row_bytes = region.cols() as usize * C::WIRE_SIZE;
        for (r, chunk) in (region.row_start..region.row_end).zip(bytes.chunks_exact(row_bytes)) {
            let row = self.row_span_mut(r, region.col_start, region.col_end);
            C::decode_slice(row, chunk);
        }
    }

    /// Copy the cells of `region` from `src` (same dims required).
    pub fn copy_region_from(&mut self, src: &DpMatrix<C>, region: TileRegion) {
        assert_eq!(self.dims, src.dims);
        for r in region.row_start..region.row_end {
            let base = r as usize * self.dims.cols as usize;
            let span = base + region.col_start as usize..base + region.col_end as usize;
            self.data[span.clone()].copy_from_slice(&src.data[span]);
        }
    }

    /// Maximum cell value over `region` by a key function, with its
    /// position. Returns `None` on an empty region.
    pub fn max_in_region_by_key<K: PartialOrd>(
        &self,
        region: TileRegion,
        key: impl Fn(C) -> K,
    ) -> Option<(GridPos, C)> {
        let mut best: Option<(GridPos, C, K)> = None;
        for p in region.iter() {
            let v = self.at(p);
            let k = key(v);
            match &best {
                Some((_, _, bk)) if *bk >= k => {}
                _ => best = Some((p, v, k)),
            }
        }
        best.map(|(p, v, _)| (p, v))
    }
}

impl<C: Cell> DpGrid<C> for DpMatrix<C> {
    fn dims(&self) -> GridDims {
        self.dims
    }

    #[inline]
    fn get(&self, row: u32, col: u32) -> C {
        DpMatrix::get(self, row, col)
    }

    #[inline]
    fn set(&mut self, row: u32, col: u32, value: C) {
        DpMatrix::set(self, row, col, value);
    }

    fn row_slice(&self, row: u32, col_start: u32, col_end: u32) -> Option<&[C]> {
        debug_assert!(col_start <= col_end && col_end <= self.dims.cols);
        let base = row as usize * self.dims.cols as usize;
        Some(&self.data[base + col_start as usize..base + col_end as usize])
    }

    fn write_row(&mut self, row: u32, col_start: u32, values: &[C]) {
        self.row_span_mut(row, col_start, col_start + values.len() as u32)
            .copy_from_slice(values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut m = DpMatrix::<i32>::new(GridDims::new(3, 4));
        m.set(2, 3, 42);
        m.set(0, 0, -1);
        assert_eq!(m.get(2, 3), 42);
        assert_eq!(m.get(0, 0), -1);
        assert_eq!(m.get(1, 1), 0);
    }

    #[test]
    fn region_encode_decode_roundtrip() {
        let mut m = DpMatrix::<i32>::new(GridDims::new(4, 4));
        for p in m.dims().iter() {
            m.set(p.row, p.col, (p.row * 10 + p.col) as i32);
        }
        let region = TileRegion::new(1, 3, 1, 4);
        let bytes = m.encode_region(region);
        assert_eq!(bytes.len(), 6 * 4);

        let mut m2 = DpMatrix::<i32>::new(GridDims::new(4, 4));
        m2.decode_region(region, &bytes);
        for p in region.iter() {
            assert_eq!(m2.at(p), m.at(p));
        }
        assert_eq!(m2.get(0, 0), 0, "cells outside the region untouched");
    }

    #[test]
    #[should_panic(expected = "byte length")]
    fn decode_wrong_length_panics() {
        let mut m = DpMatrix::<i32>::new(GridDims::new(2, 2));
        m.decode_region(TileRegion::new(0, 2, 0, 2), &[0u8; 3]);
    }

    #[test]
    fn copy_region() {
        let mut a = DpMatrix::<i64>::new(GridDims::square(3));
        let mut b = DpMatrix::<i64>::new(GridDims::square(3));
        for p in a.dims().iter() {
            a.set(p.row, p.col, (p.row + p.col) as i64);
        }
        b.copy_region_from(&a, TileRegion::new(0, 2, 0, 2));
        assert_eq!(b.get(1, 1), 2);
        assert_eq!(b.get(2, 2), 0);
    }

    #[test]
    fn max_in_region() {
        let mut m = DpMatrix::<i32>::new(GridDims::square(3));
        m.set(1, 2, 9);
        m.set(2, 0, 11);
        let (p, v) = m
            .max_in_region_by_key(TileRegion::new(0, 3, 0, 3), |c| c)
            .unwrap();
        assert_eq!((p, v), (GridPos::new(2, 0), 11));
        // Restricted region misses the global max.
        let (p, v) = m
            .max_in_region_by_key(TileRegion::new(0, 2, 0, 3), |c| c)
            .unwrap();
        assert_eq!((p, v), (GridPos::new(1, 2), 9));
    }
}
