//! Alignment result types shared by the Smith-Waterman variants.

use std::fmt;
use std::ops::Range;

/// A local alignment between two sequences, as reconstructed by traceback.
///
/// `a_aligned` / `b_aligned` are the aligned segments with `b'-'` gap
/// symbols inserted; they always have equal length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Alignment score.
    pub score: i32,
    /// Half-open range of the aligned segment in sequence `a`.
    pub a_range: Range<usize>,
    /// Half-open range of the aligned segment in sequence `b`.
    pub b_range: Range<usize>,
    /// Aligned segment of `a` with gaps.
    pub a_aligned: Vec<u8>,
    /// Aligned segment of `b` with gaps.
    pub b_aligned: Vec<u8>,
}

impl LocalAlignment {
    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.a_aligned.len()
    }

    /// True for the empty alignment (score 0, nothing aligned).
    pub fn is_empty(&self) -> bool {
        self.a_aligned.is_empty()
    }

    /// Fraction of columns where both symbols match, in `[0, 1]`.
    pub fn identity(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let matches = self
            .a_aligned
            .iter()
            .zip(&self.b_aligned)
            .filter(|(x, y)| x == y && **x != b'-')
            .count();
        matches as f64 / self.len() as f64
    }
}

impl fmt::Display for LocalAlignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "score {}  a[{}..{}]  b[{}..{}]  identity {:.1}%",
            self.score,
            self.a_range.start,
            self.a_range.end,
            self.b_range.start,
            self.b_range.end,
            self.identity() * 100.0
        )?;
        let mid: String = self
            .a_aligned
            .iter()
            .zip(&self.b_aligned)
            .map(|(x, y)| if x == y && *x != b'-' { '|' } else { ' ' })
            .collect();
        writeln!(f, "  {}", String::from_utf8_lossy(&self.a_aligned))?;
        writeln!(f, "  {mid}")?;
        write!(f, "  {}", String::from_utf8_lossy(&self.b_aligned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_counts_matches_only() {
        let a = LocalAlignment {
            score: 5,
            a_range: 0..4,
            b_range: 0..3,
            a_aligned: b"AC-T".to_vec(),
            b_aligned: b"ACGT".to_vec(),
        };
        assert_eq!(a.len(), 4);
        assert!((a.identity() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_alignment() {
        let a = LocalAlignment {
            score: 0,
            a_range: 0..0,
            b_range: 0..0,
            a_aligned: vec![],
            b_aligned: vec![],
        };
        assert!(a.is_empty());
        assert_eq!(a.identity(), 0.0);
    }

    #[test]
    fn display_renders_midline() {
        let a = LocalAlignment {
            score: 4,
            a_range: 0..2,
            b_range: 0..2,
            a_aligned: b"AC".to_vec(),
            b_aligned: b"AG".to_vec(),
        };
        let s = a.to_string();
        assert!(s.contains("score 4"));
        assert!(s.contains('|'));
    }
}
