//! Biological sequences: alphabets, random generation, base pairing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Alphabets for random sequence generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Alphabet {
    /// `ACGT`.
    Dna,
    /// `ACGU`.
    Rna,
    /// The 20 standard amino acids.
    Protein,
}

impl Alphabet {
    /// The symbols of the alphabet.
    pub fn symbols(self) -> &'static [u8] {
        match self {
            Alphabet::Dna => b"ACGT",
            Alphabet::Rna => b"ACGU",
            Alphabet::Protein => b"ACDEFGHIKLMNPQRSTVWY",
        }
    }
}

/// Generate a random sequence of `len` symbols with a fixed seed
/// (deterministic across runs and platforms).
pub fn random_sequence(alphabet: Alphabet, len: usize, seed: u64) -> Vec<u8> {
    let symbols = alphabet.symbols();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| symbols[rng.random_range(0..symbols.len())])
        .collect()
}

/// Whether two RNA bases can pair (Watson-Crick `AU`/`GC` plus the wobble
/// pair `GU`), as used by the Nussinov algorithm.
#[inline]
pub fn rna_pairs(a: u8, b: u8) -> bool {
    matches!(
        (a, b),
        (b'A', b'U') | (b'U', b'A') | (b'G', b'C') | (b'C', b'G') | (b'G', b'U') | (b'U', b'G')
    )
}

/// Parse FASTA-formatted text into (name, sequence) records. Lines starting
/// with `>` begin a record; whitespace inside sequences is ignored.
pub fn parse_fasta(text: &str) -> Vec<(String, Vec<u8>)> {
    let mut records: Vec<(String, Vec<u8>)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            records.push((name.trim().to_string(), Vec::new()));
        } else if let Some((_, seq)) = records.last_mut() {
            seq.extend(line.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
        // Sequence data before any header is ignored, like most tools do.
    }
    records
}

/// Render records as FASTA with 60-column wrapping.
pub fn to_fasta(records: &[(String, Vec<u8>)]) -> String {
    let mut out = String::new();
    for (name, seq) in records {
        out.push('>');
        out.push_str(name);
        out.push('\n');
        for chunk in seq.chunks(60) {
            out.push_str(std::str::from_utf8(chunk).expect("ASCII sequence"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sequences_are_deterministic() {
        let a = random_sequence(Alphabet::Dna, 100, 7);
        let b = random_sequence(Alphabet::Dna, 100, 7);
        let c = random_sequence(Alphabet::Dna, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|s| b"ACGT".contains(s)));
    }

    #[test]
    fn rna_pairing_rules() {
        assert!(rna_pairs(b'A', b'U'));
        assert!(rna_pairs(b'G', b'C'));
        assert!(rna_pairs(b'G', b'U'));
        assert!(!rna_pairs(b'A', b'G'));
        assert!(!rna_pairs(b'A', b'A'));
    }

    #[test]
    fn fasta_roundtrip() {
        let records = vec![
            ("seq1 description".to_string(), b"ACGTACGT".to_vec()),
            ("seq2".to_string(), random_sequence(Alphabet::Rna, 130, 3)),
        ];
        let text = to_fasta(&records);
        let parsed = parse_fasta(&text);
        assert_eq!(parsed, records);
    }

    #[test]
    fn fasta_ignores_leading_garbage_and_blank_lines() {
        let parsed = parse_fasta("GARBAGE\n\n>a\nAC\nGT\n\n>b\n");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("a".to_string(), b"ACGT".to_vec()));
        assert_eq!(parsed[1].1, b"");
    }
}
