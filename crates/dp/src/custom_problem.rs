//! Define a DP problem from closures — no trait implementation needed.
//!
//! The paper's pitch is that a user only supplies the recurrence and the
//! pattern; everything else is the runtime's job. [`ClosureProblem`] is
//! that entry point: pick a library pattern (or pass a custom one), give a
//! cell function, get a [`DpProblem`].

use crate::cell::Cell;
use crate::matrix::DpGrid;
use crate::problem::DpProblem;
use easyhps_core::patterns;
use easyhps_core::{DagPattern, GridDims, GridPos, PatternKind, TileRegion};
use std::sync::Arc;

/// A read-only view of the grid handed to the user's cell function.
pub struct CellCtx<'a, C: Cell> {
    grid: &'a dyn DpGrid<C>,
}

impl<C: Cell> CellCtx<'_, C> {
    /// Read a finished (or in-region, already computed) cell.
    pub fn get(&self, row: u32, col: u32) -> C {
        self.grid.get(row, col)
    }
}

type CellFn<C> = dyn Fn(&CellCtx<'_, C>, GridPos) -> C + Send + Sync;

/// A [`DpProblem`] assembled from closures.
///
/// ```
/// use easyhps_dp::{ClosureProblem, DpProblem};
/// use easyhps_core::PatternKind;
///
/// // Pascal's triangle as a wavefront recurrence.
/// let pascal = ClosureProblem::<u64>::builder("pascal", (10, 10), PatternKind::Wavefront2D)
///     .cell(|ctx, p| {
///         if p.row == 0 || p.col == 0 {
///             1
///         } else {
///             ctx.get(p.row - 1, p.col) + ctx.get(p.row, p.col - 1)
///         }
///     })
///     .build();
/// let m = pascal.solve_sequential();
/// assert_eq!(m.get(4, 4), 70); // C(8, 4)
/// ```
pub struct ClosureProblem<C: Cell> {
    name: String,
    pattern: Arc<dyn DagPattern>,
    cell_fn: Arc<CellFn<C>>,
    work_fn: Option<Arc<dyn Fn(GridPos) -> u64 + Send + Sync>>,
}

impl<C: Cell> ClosureProblem<C> {
    /// Start building with a library pattern kind over `dims`.
    pub fn builder(
        name: impl Into<String>,
        dims: impl Into<GridDims>,
        kind: PatternKind,
    ) -> ClosureProblemBuilder<C> {
        let dims = dims.into();
        let pattern = patterns::builtin(kind, dims)
            .expect("library pattern kind; use builder_with_pattern for custom shapes");
        ClosureProblemBuilder {
            name: name.into(),
            pattern,
            cell_fn: None,
            work_fn: None,
        }
    }

    /// Start building with an explicit (possibly user-defined) pattern.
    pub fn builder_with_pattern(
        name: impl Into<String>,
        pattern: Arc<dyn DagPattern>,
    ) -> ClosureProblemBuilder<C> {
        ClosureProblemBuilder {
            name: name.into(),
            pattern,
            cell_fn: None,
            work_fn: None,
        }
    }
}

/// Builder for [`ClosureProblem`].
pub struct ClosureProblemBuilder<C: Cell> {
    name: String,
    pattern: Arc<dyn DagPattern>,
    cell_fn: Option<Arc<CellFn<C>>>,
    work_fn: Option<Arc<dyn Fn(GridPos) -> u64 + Send + Sync>>,
}

impl<C: Cell> ClosureProblemBuilder<C> {
    /// The cell function: computes one cell given read access to every
    /// cell the pattern declares as a data dependency (and cells of the
    /// current region already computed by the in-region sweep).
    pub fn cell(
        mut self,
        f: impl Fn(&CellCtx<'_, C>, GridPos) -> C + Send + Sync + 'static,
    ) -> Self {
        self.cell_fn = Some(Arc::new(f));
        self
    }

    /// Optional per-cell work estimate for the cluster simulator's cost
    /// models (defaults to 1).
    pub fn work(mut self, f: impl Fn(GridPos) -> u64 + Send + Sync + 'static) -> Self {
        self.work_fn = Some(Arc::new(f));
        self
    }

    /// Finish; panics if no cell function was provided.
    pub fn build(self) -> ClosureProblem<C> {
        ClosureProblem {
            name: self.name,
            pattern: self.pattern,
            cell_fn: self.cell_fn.expect("cell() is required"),
            work_fn: self.work_fn,
        }
    }
}

impl<C: Cell> DpProblem for ClosureProblem<C> {
    type Cell = C;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn dims(&self) -> GridDims {
        self.pattern.dims()
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        self.pattern.clone()
    }

    fn compute_region<G: DpGrid<C>>(&self, m: &mut G, region: TileRegion) {
        // Choose the in-region sweep from the pattern orientation: the
        // triangular kinds consume below-left neighbours, everything else
        // consumes up-left.
        let bottom_up = matches!(self.pattern.kind(), PatternKind::TriangularGap);
        let rows: Box<dyn Iterator<Item = u32>> = if bottom_up {
            Box::new((region.row_start..region.row_end).rev())
        } else {
            Box::new(region.row_start..region.row_end)
        };
        for i in rows {
            for j in region.col_start..region.col_end {
                let p = GridPos::new(i, j);
                if !self.pattern.contains(p) {
                    continue;
                }
                let v = {
                    let ctx = CellCtx { grid: &*m };
                    (self.cell_fn)(&ctx, p)
                };
                m.set(i, j, v);
            }
        }
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        match &self.work_fn {
            Some(f) => f(p),
            None => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::EditDistance;
    use crate::matrix::DpMatrix;
    use easyhps_core::{DagDataDrivenModel, DagParser};

    fn closure_edit(a: &'static [u8], b: &'static [u8]) -> ClosureProblem<i32> {
        let dims = GridDims::new(a.len() as u32 + 1, b.len() as u32 + 1);
        ClosureProblem::<i32>::builder("closure-edit", dims, PatternKind::Wavefront2D)
            .cell(move |ctx, p| {
                if p.row == 0 {
                    p.col as i32
                } else if p.col == 0 {
                    p.row as i32
                } else {
                    let sub = i32::from(a[p.row as usize - 1] != b[p.col as usize - 1]);
                    (ctx.get(p.row - 1, p.col) + 1)
                        .min(ctx.get(p.row, p.col - 1) + 1)
                        .min(ctx.get(p.row - 1, p.col - 1) + sub)
                }
            })
            .build()
    }

    #[test]
    fn closure_matches_builtin_edit_distance() {
        let p = closure_edit(b"kitten", b"sitting");
        let builtin = EditDistance::new(b"kitten".to_vec(), b"sitting".to_vec());
        assert_eq!(p.solve_sequential(), builtin.solve_sequential());
    }

    #[test]
    fn triangular_closure_sweeps_bottom_up() {
        // Count-of-cells-in-span recurrence: f(i,j) = f(i,j-1) + f(i+1,j)
        // - f(i+1,j-1) + 1 would need inclusion-exclusion; simpler: length
        // of span via left neighbour.
        let p = ClosureProblem::<i64>::builder("span-length", (8, 8), PatternKind::TriangularGap)
            .cell(|ctx, p| {
                if p.row == p.col {
                    1
                } else {
                    ctx.get(p.row, p.col - 1) + 1
                }
            })
            .work(|p| (p.col - p.row) as u64 + 1)
            .build();
        let m = p.solve_sequential();
        assert_eq!(m.get(0, 7), 8);
        assert_eq!(m.get(3, 5), 3);
        assert_eq!(p.cell_work(GridPos::new(2, 6)), 5);
    }

    #[test]
    fn closure_problem_tiles_correctly() {
        let p = closure_edit(b"dynamicprogramming", b"multilevelruntime");
        let seq = p.solve_sequential();
        let model = DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(5, 4))
            .build();
        let dag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }

    #[test]
    #[should_panic(expected = "cell() is required")]
    fn missing_cell_fn_panics() {
        let _ = ClosureProblem::<i32>::builder("x", (2, 2), PatternKind::Wavefront2D).build();
    }
}
