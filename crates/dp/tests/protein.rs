//! Protein alignment with BLOSUM62: integration of table scoring with the
//! alignment kernels.

use easyhps_dp::scoring::AMINO_ACIDS;
use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{
    DpProblem, GapPenalty, NeedlemanWunsch, SmithWatermanAffine, SmithWatermanGeneralGap,
    Substitution,
};

#[test]
fn blosum62_alphabet_matches_protein_generator() {
    let seq = random_sequence(Alphabet::Protein, 200, 1);
    let s = Substitution::blosum62();
    for &aa in &seq {
        assert!(AMINO_ACIDS.contains(&aa));
        // Scoring any generated pair must not panic.
        let _ = s.score(aa, seq[0]);
    }
}

#[test]
fn local_protein_alignment_finds_conserved_domain() {
    // Plant a conserved domain into two random proteins.
    let domain = random_sequence(Alphabet::Protein, 30, 7);
    let mut a = random_sequence(Alphabet::Protein, 25, 1);
    a.extend_from_slice(&domain);
    a.extend(random_sequence(Alphabet::Protein, 25, 2));
    let mut b = random_sequence(Alphabet::Protein, 40, 3);
    b.extend_from_slice(&domain);
    b.extend(random_sequence(Alphabet::Protein, 10, 4));

    let p = SmithWatermanAffine::new(a, b, Substitution::blosum62(), 11, 1);
    let m = p.solve_sequential();
    let aln = p.traceback(&m);
    assert!(
        aln.score > 100,
        "30 conserved residues score well over 100: {}",
        aln.score
    );
    // The local alignment may extend into lucky flank matches, so check it
    // covers the planted domain (a[25..55], b[40..70]) rather than a global
    // identity threshold.
    assert!(
        aln.a_range.start <= 27 && aln.a_range.end >= 53,
        "alignment must span the domain in a: {:?}",
        aln.a_range
    );
    assert!(
        aln.b_range.start <= 42 && aln.b_range.end >= 68,
        "alignment must span the domain in b: {:?}",
        aln.b_range
    );
    assert!(aln.identity() > 0.5, "matches dominate: {}", aln.identity());
    assert!(aln.len() >= 28, "most of the domain aligned");
}

#[test]
fn global_protein_alignment_is_symmetric_in_score() {
    let a = random_sequence(Alphabet::Protein, 40, 11);
    let b = random_sequence(Alphabet::Protein, 40, 12);
    let s1 = {
        let p = NeedlemanWunsch::new(a.clone(), b.clone(), Substitution::blosum62(), 8);
        p.score(&p.solve_sequential())
    };
    let s2 = {
        let p = NeedlemanWunsch::new(b, a, Substitution::blosum62(), 8);
        p.score(&p.solve_sequential())
    };
    assert_eq!(
        s1, s2,
        "BLOSUM62 is symmetric, so swapping inputs keeps the score"
    );
}

#[test]
fn general_gap_protein_alignment_beats_or_matches_affine_scan() {
    // With the same affine penalty the general-gap kernel must agree; with
    // a concave log penalty it may find strictly better-scoring gaps.
    let a = random_sequence(Alphabet::Protein, 30, 21);
    let b = random_sequence(Alphabet::Protein, 32, 22);
    let affine = SmithWatermanAffine::new(a.clone(), b.clone(), Substitution::blosum62(), 11, 1);
    let general_affine = SmithWatermanGeneralGap::new(
        a.clone(),
        b.clone(),
        Substitution::blosum62(),
        GapPenalty::Affine {
            open: 11,
            extend: 1,
        },
    );
    let sa = affine.best_score(&affine.solve_sequential());
    let sg = general_affine.best_score(&general_affine.solve_sequential());
    assert_eq!(sa, sg);

    let general_log = SmithWatermanGeneralGap::new(
        a,
        b,
        Substitution::blosum62(),
        GapPenalty::Logarithmic { a: 11, b: 1 },
    );
    let sl = general_log.best_score(&general_log.solve_sequential());
    assert!(sl >= sg, "cheaper long gaps can only help: {sl} vs {sg}");
}

#[test]
fn protein_alignment_through_the_runtime() {
    use easyhps_runtime_stub::run_small;
    // (Defined below; exercises the multilevel runtime via the facade is
    // covered elsewhere — here we only check tiled == sequential.)
    run_small();
}

mod easyhps_runtime_stub {
    use super::*;
    use easyhps_core::{DagDataDrivenModel, DagParser, GridDims};
    use easyhps_dp::DpMatrix;

    pub fn run_small() {
        let a = random_sequence(Alphabet::Protein, 35, 31);
        let b = random_sequence(Alphabet::Protein, 37, 32);
        let p = SmithWatermanAffine::new(a, b, Substitution::blosum62(), 11, 1);
        let seq = p.solve_sequential();
        let model = DagDataDrivenModel::builder(p.pattern())
            .process_partition_size(GridDims::new(8, 9))
            .build();
        let dag = model.master_dag();
        let mut m = DpMatrix::new(p.dims());
        DagParser::drain_sequential(&dag, |v| {
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        });
        assert_eq!(m, seq);
    }
}
