//! Property-based tests: tiled execution equals sequential execution for
//! every algorithm under arbitrary partitions, plus algorithm-specific
//! invariants.

use easyhps_core::{DagDataDrivenModel, DagParser, GridDims};
use easyhps_dp::sequence::{random_sequence, rna_pairs, Alphabet};
use easyhps_dp::{
    Cell, DpMatrix, DpProblem, EditDistance, GapPenalty, Lcs, MatrixChain, Nussinov, OptimalBst,
    Quadrant2D2D, SmithWatermanAffine, SmithWatermanGeneralGap, Substitution,
};
use proptest::prelude::*;

/// Run `problem` tile-by-tile in DAG order with the given partition and
/// compare present cells against the sequential solution.
fn assert_tiled_matches<P: DpProblem>(problem: &P, partition: GridDims) {
    let seq = problem.solve_sequential();
    let model = DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(partition)
        .build();
    let dag = model.master_dag();
    let mut m = DpMatrix::<P::Cell>::new(problem.dims());
    DagParser::drain_sequential(&dag, |v| {
        problem.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
    });
    let pattern = problem.pattern();
    for p in problem.dims().iter() {
        if pattern.contains(p) {
            assert_eq!(m.at(p), seq.at(p), "{} cell {}", problem.name(), p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn edit_distance_tiled_matches(
        la in 1usize..30, lb in 1usize..30, seed in 0u64..1000,
        pr in 1u32..9, pc in 1u32..9,
    ) {
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        assert_tiled_matches(&EditDistance::new(a, b), GridDims::new(pr, pc));
    }

    #[test]
    fn lcs_tiled_matches(
        la in 1usize..30, lb in 1usize..30, seed in 0u64..1000,
        pr in 1u32..9, pc in 1u32..9,
    ) {
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        assert_tiled_matches(&Lcs::new(a, b), GridDims::new(pr, pc));
    }

    #[test]
    fn swgg_tiled_matches(
        la in 1usize..22, lb in 1usize..22, seed in 0u64..1000,
        pr in 1u32..7, pc in 1u32..7,
    ) {
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        assert_tiled_matches(&SmithWatermanGeneralGap::dna(a, b), GridDims::new(pr, pc));
    }

    #[test]
    fn sw_affine_tiled_matches(
        la in 1usize..25, lb in 1usize..25, seed in 0u64..1000,
        pr in 1u32..8, pc in 1u32..8,
    ) {
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        assert_tiled_matches(&SmithWatermanAffine::dna(a, b), GridDims::new(pr, pc));
    }

    #[test]
    fn nussinov_tiled_matches(
        len in 2usize..30, seed in 0u64..1000, p in 1u32..8,
    ) {
        let seq = random_sequence(Alphabet::Rna, len, seed);
        // Square partitions keep the triangle shape analytic.
        assert_tiled_matches(&Nussinov::new(seq), GridDims::square(p));
    }

    #[test]
    fn matrix_chain_tiled_matches(
        n in 2usize..16, seed in 0u64..1000, p in 1u32..6,
    ) {
        let dims: Vec<u64> = (0..=n).map(|i| 1 + ((seed + i as u64) * 31 % 17)).collect();
        assert_tiled_matches(&MatrixChain::new(dims), GridDims::square(p));
    }

    #[test]
    fn obst_tiled_matches(
        n in 1usize..14, seed in 0u64..1000, p in 1u32..6,
    ) {
        let freq: Vec<u64> = (0..n).map(|i| 1 + ((seed + i as u64) * 13 % 23)).collect();
        assert_tiled_matches(&OptimalBst::new(freq), GridDims::square(p));
    }

    #[test]
    fn quadrant_tiled_matches(
        n in 1u32..12, seed in 0u64..1000, pr in 1u32..5, pc in 1u32..5,
    ) {
        assert_tiled_matches(&Quadrant2D2D::new(n, seed), GridDims::new(pr, pc));
    }

    /// Edit distance is a metric: symmetric and obeying the triangle
    /// inequality on random strings.
    #[test]
    fn edit_distance_is_a_metric(seed in 0u64..500) {
        let a = random_sequence(Alphabet::Dna, 12, seed);
        let b = random_sequence(Alphabet::Dna, 14, seed + 1);
        let c = random_sequence(Alphabet::Dna, 10, seed + 2);
        let d = |x: &[u8], y: &[u8]| {
            let p = EditDistance::new(x.to_vec(), y.to_vec());
            let m = p.solve_sequential();
            p.distance(&m)
        };
        let (ab, ba, ac, cb) = (d(&a, &b), d(&b, &a), d(&a, &c), d(&c, &b));
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= ac + cb, "triangle inequality violated");
        prop_assert_eq!(d(&a, &a), 0);
    }

    /// LCS and edit distance are linked for unit costs:
    /// `d(a,b) <= |a| + |b| - 2*lcs(a,b)` (equality when substitutions are
    /// not cheaper than indel pairs, which is not the case here, so only
    /// the inequality holds).
    #[test]
    fn lcs_bounds_edit_distance(seed in 0u64..500) {
        let a = random_sequence(Alphabet::Dna, 15, seed);
        let b = random_sequence(Alphabet::Dna, 13, seed + 7);
        let lp = Lcs::new(a.clone(), b.clone());
        let lcs = lp.length(&lp.solve_sequential()) as usize;
        let ep = EditDistance::new(a.clone(), b.clone());
        let ed = ep.distance(&ep.solve_sequential()) as usize;
        prop_assert!(ed <= a.len() + b.len() - 2 * lcs);
        prop_assert!(ed >= a.len().abs_diff(b.len()));
    }

    /// SWGG with an affine penalty equals Gotoh for any random pair.
    #[test]
    fn swgg_equals_gotoh_on_affine(seed in 0u64..300) {
        let a = random_sequence(Alphabet::Dna, 18, seed);
        let b = random_sequence(Alphabet::Dna, 20, seed + 3);
        let general = SmithWatermanGeneralGap::new(
            a.clone(), b.clone(),
            Substitution::dna_default(),
            GapPenalty::Affine { open: 4, extend: 1 },
        );
        let affine = SmithWatermanAffine::dna(a, b);
        prop_assert_eq!(
            general.best_score(&general.solve_sequential()),
            affine.best_score(&affine.solve_sequential())
        );
    }

    /// Nussinov traceback always yields valid, nested pairs whose count is
    /// the matrix optimum.
    #[test]
    fn nussinov_traceback_is_consistent(len in 2usize..40, seed in 0u64..500) {
        let seq = random_sequence(Alphabet::Rna, len, seed);
        let p = Nussinov::new(seq.clone());
        let m = p.solve_sequential();
        let pairs = p.traceback(&m);
        prop_assert_eq!(pairs.len() as i32, p.max_pairs(&m));
        prop_assert!(pairs.len() <= len / 2);
        for &(i, j) in &pairs {
            prop_assert!(rna_pairs(seq[i as usize], seq[j as usize]));
            prop_assert!(j > i + 1);
        }
        // Nested (non-crossing).
        for &(i1, j1) in &pairs {
            for &(i2, j2) in &pairs {
                if i1 < i2 {
                    prop_assert!(i2 > j1 || j2 < j1);
                }
            }
        }
    }

    /// Region strip encode/decode round-trips for every cell type used by
    /// the algorithms.
    #[test]
    fn strip_roundtrip_generic(rows in 1u32..8, cols in 1u32..8, seed in 0u64..100) {
        fn check<C: Cell>(dims: GridDims, fill: impl Fn(u32, u32) -> C) {
            let mut m = DpMatrix::<C>::new(dims);
            for p in dims.iter() {
                m.set(p.row, p.col, fill(p.row, p.col));
            }
            let region = easyhps_core::TileRegion::new(0, dims.rows, 0, dims.cols);
            let bytes = m.encode_region(region);
            let mut m2 = DpMatrix::<C>::new(dims);
            m2.decode_region(region, &bytes);
            assert_eq!(m.as_slice(), m2.as_slice());
        }
        let dims = GridDims::new(rows, cols);
        check::<i32>(dims, |r, c| (r * 1000 + c) as i32 - seed as i32);
        check::<i64>(dims, |r, c| (r as i64) << 32 | c as i64);
        check::<u64>(dims, |r, c| (r as u64 * seed).wrapping_add(c as u64));
        check::<f64>(dims, |r, c| r as f64 * 1.5 - c as f64 / (seed as f64 + 1.0));
        check::<easyhps_dp::Gotoh>(dims, |r, c| easyhps_dp::Gotoh {
            h: r as i32,
            e: -(c as i32),
            f: (r * c) as i32,
        });
    }

    /// Bulk encode/decode of an arbitrary sub-region moves exactly that
    /// region and nothing else, for every scalar width.
    #[test]
    fn subregion_roundtrip_is_exact(
        rows in 2u32..12, cols in 2u32..12,
        r0f in 0.0f64..1.0, c0f in 0.0f64..1.0,
        rh in 1u32..12, cw in 1u32..12,
        seed in 0u64..100,
    ) {
        fn check<C: Cell>(
            dims: GridDims,
            region: easyhps_core::TileRegion,
            fill: impl Fn(u32, u32) -> C,
        ) {
            let mut src = DpMatrix::<C>::new(dims);
            for p in dims.iter() {
                src.set(p.row, p.col, fill(p.row, p.col));
            }
            let bytes = src.encode_region(region);
            assert_eq!(
                bytes.len(),
                region.rows() as usize * region.cols() as usize * C::WIRE_SIZE
            );
            let mut dst = DpMatrix::<C>::new(dims);
            dst.decode_region(region, &bytes);
            for p in dims.iter() {
                if region.contains(p) {
                    assert_eq!(dst.at(p), src.at(p), "inside {p}");
                } else {
                    assert_eq!(dst.at(p), C::default(), "outside {p} must be untouched");
                }
            }
        }
        let dims = GridDims::new(rows, cols);
        let r0 = ((rows - 1) as f64 * r0f) as u32;
        let c0 = ((cols - 1) as f64 * c0f) as u32;
        let region = easyhps_core::TileRegion::new(
            r0, (r0 + rh).min(rows), c0, (c0 + cw).min(cols),
        );
        check::<i32>(dims, region, |r, c| (r as i32) * 31 - c as i32 - seed as i32);
        check::<i64>(dims, region, |r, c| ((r as i64) << 40) ^ c as i64 ^ seed as i64);
        check::<u64>(dims, region, |r, c| (r as u64) * 1_000_003 + c as u64 + seed);
        check::<f64>(dims, region, |r, c| (r as f64).sin() + c as f64 * 0.25);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hirschberg's linear-space score equals the full-matrix
    /// Needleman-Wunsch score for any input pair.
    #[test]
    fn hirschberg_equals_needleman(la in 0usize..35, lb in 0usize..35, seed in 0u64..1000) {
        use easyhps_dp::{Hirschberg, NeedlemanWunsch};
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 9);
        let h = Hirschberg::dna();
        let nw = NeedlemanWunsch::dna(a.clone(), b.clone());
        prop_assert_eq!(h.score(&a, &b), nw.score(&nw.solve_sequential()) as i64);
        // And the reconstructed alignment replays to that score.
        let aln = h.align(&a, &b);
        prop_assert_eq!(aln.score as i64, h.score(&a, &b));
    }

    /// A sufficiently wide band always reproduces the exact edit distance.
    #[test]
    fn wide_band_is_exact(la in 1usize..30, lb in 1usize..30, seed in 0u64..1000) {
        use easyhps_dp::BandedEditDistance;
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 3);
        let full = {
            let p = EditDistance::new(a.clone(), b.clone());
            p.distance(&p.solve_sequential())
        };
        let p = BandedEditDistance::new(a, b, (la + lb) as u32);
        let m = p.solve_sequential();
        prop_assert!(p.is_exact(&m));
        prop_assert_eq!(p.distance(&m), full);
    }

    /// Any band yields an upper bound on the true distance, and exactness
    /// is correctly self-reported.
    #[test]
    fn banded_is_sound_upper_bound(
        la in 1usize..25, lb in 1usize..25, seed in 0u64..1000, band in 0u32..8,
    ) {
        use easyhps_dp::BandedEditDistance;
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 5);
        let full = {
            let p = EditDistance::new(a.clone(), b.clone());
            p.distance(&p.solve_sequential())
        };
        let p = BandedEditDistance::new(a, b, band);
        let m = p.solve_sequential();
        prop_assert!(p.distance(&m) >= full, "band cannot undercut the true distance");
        if p.is_exact(&m) {
            prop_assert_eq!(p.distance(&m), full);
        }
    }

    /// Knapsack DP equals brute force for any small instance.
    #[test]
    fn knapsack_equals_brute_force(
        weights in proptest::collection::vec(1u32..8, 1..10),
        seed in 0u64..1000,
        cap in 0u32..30,
    ) {
        use easyhps_dp::Knapsack;
        let items: Vec<(u32, u64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, (seed + i as u64) * 7 % 19 + 1))
            .collect();
        let p = Knapsack::new(&items, cap);
        let dp = p.best_value(&p.solve_sequential());
        let mut best = 0u64;
        for mask in 0u32..(1 << items.len()) {
            let (mut w, mut v) = (0u32, 0u64);
            for (i, &(wt, val)) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    w += wt;
                    v += val;
                }
            }
            if w <= cap {
                best = best.max(v);
            }
        }
        prop_assert_eq!(dp, best);
    }

    /// Viterbi on the tiled path equals the sequential trellis for random
    /// HMMs and observation sequences (full-row partitions).
    #[test]
    fn viterbi_tiled_matches(states in 2usize..8, t in 1usize..25, seed in 0u64..300, pp in 1u32..9) {
        use easyhps_dp::{Hmm, Viterbi};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let hmm = Hmm::random(states, 4, seed);
        let mut rng = StdRng::seed_from_u64(seed + 31);
        let obs: Vec<u32> = (0..t).map(|_| rng.random_range(0..4)).collect();
        let v = Viterbi::new(hmm, obs);
        let seq = v.solve_sequential();
        let model = DagDataDrivenModel::builder(v.pattern())
            .process_partition_size(GridDims::new(pp, states as u32))
            .build();
        let dag = model.master_dag();
        let mut m = DpMatrix::new(v.dims());
        DagParser::drain_sequential(&dag, |x| {
            v.compute_region(&mut m, model.tile_region(dag.vertex(x).pos));
        });
        prop_assert_eq!(m, seq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The longest palindromic subsequence is bounded by the LCS of the
    /// string with its reverse — in fact equal for unit alphabets, and the
    /// traceback is always a palindrome and a subsequence.
    #[test]
    fn palindrome_equals_lcs_with_reverse(len in 1usize..30, seed in 0u64..1000) {
        use easyhps_dp::LongestPalindrome;
        let s = random_sequence(Alphabet::Dna, len, seed);
        let p = LongestPalindrome::new(s.clone());
        let m = p.solve_sequential();
        let lps = p.length(&m);
        let rev: Vec<u8> = s.iter().rev().copied().collect();
        let lcs = {
            let l = Lcs::new(s.clone(), rev);
            l.length(&l.solve_sequential())
        };
        prop_assert_eq!(lps, lcs, "LPS(s) == LCS(s, reverse(s))");
        let pal = p.traceback(&m);
        prop_assert_eq!(pal.len() as i32, lps);
        let r: Vec<u8> = pal.iter().rev().copied().collect();
        prop_assert_eq!(&pal, &r, "traceback must be a palindrome");
    }

    /// Semi-global mapping of an exact substring always finds it with a
    /// perfect score, wherever it sits in the reference.
    #[test]
    fn semi_global_finds_planted_substring(
        ref_len in 20usize..60,
        start_frac in 0.0f64..1.0,
        q_len in 5usize..15,
        seed in 0u64..1000,
    ) {
        use easyhps_dp::SemiGlobal;
        let reference = random_sequence(Alphabet::Dna, ref_len, seed);
        let q_len = q_len.min(ref_len);
        let start = ((ref_len - q_len) as f64 * start_frac) as usize;
        let query = reference[start..start + q_len].to_vec();
        let p = SemiGlobal::dna(query.clone(), reference);
        let m = p.solve_sequential();
        let (score, _) = p.best(&m);
        prop_assert_eq!(score, 2 * q_len as i32, "an exact substring maps perfectly");
        let aln = p.traceback(&m);
        prop_assert_eq!(aln.score, score);
        prop_assert_eq!(aln.identity(), 1.0);
    }
}

/// Fill a matrix cell-at-a-time from a recurrence written directly against
/// `get` — the bit-exact reference the slice-sweep kernels must reproduce.
fn per_cell_reference(
    dims: GridDims,
    f: impl Fn(&DpMatrix<i32>, u32, u32) -> i32,
) -> DpMatrix<i32> {
    let mut m = DpMatrix::new(dims);
    for i in 0..dims.rows {
        for j in 0..dims.cols {
            let v = f(&m, i, j);
            m.set(i, j, v);
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Needleman-Wunsch slice-sweep kernel is bit-identical to the
    /// textbook per-cell recurrence, both full-grid and under arbitrary
    /// tilings.
    #[test]
    fn needleman_slice_kernel_matches_reference(
        la in 1usize..28, lb in 1usize..28, seed in 0u64..500,
        pr in 1u32..8, pc in 1u32..8,
    ) {
        use easyhps_dp::NeedlemanWunsch;
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        let sub = Substitution::dna_default();
        let gap = 2i32;
        let p = NeedlemanWunsch::new(a.clone(), b.clone(), sub.clone(), gap);
        let reference = per_cell_reference(p.dims(), |m, i, j| {
            if i == 0 {
                return -(j as i32) * gap;
            }
            if j == 0 {
                return -(i as i32) * gap;
            }
            let s = sub.score(a[i as usize - 1], b[j as usize - 1]);
            (m.get(i - 1, j - 1) + s)
                .max(m.get(i - 1, j) - gap)
                .max(m.get(i, j - 1) - gap)
        });
        prop_assert_eq!(&p.solve_sequential(), &reference);
        assert_tiled_matches(&p, GridDims::new(pr, pc));
    }

    /// Same for the LCS kernel.
    #[test]
    fn lcs_slice_kernel_matches_reference(
        la in 1usize..28, lb in 1usize..28, seed in 0u64..500,
        pr in 1u32..8, pc in 1u32..8,
    ) {
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        let p = Lcs::new(a.clone(), b.clone());
        let reference = per_cell_reference(p.dims(), |m, i, j| {
            if i == 0 || j == 0 {
                0
            } else if a[i as usize - 1] == b[j as usize - 1] {
                m.get(i - 1, j - 1) + 1
            } else {
                m.get(i - 1, j).max(m.get(i, j - 1))
            }
        });
        prop_assert_eq!(&p.solve_sequential(), &reference);
        assert_tiled_matches(&p, GridDims::new(pr, pc));
    }

    /// The bit-parallel Myers kernel is bit-identical to the textbook
    /// per-cell recurrence, full-grid and under tile shapes straddling
    /// every u64-word boundary case: single cells, sub-word strips, and
    /// stripes crossing 64 rows.
    #[test]
    fn edit_myers_kernel_matches_reference(
        la in 1usize..80, lb in 1usize..80, seed in 0u64..500,
        pri in 0usize..10, pci in 0usize..10,
    ) {
        // Deliberately awkward tile sides around the word/lane sizes.
        const SIDES: [u32; 10] = [1, 2, 3, 5, 7, 8, 13, 63, 64, 65];
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        let p = EditDistance::new(a.clone(), b.clone());
        let reference = per_cell_reference(p.dims(), |m, i, j| {
            if i == 0 {
                return j as i32;
            }
            if j == 0 {
                return i as i32;
            }
            let sub = (a[i as usize - 1] != b[j as usize - 1]) as i32;
            (m.get(i - 1, j) + 1)
                .min(m.get(i, j - 1) + 1)
                .min(m.get(i - 1, j - 1) + sub)
        });
        prop_assert_eq!(&p.solve_sequential(), &reference);
        assert_tiled_matches(&p, GridDims::new(SIDES[pri], SIDES[pci]));
    }

    /// The NW anti-diagonal kernel under *arbitrary* simple scoring —
    /// not just the DNA defaults — including tiles smaller than one
    /// SIMD lane.
    #[test]
    fn needleman_random_scoring_matches_reference(
        la in 1usize..30, lb in 1usize..30, seed in 0u64..500,
        ms in 0i32..5, mm in -4i32..2, gap in 0i32..4,
        pr in 1u32..10, pc in 1u32..10,
    ) {
        use easyhps_dp::NeedlemanWunsch;
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        let sub = Substitution::Simple { match_score: ms, mismatch: mm };
        let p = NeedlemanWunsch::new(a.clone(), b.clone(), sub.clone(), gap);
        let reference = per_cell_reference(p.dims(), |m, i, j| {
            if i == 0 {
                return -(j as i32) * gap;
            }
            if j == 0 {
                return -(i as i32) * gap;
            }
            let s = sub.score(a[i as usize - 1], b[j as usize - 1]);
            (m.get(i - 1, j - 1) + s)
                .max(m.get(i - 1, j) - gap)
                .max(m.get(i, j - 1) - gap)
        });
        prop_assert_eq!(&p.solve_sequential(), &reference);
        assert_tiled_matches(&p, GridDims::new(pr, pc));
    }

    /// Table substitution takes the scalar dispatch path; it must agree
    /// with the reference too, under tiling.
    #[test]
    fn needleman_table_scoring_matches_reference(
        la in 1usize..25, lb in 1usize..25, seed in 0u64..500,
        pr in 1u32..8, pc in 1u32..8,
    ) {
        use easyhps_dp::NeedlemanWunsch;
        use std::sync::Arc;
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        let table: Arc<[i32]> = (0..256usize * 256)
            .map(|k| ((k / 256) as i32 * 31 + (k % 256) as i32 * 7) % 7 - 3)
            .collect();
        let sub = Substitution::Table { size: 256, table };
        let gap = 2i32;
        let p = NeedlemanWunsch::new(a.clone(), b.clone(), sub.clone(), gap);
        let reference = per_cell_reference(p.dims(), |m, i, j| {
            if i == 0 {
                return -(j as i32) * gap;
            }
            if j == 0 {
                return -(i as i32) * gap;
            }
            let s = sub.score(a[i as usize - 1], b[j as usize - 1]);
            (m.get(i - 1, j - 1) + s)
                .max(m.get(i - 1, j) - gap)
                .max(m.get(i, j - 1) - gap)
        });
        prop_assert_eq!(&p.solve_sequential(), &reference);
        assert_tiled_matches(&p, GridDims::new(pr, pc));
    }

    /// The cache-oblivious Nussinov recursion equals the iterative kernel
    /// for any base-case threshold, including degenerate bases far below
    /// the production constant.
    #[test]
    fn nussinov_recursive_any_base_matches_iterative(
        len in 2usize..70, seed in 0u64..500, base in 1u32..48,
    ) {
        let seq = random_sequence(Alphabet::Rna, len, seed);
        let p = Nussinov::new(seq);
        let n = p.dims().rows;
        let full = easyhps_core::TileRegion::new(0, n, 0, n);
        let mut iter = DpMatrix::new(p.dims());
        p.compute_region_iterative(&mut iter, full);
        let mut rec = DpMatrix::new(p.dims());
        p.compute_region_recursive(&mut rec, full, base);
        prop_assert_eq!(rec, iter);
    }

    /// Same for the SWGG kernel with its row/column prefix scans — the one
    /// the rowbuf/column-buffer rewrite must not perturb.
    #[test]
    fn swgg_slice_kernel_matches_reference(
        la in 1usize..18, lb in 1usize..18, seed in 0u64..500,
        pr in 1u32..6, pc in 1u32..6,
    ) {
        let a = random_sequence(Alphabet::Dna, la, seed);
        let b = random_sequence(Alphabet::Dna, lb, seed + 1);
        let sub = Substitution::dna_default();
        let gap = GapPenalty::Logarithmic { a: 4, b: 2 };
        let p = SmithWatermanGeneralGap::new(a.clone(), b.clone(), sub.clone(), gap.clone());
        let reference = per_cell_reference(p.dims(), |m, i, j| {
            if i == 0 || j == 0 {
                return 0;
            }
            let s = sub.score(a[i as usize - 1], b[j as usize - 1]);
            let mut best = 0.max(m.get(i - 1, j - 1) + s);
            for k in 1..=j {
                best = best.max(m.get(i, j - k) - gap.cost(k));
            }
            for k in 1..=i {
                best = best.max(m.get(i - k, j) - gap.cost(k));
            }
            best
        });
        prop_assert_eq!(&p.solve_sequential(), &reference);
        assert_tiled_matches(&p, GridDims::new(pr, pc));
    }
}
