//! # easyhps-serve — DP-as-a-service
//!
//! A long-lived daemon that owns a persistent slave fleet
//! ([`easyhps_runtime::Fleet`]) and serves DP jobs to many clients and
//! tenants:
//!
//! * **Admission control** — a bounded job queue; submissions past it
//!   are rejected with the limit and the way out spelled out.
//! * **Weighted-fair scheduling** — queued jobs are dispatched by
//!   per-tenant virtual time, so a flood from one tenant cannot starve
//!   another.
//! * **Content-addressed caching & coalescing** — jobs are keyed by
//!   what they compute; a repeat submission is answered from cache, and
//!   a duplicate of a queued or *running* job attaches to it instead of
//!   computing twice.
//! * **Batching** — jobs below a cell threshold are gathered into one
//!   round of sequential solves instead of fleet dispatches.
//! * **Durability** — accepted jobs are persisted before they are
//!   acknowledged, results before they are reported, and fleet jobs
//!   checkpoint to per-job directories: `kill -9` loses no accepted
//!   job, and a restarted daemon completes them bit-identically.
//!
//! The client protocol (submit / status / stats / cancel) is CRC-sealed
//! per message ([`easyhps_net::rpc`]); see [`protocol`] for the
//! messages and DESIGN.md §15 for the full architecture.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod protocol;
pub mod state;
mod stream;

pub use cache::{job_key, key_hex, CacheEntry, ResultCache};
pub use client::Client;
pub use daemon::{Daemon, FleetSpec, ServeConfig};
pub use protocol::{Admission, JobResult, JobState, Request, Response, SubmitReq};
pub use state::{JobStore, PersistedJob, PersistedResult};
