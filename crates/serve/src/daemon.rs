//! The serve daemon: a long-lived process owning a persistent slave
//! fleet, accepting DP jobs from many clients and tenants.
//!
//! Request path (all under one mutex — decisions are cheap next to the
//! jobs themselves):
//!
//! 1. **Cache** — the job's content key ([`crate::cache::job_key`]) hits
//!    the result cache: answer immediately, no queue slot.
//! 2. **Coalesce** — an identical job is already queued *or running*:
//!    attach this submission as a follower of that leader. Followers
//!    consume no queue slot and are completed by the leader's single
//!    computation.
//! 3. **Admission** — the bounded queue is full: reject, naming the
//!    limit and the way out. Otherwise persist the spec (acceptance *is*
//!    the durable write), enqueue, and wake the scheduler.
//!
//! The scheduler picks queued leaders by **weighted fair queuing** over
//! tenant keys: each tenant has a virtual time advanced by
//! `cells / weight` per dispatched job; the queued job whose tenant has
//! the smallest virtual time runs next, so a tenant spraying jobs cannot
//! starve one submitting occasionally. Jobs at or below
//! `batch_max_cells` are gathered — in the same fairness order — into
//! one **batch round** of sequential solves (tiny DP matrices are
//! cheaper to solve than to partition); larger jobs run on the fleet
//! with a per-job metrics registry and a per-job durable checkpoint
//! directory, so a `kill -9` mid-job resumes from the last flushed tile
//! segment rather than from scratch.
//!
//! Crash recovery replays the state directory on startup: jobs with a
//! persisted result re-enter the cache; accepted-but-unfinished jobs are
//! re-admitted in id order (re-coalescing duplicates onto the earliest
//! copy) bypassing the queue bound — accepted jobs must complete.

use crate::cache::{job_key, CacheEntry, ResultCache};
use crate::protocol::{Admission, JobResult, JobState, Request, Response, SubmitReq};
use crate::state::JobStore;
use crate::stream::{ClientListener, ClientStream, StreamShutdown};
use easyhps_net::rpc;
use easyhps_net::socket::{SocketConfig, SocketListener};
use easyhps_net::NetAddr;
use easyhps_obs::{labeled, MetricValue, Registry, Snapshot};
use easyhps_runtime::remote::JobSpec;
use easyhps_runtime::{
    Checkpoint, CheckpointPolicy, Fleet, FleetControl, JobOptions, ObsConfig, RuntimeError,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where the daemon's compute comes from.
#[derive(Debug)]
pub enum FleetSpec {
    /// In-process slave threads (the default).
    Local {
        /// Number of slave workers.
        slaves: usize,
        /// Override each job's `threads_per_slave` when set.
        threads: Option<usize>,
    },
    /// Real slave processes connecting over sockets.
    Remote {
        /// Address to listen for slaves on.
        listen: NetAddr,
        /// How many slaves to wait for.
        slaves: usize,
        /// Socket knobs (accept timeout etc.).
        socket: SocketConfig,
    },
}

/// Daemon configuration. `new` fills every knob with a usable default;
/// the CLI maps flags onto the public fields.
#[derive(Debug)]
pub struct ServeConfig {
    /// Client-protocol listen address.
    pub listen: NetAddr,
    /// Compute fleet.
    pub fleet: FleetSpec,
    /// State directory for durable specs/results/checkpoints. `None`
    /// disables durability (accepted jobs die with the process).
    pub state_dir: Option<PathBuf>,
    /// Bounded queue depth; submissions past it are rejected.
    pub queue_cap: usize,
    /// Result-cache budget in cell bytes.
    pub cache_bytes: usize,
    /// Jobs at or below this many matrix cells are batched into
    /// sequential-solve rounds instead of fleet dispatches. 0 disables
    /// batching (everything goes to the fleet).
    pub batch_max_cells: u64,
    /// Maximum jobs gathered into one batch round.
    pub batch_max_jobs: usize,
    /// Durable checkpoint cadence (tiles) for fleet jobs; 0 keeps the
    /// policy default.
    pub checkpoint_every: u64,
    /// Also republish each fleet job's metrics under
    /// `job="..."`/`tenant="..."` labels. Off by default: label
    /// cardinality grows with job count.
    pub per_job_metrics: bool,
    /// Tenant weights for fair scheduling (unlisted tenants weigh 1).
    pub tenant_weights: Vec<(String, u64)>,
}

impl ServeConfig {
    /// Defaults: 2 local slaves, queue of 64, 64 MiB cache, batch
    /// threshold 16384 cells, 8 jobs per batch round.
    pub fn new(listen: NetAddr) -> ServeConfig {
        ServeConfig {
            listen,
            fleet: FleetSpec::Local {
                slaves: 2,
                threads: None,
            },
            state_dir: None,
            queue_cap: 64,
            cache_bytes: 64 << 20,
            batch_max_cells: 16_384,
            batch_max_jobs: 8,
            checkpoint_every: 0,
            per_job_metrics: false,
            tenant_weights: Vec::new(),
        }
    }
}

/// Internal job lifecycle.
#[derive(Debug)]
enum St {
    Queued,
    Running,
    Done(JobResult),
    Failed(String),
    Cancelled,
}

struct Job {
    tenant: String,
    key: u128,
    spec: JobSpec,
    cells: u64,
    st: St,
    /// Set on coalesced followers: the job doing the computing.
    leader: Option<u64>,
    /// Set on leaders: submissions waiting on this computation.
    followers: Vec<u64>,
    /// `wait = true` connections blocked on this job's terminal state.
    waiters: Vec<mpsc::Sender<Response>>,
}

struct Core {
    jobs: BTreeMap<u64, Job>,
    /// Leaders awaiting dispatch, arrival order. Fair pick scans it.
    queue: VecDeque<u64>,
    /// Content key -> leader id, for every queued or running leader.
    inflight: HashMap<u128, u64>,
    /// Weighted-fair virtual time per tenant.
    vtime: HashMap<String, u64>,
    cache: ResultCache,
    next_id: u64,
}

struct Inner {
    registry: Arc<Registry>,
    store: Option<JobStore>,
    weights: HashMap<String, u64>,
    queue_cap: usize,
    batch_max_cells: u64,
    batch_max_jobs: usize,
    checkpoint_every: u64,
    per_job_metrics: bool,
    core: Mutex<Core>,
    work: Condvar,
    shutdown: AtomicBool,
    /// The fleet's control surface, published by the scheduler once the
    /// fleet is up. Drain RPCs push requests through it; the next (or
    /// running) job's master honours them.
    fleet_control: Mutex<Option<FleetControl>>,
    /// Shutdown handles of live client connections: a graceful stop
    /// closes them so handler threads parked in a read exit instead of
    /// keeping pre-restart connections (and answers) alive.
    clients: Mutex<Vec<Arc<StreamShutdown>>>,
}

/// One unit of work handed from the queue to an execution round.
struct Dispatch {
    id: u64,
    tenant: String,
    spec: JobSpec,
    cells: u64,
}

impl Inner {
    fn weight(&self, tenant: &str) -> u64 {
        self.weights.get(tenant).copied().unwrap_or(1).max(1)
    }

    fn gauges(&self, core: &Core) {
        self.registry
            .gauge("serve_queue_depth")
            .set(core.queue.len() as i64);
        self.registry
            .gauge("serve_cache_entries")
            .set(core.cache.entries() as i64);
        self.registry
            .gauge("serve_cache_bytes")
            .set(core.cache.bytes() as i64);
    }

    /// Join a tenant's virtual time to the current floor so a returning
    /// tenant does not replay its idle period as priority.
    fn join_vtime(&self, core: &mut Core, tenant: &str) {
        let floor = core.vtime.values().copied().min().unwrap_or(0);
        core.vtime
            .entry(tenant.to_string())
            .and_modify(|v| *v = (*v).max(floor))
            .or_insert(floor);
    }

    // -- submission -------------------------------------------------

    /// Admit one submission. Returns the immediate responses plus, for
    /// `wait` submissions still in flight, the receiver for the
    /// terminal response.
    fn submit(&self, req: SubmitReq) -> (Vec<Response>, Option<mpsc::Receiver<Response>>) {
        let SubmitReq { tenant, wait, spec } = req;
        self.registry.counter("serve_jobs_submitted").inc();
        if self.shutdown.load(Ordering::SeqCst) {
            self.registry.counter("serve_jobs_rejected").inc();
            return (
                vec![Response::Rejected {
                    reason: "daemon is shutting down".into(),
                }],
                None,
            );
        }
        let key = job_key(&spec.problem);
        let cells = spec.problem.cells();
        let mut core = self.core.lock().unwrap();

        // 1. Content-addressed cache.
        if let Some(hit) = core.cache.get(key) {
            self.registry.counter("serve_cache_hits").inc();
            self.registry.counter("serve_jobs_accepted").inc();
            let result = JobResult {
                rows: hit.rows,
                cols: hit.cols,
                crc: hit.crc,
            };
            let id = core.next_id;
            core.next_id += 1;
            core.jobs.insert(
                id,
                Job {
                    tenant: tenant.clone(),
                    key,
                    spec,
                    cells,
                    st: St::Done(result),
                    leader: None,
                    followers: Vec::new(),
                    waiters: Vec::new(),
                },
            );
            self.tenant_counters(&tenant);
            return (
                vec![
                    Response::Accepted {
                        job: id,
                        admission: Admission::CacheHit,
                    },
                    Response::Done {
                        job: id,
                        result,
                        cached: true,
                    },
                ],
                None,
            );
        }

        // 2. In-flight coalescing (queued or running leader).
        if let Some(&leader) = core.inflight.get(&key) {
            let id = core.next_id;
            core.next_id += 1;
            if let Some(store) = &self.store {
                if let Err(e) = store.persist_spec(id, &tenant, &spec) {
                    self.registry.counter("serve_jobs_rejected").inc();
                    return (
                        vec![Response::Rejected {
                            reason: format!("cannot persist job to state dir: {e}"),
                        }],
                        None,
                    );
                }
            }
            let running = matches!(core.jobs.get(&leader).map(|j| &j.st), Some(St::Running));
            let mut job = Job {
                tenant: tenant.clone(),
                key,
                spec,
                cells,
                st: if running { St::Running } else { St::Queued },
                leader: Some(leader),
                followers: Vec::new(),
                waiters: Vec::new(),
            };
            let rx = wait.then(|| {
                let (tx, rx) = mpsc::channel();
                job.waiters.push(tx);
                rx
            });
            core.jobs.insert(id, job);
            core.jobs
                .get_mut(&leader)
                .expect("inflight leader exists")
                .followers
                .push(id);
            self.registry.counter("serve_jobs_accepted").inc();
            self.registry.counter("serve_jobs_coalesced").inc();
            self.tenant_counters(&tenant);
            return (
                vec![Response::Accepted {
                    job: id,
                    admission: Admission::Coalesced,
                }],
                rx,
            );
        }

        // 3. Admission control on the bounded queue.
        if core.queue.len() >= self.queue_cap {
            self.registry.counter("serve_jobs_rejected").inc();
            return (
                vec![Response::Rejected {
                    reason: format!(
                        "queue full: {} jobs waiting (capacity {}); retry later or \
                         restart the daemon with a larger --queue",
                        core.queue.len(),
                        self.queue_cap
                    ),
                }],
                None,
            );
        }

        // Accept: the durable write precedes the acknowledgement.
        let id = core.next_id;
        core.next_id += 1;
        if let Some(store) = &self.store {
            if let Err(e) = store.persist_spec(id, &tenant, &spec) {
                self.registry.counter("serve_jobs_rejected").inc();
                return (
                    vec![Response::Rejected {
                        reason: format!("cannot persist job to state dir: {e}"),
                    }],
                    None,
                );
            }
        }
        let mut job = Job {
            tenant: tenant.clone(),
            key,
            spec,
            cells,
            st: St::Queued,
            leader: None,
            followers: Vec::new(),
            waiters: Vec::new(),
        };
        let rx = wait.then(|| {
            let (tx, rx) = mpsc::channel();
            job.waiters.push(tx);
            rx
        });
        core.jobs.insert(id, job);
        core.queue.push_back(id);
        core.inflight.insert(key, id);
        self.join_vtime(&mut core, &tenant);
        self.registry.counter("serve_jobs_accepted").inc();
        self.tenant_counters(&tenant);
        self.gauges(&core);
        self.work.notify_all();
        (
            vec![Response::Accepted {
                job: id,
                admission: Admission::New,
            }],
            rx,
        )
    }

    fn tenant_counters(&self, tenant: &str) {
        self.registry
            .counter(&labeled("serve_tenant_jobs", &[("tenant", tenant)]))
            .inc();
    }

    // -- scheduling --------------------------------------------------

    /// Index into the queue of the fair-share pick: the job whose tenant
    /// has the smallest virtual time (FIFO within a tenant).
    fn pick_pos(&self, core: &Core, only_small: bool) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (pos, id) in core.queue.iter().enumerate() {
            let job = &core.jobs[id];
            if only_small && job.cells > self.batch_max_cells {
                continue;
            }
            let v = core.vtime.get(&job.tenant).copied().unwrap_or(0);
            if best.is_none_or(|(bv, _)| v < bv) {
                best = Some((v, pos));
            }
        }
        best.map(|(_, pos)| pos)
    }

    /// Remove the queue entry at `pos`, charge its tenant's virtual
    /// time, mark it (and its followers) running.
    fn dispatch_at(&self, core: &mut Core, pos: usize) -> Dispatch {
        let id = core.queue.remove(pos).expect("pos in range");
        let (tenant, cells, spec, followers) = {
            let job = core.jobs.get_mut(&id).expect("queued job exists");
            job.st = St::Running;
            (
                job.tenant.clone(),
                job.cells,
                job.spec.clone(),
                job.followers.clone(),
            )
        };
        for f in followers {
            if let Some(j) = core.jobs.get_mut(&f) {
                j.st = St::Running;
            }
        }
        let charge = (cells / self.weight(&tenant)).max(1);
        *core.vtime.entry(tenant.clone()).or_insert(0) += charge;
        Dispatch {
            id,
            tenant,
            spec,
            cells,
        }
    }

    /// Block until work or shutdown. Returns one round: either a single
    /// fleet job or a batch of small jobs.
    fn next_round(&self) -> Option<Vec<Dispatch>> {
        let mut core: MutexGuard<'_, Core> = self.core.lock().unwrap();
        let head = loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(pos) = self.pick_pos(&core, false) {
                break pos;
            }
            core = self
                .work
                .wait_timeout(core, Duration::from_millis(200))
                .unwrap()
                .0;
        };
        let first = self.dispatch_at(&mut core, head);
        let mut round = vec![first];
        if round[0].cells <= self.batch_max_cells {
            while round.len() < self.batch_max_jobs {
                match self.pick_pos(&core, true) {
                    Some(pos) => round.push(self.dispatch_at(&mut core, pos)),
                    None => break,
                }
            }
        }
        self.gauges(&core);
        Some(round)
    }

    // -- completion --------------------------------------------------

    /// Terminal transition shared by success and failure. Resolves the
    /// leader and every follower, releases the in-flight slot, feeds the
    /// cache, and answers blocked `wait` connections.
    fn finish(&self, id: u64, outcome: Result<CacheEntry, String>) {
        if let (Ok(entry), Some(store)) = (&outcome, &self.store) {
            // Durable before visible: a result we answered with must
            // survive a crash, or a restart would recompute and could
            // in principle disagree with what a client already saw.
            if let Err(e) =
                store.persist_result(id, entry.rows, entry.cols, entry.crc, &entry.cells)
            {
                eprintln!("serve: persisting result of job {id}: {e}");
            }
        }
        let mut core = self.core.lock().unwrap();
        let (key, followers) = match core.jobs.get(&id) {
            Some(j) => (j.key, j.followers.clone()),
            None => return,
        };
        if core.inflight.get(&key) == Some(&id) {
            core.inflight.remove(&key);
        }
        let resolve = |core: &mut Core, jid: u64| {
            let job = match core.jobs.get_mut(&jid) {
                Some(j) => j,
                None => return,
            };
            let resp = match &outcome {
                Ok(entry) => {
                    let result = JobResult {
                        rows: entry.rows,
                        cols: entry.cols,
                        crc: entry.crc,
                    };
                    job.st = St::Done(result);
                    self.registry.counter("serve_jobs_completed").inc();
                    Response::Done {
                        job: jid,
                        result,
                        cached: jid != id,
                    }
                }
                Err(msg) => {
                    job.st = St::Failed(msg.clone());
                    self.registry.counter("serve_jobs_failed").inc();
                    Response::Error {
                        message: format!("job {jid} failed: {msg}"),
                    }
                }
            };
            for w in job.waiters.drain(..) {
                let _ = w.send(resp.clone());
            }
        };
        resolve(&mut core, id);
        for f in followers {
            resolve(&mut core, f);
        }
        if let Ok(entry) = outcome {
            self.registry
                .counter("serve_cells_computed")
                .add(core.jobs.get(&id).map_or(0, |j| j.cells));
            let key = core.jobs[&id].key;
            core.cache.insert(key, entry);
        }
        self.gauges(&core);
    }

    /// Fold a finished fleet job's registry into the daemon's. Entries
    /// are republished under `job`/`tenant` labels when enabled;
    /// unlabelled master/slave counters also aggregate into the fleet-
    /// wide totals. Socket link counters (`link_*`) are skipped: they
    /// are cumulative per connection, and re-adding them every job
    /// would double-count.
    fn republish(&self, id: u64, tenant: &str, snap: &Snapshot) {
        let job_label = id.to_string();
        for (name, value) in &snap.entries {
            if name.starts_with("link_") {
                continue;
            }
            match value {
                MetricValue::Counter(v) if *v > 0 => {
                    if !name.contains('{') {
                        self.registry.counter(name).add(*v);
                    }
                    if self.per_job_metrics {
                        self.registry
                            .counter(&with_labels(name, &job_label, tenant))
                            .add(*v);
                    }
                }
                MetricValue::Gauge(v) if self.per_job_metrics => {
                    self.registry
                        .gauge(&with_labels(name, &job_label, tenant))
                        .set(*v);
                }
                _ => {}
            }
        }
    }

    // -- status / cancel --------------------------------------------

    fn status(&self, id: u64) -> JobState {
        let core = self.core.lock().unwrap();
        let Some(job) = core.jobs.get(&id) else {
            return JobState::Unknown;
        };
        match &job.st {
            St::Queued => {
                let anchor = job.leader.unwrap_or(id);
                let position = core.queue.iter().position(|&q| q == anchor).unwrap_or(0) as u32;
                JobState::Queued { position }
            }
            St::Running => JobState::Running,
            St::Done(r) => JobState::Done(*r),
            St::Failed(e) => JobState::Failed { error: e.clone() },
            St::Cancelled => JobState::Cancelled,
        }
    }

    fn cancel(&self, id: u64) -> bool {
        let mut core = self.core.lock().unwrap();
        let Some(job) = core.jobs.get(&id) else {
            return false;
        };
        if !matches!(job.st, St::Queued) {
            // Running work is not preempted; terminal states are final.
            return false;
        }
        let key = job.key;
        let leader = job.leader;
        match leader {
            // A follower: detach from its leader and resolve.
            Some(l) => {
                if let Some(lj) = core.jobs.get_mut(&l) {
                    lj.followers.retain(|&f| f != id);
                }
            }
            // A queued leader: remove from the queue and promote the
            // first follower to leader so coalesced submissions still
            // complete.
            None => {
                let pos = core.queue.iter().position(|&q| q == id);
                let followers = core
                    .jobs
                    .get_mut(&id)
                    .map(|j| std::mem::take(&mut j.followers))
                    .unwrap_or_default();
                match followers.split_first() {
                    Some((&heir, rest)) => {
                        if let Some(p) = pos {
                            core.queue[p] = heir;
                        } else {
                            core.queue.push_back(heir);
                        }
                        core.inflight.insert(key, heir);
                        if let Some(h) = core.jobs.get_mut(&heir) {
                            h.leader = None;
                            h.followers = rest.to_vec();
                        }
                        for &r in rest {
                            if let Some(j) = core.jobs.get_mut(&r) {
                                j.leader = Some(heir);
                            }
                        }
                    }
                    None => {
                        if let Some(p) = pos {
                            core.queue.remove(p);
                        }
                        if core.inflight.get(&key) == Some(&id) {
                            core.inflight.remove(&key);
                        }
                    }
                }
            }
        }
        let job = core.jobs.get_mut(&id).expect("checked above");
        job.st = St::Cancelled;
        let notice = Response::Error {
            message: format!("job {id} cancelled"),
        };
        for w in job.waiters.drain(..) {
            let _ = w.send(notice.clone());
        }
        self.registry.counter("serve_jobs_cancelled").inc();
        if let Some(store) = &self.store {
            let _ = store.remove(id);
        }
        self.gauges(&core);
        true
    }

    // -- crash recovery ---------------------------------------------

    /// Replay the state directory into the core. Called once, before
    /// any client is accepted.
    fn recover(&self) -> io::Result<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        let persisted = store.scan()?;
        let mut core = self.core.lock().unwrap();
        for p in persisted {
            core.next_id = core.next_id.max(p.id + 1);
            let key = job_key(&p.spec.problem);
            let cells = p.spec.problem.cells();
            let mut job = Job {
                tenant: p.tenant.clone(),
                key,
                spec: p.spec,
                cells,
                st: St::Queued,
                leader: None,
                followers: Vec::new(),
                waiters: Vec::new(),
            };
            match p.result {
                // Finished before the crash: warm the cache, keep the
                // terminal state queryable.
                Some(r) => {
                    let entry = CacheEntry {
                        rows: r.rows,
                        cols: r.cols,
                        crc: r.crc,
                        cells: r.cells.into(),
                    };
                    job.st = St::Done(JobResult {
                        rows: entry.rows,
                        cols: entry.cols,
                        crc: entry.crc,
                    });
                    core.cache.insert(key, entry);
                    core.jobs.insert(p.id, job);
                }
                // Accepted but unfinished: re-admit, bypassing the
                // queue bound (it was already accepted), re-coalescing
                // onto the earliest identical job. A leader that died
                // after its twin persisted a result completes straight
                // from the recovered cache.
                None => {
                    self.registry.counter("serve_jobs_recovered").inc();
                    if let Some(hit) = core.cache.get(key) {
                        job.st = St::Done(JobResult {
                            rows: hit.rows,
                            cols: hit.cols,
                            crc: hit.crc,
                        });
                        self.registry.counter("serve_cache_hits").inc();
                        core.jobs.insert(p.id, job);
                    } else if let Some(&leader) = core.inflight.get(&key) {
                        job.leader = Some(leader);
                        core.jobs.insert(p.id, job);
                        core.jobs
                            .get_mut(&leader)
                            .expect("inflight leader exists")
                            .followers
                            .push(p.id);
                        self.registry.counter("serve_jobs_coalesced").inc();
                    } else {
                        self.join_vtime(&mut core, &job.tenant);
                        core.jobs.insert(p.id, job);
                        core.queue.push_back(p.id);
                        core.inflight.insert(key, p.id);
                    }
                }
            }
        }
        self.gauges(&core);
        Ok(())
    }
}

/// `name` -> `name{job="..",tenant=".."}`, merging with existing labels.
fn with_labels(name: &str, job: &str, tenant: &str) -> String {
    match name.strip_suffix('}') {
        Some(open) => format!("{open},job=\"{job}\",tenant=\"{tenant}\"}}"),
        None => labeled(name, &[("job", job), ("tenant", tenant)]),
    }
}

/// Row-major little-endian cell bytes — the `DpMatrix::encode_region`
/// layout over the full matrix, which is also what `easyhps master`
/// digests as `matrix-crc:`.
fn encode_cells(m: &easyhps_dp::DpMatrix<i32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(m.as_slice().len() * 4);
    for c in m.as_slice() {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

enum FleetSrc {
    Local {
        slaves: usize,
        threads: Option<usize>,
    },
    Remote {
        listener: SocketListener,
        slaves: usize,
    },
}

/// Scheduler: owns the fleet, drains the queue round by round.
fn scheduler(inner: Arc<Inner>, src: FleetSrc) {
    // Rebuild parameters for a local fleet that a failed job may have
    // left with wedged slaves; a remote fleet cannot be rebuilt from
    // here (its slaves are other processes) and keeps limping.
    let mut rebuild = None;
    let mut fleet = match src {
        FleetSrc::Local { slaves, threads } => {
            rebuild = Some((slaves, threads));
            Fleet::local(slaves, threads)
                .map_err(|e| eprintln!("serve: starting local fleet: {e}"))
                .ok()
        }
        // Remote fleets are *elastic*: the slave listener stays open, so
        // new slaves can join between (or during) jobs, severed links
        // heal under a bumped epoch, and drained ranks free their slot.
        FleetSrc::Remote { listener, slaves } => Fleet::accept_elastic(listener, slaves)
            .map_err(|e| eprintln!("serve: accepting slave fleet: {e}"))
            .ok(),
    };
    *inner.fleet_control.lock().unwrap() = fleet.as_ref().map(|f| f.control().clone());
    while let Some(round) = inner.next_round() {
        // next_round only groups jobs at or below the batch threshold,
        // so a multi-job round is always a batch; a single job batches
        // iff it is small.
        if round.len() > 1 || round[0].cells <= inner.batch_max_cells {
            run_batch_round(&inner, round);
            continue;
        }
        let d = round.into_iter().next().expect("round is non-empty");
        match run_fleet_job(&inner, fleet.as_mut(), &d) {
            Ok(entry) => inner.finish(d.id, Ok(entry)),
            Err(e) => {
                inner.finish(d.id, Err(e.to_string()));
                if let Some((slaves, threads)) = rebuild {
                    if let Some(f) = fleet.take() {
                        f.shutdown();
                    }
                    fleet = Fleet::local(slaves, threads)
                        .map_err(|e| eprintln!("serve: rebuilding local fleet: {e}"))
                        .ok();
                    *inner.fleet_control.lock().unwrap() =
                        fleet.as_ref().map(|f| f.control().clone());
                }
            }
        }
    }
    if let Some(f) = fleet {
        f.shutdown();
    }
}

/// One batch round: every member solved sequentially, concurrently on
/// scoped threads — tiny matrices are cheaper to solve than to
/// partition across the fleet.
fn run_batch_round(inner: &Arc<Inner>, round: Vec<Dispatch>) {
    inner.registry.counter("serve_batch_rounds").inc();
    inner
        .registry
        .counter("serve_batch_jobs")
        .add(round.len() as u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = round
            .iter()
            .map(|d| {
                s.spawn(move || {
                    let m = d.spec.problem.solve_sequential();
                    let dims = m.dims();
                    CacheEntry::from_cells(dims.rows, dims.cols, encode_cells(&m))
                })
            })
            .collect();
        for (d, h) in round.iter().zip(handles) {
            match h.join() {
                Ok(entry) => inner.finish(d.id, Ok(entry)),
                Err(_) => inner.finish(d.id, Err("batch solve panicked".into())),
            }
        }
    });
}

/// One fleet job: per-job registry, per-job durable checkpoint dir,
/// resuming from any segments a previous incarnation flushed.
fn run_fleet_job(
    inner: &Arc<Inner>,
    fleet: Option<&mut Fleet>,
    d: &Dispatch,
) -> Result<CacheEntry, RuntimeError> {
    let fleet =
        fleet.ok_or_else(|| RuntimeError::InvalidConfig("no slave fleet available".into()))?;
    inner.registry.counter("serve_fleet_rounds").inc();
    let job_reg = Arc::new(Registry::new());
    let (checkpoint, resume) = match &inner.store {
        Some(store) => {
            let dir = store.ckpt_dir(d.id);
            let resume = Checkpoint::load_dir(&dir).ok().flatten();
            let mut policy = CheckpointPolicy::new(&dir);
            if inner.checkpoint_every > 0 {
                policy = policy.with_every_tiles(inner.checkpoint_every);
            }
            (Some(policy), resume)
        }
        None => (None, None),
    };
    let out = fleet.run_job(
        &d.spec,
        JobOptions {
            obs: ObsConfig {
                metrics: Some(job_reg.clone()),
                recorder: None,
            },
            checkpoint,
            resume,
            tile_budget: None,
        },
    )?;
    inner.republish(d.id, &d.tenant, &job_reg.snapshot());
    let dims = out.matrix.dims();
    Ok(CacheEntry::from_cells(
        dims.rows,
        dims.cols,
        encode_cells(&out.matrix),
    ))
}

/// Per-connection handler: hello, then request/response until EOF.
fn handle_client(inner: Arc<Inner>, mut s: ClientStream) {
    if rpc::read_hello(&mut s).is_err() {
        return;
    }
    loop {
        let msg = match rpc::read_msg(&mut s, rpc::MAX_MSG) {
            Ok(m) => m,
            Err(_) => return, // EOF or a corrupt frame: drop the peer
        };
        let req = match Request::decode(&msg) {
            Ok(r) => r,
            Err(e) => {
                let _ = write_resp(
                    &mut s,
                    &Response::Error {
                        message: format!("malformed request: {e}"),
                    },
                );
                return;
            }
        };
        let ok = match req {
            Request::Submit(sub) => {
                let (replies, wait_rx) = inner.submit(sub);
                let mut ok = true;
                for r in &replies {
                    ok &= write_resp(&mut s, r).is_ok();
                }
                if let (true, Some(rx)) = (ok, wait_rx) {
                    ok = wait_for_terminal(&inner, &rx, &mut s);
                }
                ok
            }
            Request::Status { job } => write_resp(
                &mut s,
                &Response::Status {
                    job,
                    state: inner.status(job),
                },
            )
            .is_ok(),
            Request::Stats => write_resp(
                &mut s,
                &Response::Stats {
                    text: inner.registry.snapshot().render_text(),
                },
            )
            .is_ok(),
            Request::Cancel { job } => write_resp(
                &mut s,
                &Response::Cancelled {
                    job,
                    ok: inner.cancel(job),
                },
            )
            .is_ok(),
            Request::Drain { rank } => {
                let ok = match (rank, &*inner.fleet_control.lock().unwrap()) {
                    (0, _) => false, // rank 0 is the master
                    (_, Some(fc)) => {
                        fc.request_drain(rank);
                        inner.registry.counter("serve_drain_requests").inc();
                        true
                    }
                    (_, None) => false,
                };
                write_resp(&mut s, &Response::Drained { rank, ok }).is_ok()
            }
        };
        if !ok {
            return;
        }
    }
}

fn write_resp(s: &mut ClientStream, resp: &Response) -> io::Result<()> {
    rpc::write_msg(s, &resp.encode())
}

/// Block a `wait` submission until its terminal response, polling for
/// daemon shutdown so the connection is never parked forever.
fn wait_for_terminal(
    inner: &Arc<Inner>,
    rx: &mpsc::Receiver<Response>,
    s: &mut ClientStream,
) -> bool {
    loop {
        match rx.recv_timeout(Duration::from_millis(500)) {
            Ok(resp) => return write_resp(s, &resp).is_ok(),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    let _ = write_resp(
                        s,
                        &Response::Error {
                            message: "daemon is shutting down".into(),
                        },
                    );
                    return false;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = write_resp(
                    s,
                    &Response::Error {
                        message: "job state lost".into(),
                    },
                );
                return false;
            }
        }
    }
}

/// A running daemon. Dropping (or calling [`Daemon::stop`]) shuts it
/// down gracefully: in-flight rounds finish, the fleet is released.
pub struct Daemon {
    inner: Arc<Inner>,
    addr: NetAddr,
    fleet_addr: Option<NetAddr>,
    accept: Option<JoinHandle<()>>,
    sched: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Bind, recover persisted state, start the fleet and serve.
    ///
    /// With a [`FleetSpec::Remote`] fleet the slave listener is bound
    /// before this returns — read the address from
    /// [`Daemon::fleet_addr`] and start slaves with `easyhps slave`;
    /// the scheduler waits for them in the background while clients can
    /// already submit.
    pub fn start(cfg: ServeConfig) -> io::Result<Daemon> {
        let listener = ClientListener::bind(&cfg.listen)?;
        let addr = listener.local_addr();
        let store = match &cfg.state_dir {
            Some(dir) => Some(JobStore::open(dir)?),
            None => None,
        };
        let inner = Arc::new(Inner {
            registry: Arc::new(Registry::new()),
            store,
            weights: cfg.tenant_weights.iter().cloned().collect(),
            queue_cap: cfg.queue_cap.max(1),
            batch_max_cells: cfg.batch_max_cells,
            batch_max_jobs: cfg.batch_max_jobs.max(1),
            checkpoint_every: cfg.checkpoint_every,
            per_job_metrics: cfg.per_job_metrics,
            core: Mutex::new(Core {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                vtime: HashMap::new(),
                cache: ResultCache::new(cfg.cache_bytes.max(1)),
                next_id: 1,
            }),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            fleet_control: Mutex::new(None),
            clients: Mutex::new(Vec::new()),
        });
        inner.recover()?;

        let (src, fleet_addr) = match cfg.fleet {
            FleetSpec::Local { slaves, threads } => (FleetSrc::Local { slaves, threads }, None),
            FleetSpec::Remote {
                listen,
                slaves,
                socket,
            } => {
                let l = SocketListener::bind(&listen, socket)?;
                let fleet_addr = l.local_addr();
                (
                    FleetSrc::Remote {
                        listener: l,
                        slaves,
                    },
                    Some(fleet_addr),
                )
            }
        };

        let sched = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("serve-sched".into())
                .spawn(move || scheduler(inner, src))?
        };
        let accept = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    while !inner.shutdown.load(Ordering::SeqCst) {
                        match listener.poll_accept(Duration::from_millis(50)) {
                            Ok(Some(s)) => {
                                let inner = inner.clone();
                                let handle = s.shutdown_handle().ok().map(Arc::new);
                                if let Some(h) = &handle {
                                    inner.clients.lock().unwrap().push(h.clone());
                                }
                                let _ = std::thread::Builder::new()
                                    .name("serve-client".into())
                                    .spawn(move || {
                                        handle_client(inner.clone(), s);
                                        if let Some(h) = &handle {
                                            inner
                                                .clients
                                                .lock()
                                                .unwrap()
                                                .retain(|x| !Arc::ptr_eq(x, h));
                                        }
                                    });
                            }
                            Ok(None) => {}
                            Err(_) => std::thread::sleep(Duration::from_millis(50)),
                        }
                    }
                })?
        };
        Ok(Daemon {
            inner,
            addr,
            fleet_addr,
            accept: Some(accept),
            sched: Some(sched),
        })
    }

    /// The client address actually bound (ephemeral ports resolved).
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    /// The slave listener address, for a [`FleetSpec::Remote`] fleet.
    pub fn fleet_addr(&self) -> Option<&NetAddr> {
        self.fleet_addr.as_ref()
    }

    /// The daemon's metrics registry (what `stats` renders).
    pub fn registry(&self) -> Arc<Registry> {
        self.inner.registry.clone()
    }

    /// Graceful shutdown: stop admitting, finish the current round,
    /// release the fleet.
    pub fn stop(mut self) {
        self.shutdown_join();
    }

    fn shutdown_join(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work.notify_all();
        // Close live client connections: their handler threads unblock
        // and exit, so no pre-shutdown connection keeps answering.
        for h in self.inner.clients.lock().unwrap().drain(..) {
            h.close();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sched.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_join();
    }
}
