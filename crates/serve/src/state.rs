//! Durable job state: what lets `kill -9` lose no accepted job.
//!
//! Layout under the daemon's `--state-dir`:
//!
//! ```text
//! state/
//!   jobs/
//!     0000000000000007/
//!       spec.bin      sealed {id, tenant, encoded JobSpec}
//!       result.bin    sealed {rows, cols, crc, encoded cells}
//!       ckpt/         per-job durable CheckpointStore segments
//! ```
//!
//! `spec.bin` is written — atomically, via tmp + rename, fsynced — *before*
//! the daemon acknowledges a submission, so "accepted" and "on disk" are
//! the same event. `result.bin` is written before the job is reported
//! done. Both files are CRC-sealed with the workspace frame, so a torn
//! write (a crash between `write` and `rename` can leave nothing, but a
//! corrupting disk can leave garbage) reads as *absent*, never as a
//! wrong job: a job dir with an unreadable spec was never acknowledged
//! and is dropped; an unreadable result means the job re-runs from its
//! `ckpt/` segments.

use easyhps_net::{frame, WireError, WireReader, WireWriter};
use easyhps_runtime::remote::JobSpec;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A job as recovered from disk.
#[derive(Clone, Debug)]
pub struct PersistedJob {
    /// The id assigned at submission (ids survive restarts).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// The full job specification.
    pub spec: JobSpec,
    /// The finished result, when `result.bin` exists and verifies.
    pub result: Option<PersistedResult>,
}

/// A finished result as recovered from disk.
#[derive(Clone, Debug)]
pub struct PersistedResult {
    /// Matrix rows.
    pub rows: u32,
    /// Matrix columns.
    pub cols: u32,
    /// CRC-32C over `cells`.
    pub crc: u32,
    /// Encoded cell bytes (row-major little-endian).
    pub cells: Vec<u8>,
}

/// Handle on the daemon's state directory.
#[derive(Debug)]
pub struct JobStore {
    root: PathBuf,
}

/// Write `bytes` to `path` atomically: tmp file in the same directory,
/// fsync, rename. Readers see the old content or the new, never a torn
/// prefix.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Read a sealed file, returning its payload or `None` when the file is
/// missing, truncated or corrupt — torn state must read as absent.
fn read_sealed(path: &Path) -> Option<Vec<u8>> {
    let buf = fs::read(path).ok()?;
    match frame::check(&buf) {
        Ok(frame::Frame::Raw) => Some(buf[frame::RAW_BODY..].to_vec()),
        _ => None,
    }
}

fn decode_spec(payload: &[u8]) -> Result<(u64, String, JobSpec), WireError> {
    let mut r = WireReader::new(payload);
    let id = r.get_u64()?;
    let tenant = String::from_utf8(r.get_bytes()?).map_err(|_| WireError {
        context: "persisted tenant",
    })?;
    let spec = JobSpec::decode(&r.get_bytes()?)?;
    r.expect_end()?;
    Ok((id, tenant, spec))
}

fn decode_result(payload: &[u8]) -> Result<PersistedResult, WireError> {
    let mut r = WireReader::new(payload);
    let out = PersistedResult {
        rows: r.get_u32()?,
        cols: r.get_u32()?,
        crc: r.get_u32()?,
        cells: r.get_bytes()?,
    };
    r.expect_end()?;
    Ok(out)
}

impl JobStore {
    /// Open (creating if needed) a state directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<JobStore> {
        let root = root.into();
        fs::create_dir_all(root.join("jobs"))?;
        Ok(JobStore { root })
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.root.join("jobs").join(format!("{id:016}"))
    }

    /// The per-job durable checkpoint directory (for `CheckpointPolicy`).
    pub fn ckpt_dir(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("ckpt")
    }

    /// Persist an accepted job. Must complete before the daemon replies
    /// `Accepted` — this write *is* the acceptance.
    pub fn persist_spec(&self, id: u64, tenant: &str, spec: &JobSpec) -> io::Result<()> {
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)?;
        let mut w = WireWriter::new();
        w.put_u64(id)
            .put_bytes(tenant.as_bytes())
            .put_bytes(&spec.encode());
        write_atomic(&dir.join("spec.bin"), &frame::seal_raw(&w.finish()))
    }

    /// Persist a finished result. Must complete before the job is
    /// reported `Done`.
    pub fn persist_result(
        &self,
        id: u64,
        rows: u32,
        cols: u32,
        crc: u32,
        cells: &[u8],
    ) -> io::Result<()> {
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)?;
        let mut w = WireWriter::with_capacity(cells.len() + 32);
        w.put_u32(rows).put_u32(cols).put_u32(crc).put_bytes(cells);
        write_atomic(&dir.join("result.bin"), &frame::seal_raw(&w.finish()))
    }

    /// Remove a job's directory (cancelled jobs must not resurrect on
    /// restart).
    pub fn remove(&self, id: u64) -> io::Result<()> {
        let dir = self.job_dir(id);
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        Ok(())
    }

    /// Recover every acknowledged job, sorted by id. Dirs with a torn or
    /// missing spec are skipped (never acknowledged); torn results are
    /// reported as unfinished.
    pub fn scan(&self) -> io::Result<Vec<PersistedJob>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("jobs"))? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            let Some(payload) = read_sealed(&dir.join("spec.bin")) else {
                continue;
            };
            let Ok((id, tenant, spec)) = decode_spec(&payload) else {
                continue;
            };
            let result = read_sealed(&dir.join("result.bin")).and_then(|p| decode_result(&p).ok());
            out.push(PersistedJob {
                id,
                tenant,
                spec,
                result,
            });
        }
        out.sort_by_key(|j| j.id);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::GridDims;
    use easyhps_runtime::remote::RemoteProblem;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_root() -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("easyhps-serve-state-{}-{n}", std::process::id()))
    }

    fn spec(text: &[u8]) -> JobSpec {
        JobSpec::new(
            RemoteProblem::EditDistance {
                a: text.to_vec(),
                b: b"reference".to_vec(),
            },
            GridDims::new(4, 4),
            GridDims::new(2, 2),
        )
    }

    #[test]
    fn specs_and_results_survive_a_scan() {
        let root = tmp_root();
        let store = JobStore::open(&root).unwrap();
        store.persist_spec(3, "alice", &spec(b"one")).unwrap();
        store.persist_spec(7, "bob", &spec(b"two")).unwrap();
        store
            .persist_result(3, 4, 10, 0xFEED, b"cellbytes")
            .unwrap();

        let jobs = store.scan().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 3, "sorted by id");
        assert_eq!(jobs[0].tenant, "alice");
        assert_eq!(jobs[0].spec, spec(b"one"));
        let r = jobs[0].result.as_ref().unwrap();
        assert_eq!((r.rows, r.cols, r.crc), (4, 10, 0xFEED));
        assert_eq!(r.cells, b"cellbytes");
        assert!(jobs[1].result.is_none());

        store.remove(3).unwrap();
        assert_eq!(store.scan().unwrap().len(), 1, "removed job is gone");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_files_read_as_absent_not_wrong() {
        let root = tmp_root();
        let store = JobStore::open(&root).unwrap();
        store.persist_spec(1, "alice", &spec(b"keep")).unwrap();
        store.persist_spec(2, "bob", &spec(b"tear")).unwrap();
        store.persist_result(1, 4, 5, 9, b"ok").unwrap();

        // Corrupt job 2's spec and job 1's result in place.
        let spec2 = root
            .join("jobs")
            .join(format!("{:016}", 2))
            .join("spec.bin");
        let mut bytes = fs::read(&spec2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&spec2, bytes).unwrap();
        let res1 = root
            .join("jobs")
            .join(format!("{:016}", 1))
            .join("result.bin");
        let bytes = fs::read(&res1).unwrap();
        fs::write(&res1, &bytes[..bytes.len() - 1]).unwrap();

        let jobs = store.scan().unwrap();
        assert_eq!(jobs.len(), 1, "torn spec means never acknowledged");
        assert_eq!(jobs[0].id, 1);
        assert!(jobs[0].result.is_none(), "torn result means unfinished");
        fs::remove_dir_all(&root).ok();
    }
}
