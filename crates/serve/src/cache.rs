//! Content-addressed result cache with in-flight bookkeeping support.
//!
//! Jobs are keyed by *what they compute*, not how: the key hashes
//! [`RemoteProblem::content_key_bytes`], the canonical encoding of the
//! problem alone (sequences, scoring parameters), deliberately excluding
//! partition shapes, thread counts and every other deployment knob — two
//! submissions that differ only in `--pp` produce bit-identical matrices
//! and must share one cache line. The daemon uses the same key for
//! request coalescing: a submission whose key matches a queued or
//! running job attaches to it instead of computing again.
//!
//! The cache itself is a plain LRU bounded by resident cell bytes,
//! behind the daemon's one lock — hit latency is irrelevant next to the
//! seconds a DP job takes.

use easyhps_net::crc32c;
use easyhps_runtime::remote::RemoteProblem;
use std::collections::HashMap;
use std::sync::Arc;

/// 128-bit FNV-1a over the problem's canonical content bytes. Not
/// cryptographic — tenants within one daemon are assumed cooperative —
/// but 128 bits make accidental collisions negligible.
pub fn job_key(problem: &RemoteProblem) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let mut h = OFFSET;
    for &b in &problem.content_key_bytes() {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hex form of a job key, used in logs and metric labels.
pub fn key_hex(key: u128) -> String {
    format!("{key:032x}")
}

/// A finished matrix: shape, digest, and the encoded cells themselves
/// (row-major little-endian, the [`easyhps_dp::DpMatrix::encode_region`]
/// layout). Cells are shared via `Arc` so a cache hit is O(1).
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Matrix rows.
    pub rows: u32,
    /// Matrix columns.
    pub cols: u32,
    /// CRC-32C over `cells`.
    pub crc: u32,
    /// Encoded cell bytes.
    pub cells: Arc<[u8]>,
}

impl CacheEntry {
    /// Build an entry from raw encoded cells, computing the digest.
    pub fn from_cells(rows: u32, cols: u32, cells: Vec<u8>) -> CacheEntry {
        let crc = crc32c(&cells);
        CacheEntry {
            rows,
            cols,
            crc,
            cells: cells.into(),
        }
    }
}

/// LRU result cache bounded by total cell bytes.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u128, CacheEntry>,
    /// Least-recently-used first. Small (one u128 per entry); linear
    /// scans on touch are fine at the job counts a daemon sees.
    order: Vec<u128>,
    bytes: usize,
    cap_bytes: usize,
}

impl ResultCache {
    /// Cache holding at most `cap_bytes` of cell data. A single entry
    /// larger than the cap is admitted alone (the cache never refuses
    /// the result of a job it just ran) and evicted by the next insert.
    pub fn new(cap_bytes: usize) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            order: Vec::new(),
            bytes: 0,
            cap_bytes,
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<CacheEntry> {
        let entry = self.map.get(&key)?.clone();
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push(key);
        }
        Some(entry)
    }

    /// Insert (or refresh) an entry, evicting least-recently-used
    /// entries until the byte budget holds.
    pub fn insert(&mut self, key: u128, entry: CacheEntry) {
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.cells.len();
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
            }
        }
        self.bytes += entry.cells.len();
        self.map.insert(key, entry);
        self.order.push(key);
        while self.bytes > self.cap_bytes && self.order.len() > 1 {
            let victim = self.order.remove(0);
            if let Some(old) = self.map.remove(&victim) {
                self.bytes -= old.cells.len();
            }
        }
    }

    /// Number of cached results.
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// Resident cell bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize) -> CacheEntry {
        CacheEntry::from_cells(1, n as u32, vec![0xAB; n])
    }

    #[test]
    fn key_ignores_partitioning_but_not_content() {
        let a = RemoteProblem::EditDistance {
            a: b"GATTACA".to_vec(),
            b: b"GCATGCT".to_vec(),
        };
        let b = RemoteProblem::EditDistance {
            a: b"GATTACA".to_vec(),
            b: b"GCATGCA".to_vec(),
        };
        // Same problem hashes the same; one changed byte does not. The
        // key has no partition inputs at all, so "ignores partitioning"
        // is structural.
        assert_eq!(job_key(&a), job_key(&a));
        assert_ne!(job_key(&a), job_key(&b));
        let c = RemoteProblem::Lcs {
            a: b"GATTACA".to_vec(),
            b: b"GCATGCT".to_vec(),
        };
        assert_ne!(job_key(&a), job_key(&c), "problem kind is part of the key");
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let mut c = ResultCache::new(100);
        c.insert(1, entry(40));
        c.insert(2, entry(40));
        assert_eq!(c.entries(), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.insert(3, entry(40));
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn oversized_entry_is_admitted_alone() {
        let mut c = ResultCache::new(10);
        c.insert(1, entry(50));
        assert_eq!(c.entries(), 1, "fresh result never refused");
        c.insert(2, entry(5));
        assert!(c.get(1).is_none(), "oversized entry evicted next");
        assert!(c.get(2).is_some());
    }
}
