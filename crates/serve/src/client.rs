//! Blocking client for the serve daemon.
//!
//! Every request/response exchange retries through a bounded
//! exponential-backoff-with-jitter loop: a dropped connection (daemon
//! restart, transient network failure) is redialed and the request
//! resent. Resending is safe because the daemon's request handlers are
//! idempotent from the client's point of view — a resubmitted job
//! coalesces onto the in-flight copy or hits the result cache, and
//! `status`/`stats`/`cancel`/`drain` are plain queries or at-most-once
//! state flips. Protocol errors (a malformed response) do *not* retry:
//! the peer is broken, not the link.

use crate::protocol::{Request, Response, SubmitReq};
use crate::stream::ClientStream;
use easyhps_net::{rpc, NetAddr};
use easyhps_obs::Registry;
use easyhps_runtime::remote::JobSpec;
use std::io;
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// Redial-and-resend attempts after the initial try.
const RETRY_ATTEMPTS: u32 = 8;
/// First backoff; doubles per attempt.
const RETRY_BASE: Duration = Duration::from_millis(50);
/// Backoff ceiling.
const RETRY_CAP: Duration = Duration::from_secs(2);

/// A connected client. One request/response exchange at a time; a
/// `wait` submission keeps the exchange open until the terminal
/// response ([`Client::read_response`] fetches it).
pub struct Client {
    addr: NetAddr,
    stream: ClientStream,
    retries: u64,
    metrics: Option<Arc<Registry>>,
}

/// Whether a failed exchange is worth redialing: connection-level
/// errors are; a decoded-but-malformed response (`InvalidData`) means
/// the peer speaks a different protocol and retrying cannot help.
fn retryable(e: &io::Error) -> bool {
    e.kind() != io::ErrorKind::InvalidData
}

/// Deterministic-enough jitter without a PRNG dependency: splitmix64
/// over the clock, the pid and the attempt number.
fn jitter(attempt: u32, cap: Duration) -> Duration {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64);
    let mut z = nanos ^ (u64::from(std::process::id()) << 32) ^ u64::from(attempt);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let half = (cap.as_millis() as u64 / 2).max(1);
    Duration::from_millis(z % half)
}

/// Backoff before retry `attempt` (1-based): `base * 2^(attempt-1)`
/// capped, plus up to 50% jitter so a herd of clients restarting
/// against one daemon does not redial in lockstep.
fn backoff(attempt: u32) -> Duration {
    let exp = RETRY_BASE.saturating_mul(1u32 << (attempt - 1).min(16));
    let capped = exp.min(RETRY_CAP);
    capped + jitter(attempt, capped)
}

impl Client {
    /// Connect to a daemon and perform the protocol hello.
    pub fn connect(addr: &NetAddr) -> io::Result<Client> {
        let stream = Self::dial(addr)?;
        Ok(Client {
            addr: addr.clone(),
            stream,
            retries: 0,
            metrics: None,
        })
    }

    /// Count retries into `registry` (as `client_retries`) in addition
    /// to the [`Client::retries`] total.
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// How many times this client redialed and resent a request.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn dial(addr: &NetAddr) -> io::Result<ClientStream> {
        let mut stream = ClientStream::connect(addr)?;
        rpc::write_hello(&mut stream)?;
        Ok(stream)
    }

    fn note_retry(&mut self) {
        self.retries += 1;
        if let Some(reg) = &self.metrics {
            reg.counter("client_retries").inc();
        }
    }

    fn try_request(&mut self, req: &Request) -> io::Result<Response> {
        rpc::write_msg(&mut self.stream, &req.encode())?;
        self.read_response()
    }

    /// Send a request and read its first response, redialing and
    /// resending (bounded, with exponential backoff + jitter) when the
    /// connection fails mid-exchange — e.g. across a daemon restart.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            match self.try_request(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if !retryable(&e) || attempt >= RETRY_ATTEMPTS {
                        return Err(e);
                    }
                    attempt += 1;
                    self.note_retry();
                    std::thread::sleep(backoff(attempt));
                    // A refused dial keeps the dead stream; the next
                    // loop iteration fails fast and backs off again.
                    if let Ok(s) = Self::dial(&self.addr) {
                        self.stream = s;
                    }
                }
            }
        }
    }

    /// Read one more response — the terminal `Done`/`Error` of a `wait`
    /// submission, or the `Done` following a cache-hit acceptance. Not
    /// retried here: a connection lost mid-wait needs the job resubmitted
    /// (see [`Client::submit_wait`]), not the read repeated.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let payload = rpc::read_msg(&mut self.stream, rpc::MAX_MSG)?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submit a job. Returns the admission response; on a cache hit or
    /// with `wait`, call [`Client::read_response`] for the `Done`.
    pub fn submit(&mut self, tenant: &str, wait: bool, spec: JobSpec) -> io::Result<Response> {
        self.request(&Request::Submit(SubmitReq {
            tenant: tenant.to_string(),
            wait,
            spec,
        }))
    }

    /// Submit and block for the terminal response, surviving daemon
    /// restarts: a connection lost while waiting resubmits the job
    /// (idempotent — it coalesces onto the in-flight copy or hits the
    /// result cache) under the same bounded backoff as [`Client::request`].
    pub fn submit_wait(&mut self, tenant: &str, spec: JobSpec) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let outcome = self
                .try_request(&Request::Submit(SubmitReq {
                    tenant: tenant.to_string(),
                    wait: true,
                    spec: spec.clone(),
                }))
                .and_then(|first| match first {
                    // Admitted: the terminal Done/Error follows on the
                    // same exchange (a cache hit's Done is immediate).
                    Response::Accepted { .. } => self.read_response(),
                    other => Ok(other),
                });
            match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if !retryable(&e) || attempt >= RETRY_ATTEMPTS {
                        return Err(e);
                    }
                    attempt += 1;
                    self.note_retry();
                    std::thread::sleep(backoff(attempt));
                    if let Ok(s) = Self::dial(&self.addr) {
                        self.stream = s;
                    }
                }
            }
        }
    }

    /// Query a job's lifecycle state.
    pub fn status(&mut self, job: u64) -> io::Result<Response> {
        self.request(&Request::Status { job })
    }

    /// Fetch the daemon's metrics as Prometheus-style text.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.request(&Request::Stats)
    }

    /// Cancel a queued job.
    pub fn cancel(&mut self, job: u64) -> io::Result<Response> {
        self.request(&Request::Cancel { job })
    }

    /// Gracefully drain slave `rank` out of the daemon's fleet.
    pub fn drain(&mut self, rank: u32) -> io::Result<Response> {
        self.request(&Request::Drain { rank })
    }
}
