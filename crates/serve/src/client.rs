//! Blocking client for the serve daemon.

use crate::protocol::{Request, Response, SubmitReq};
use crate::stream::ClientStream;
use easyhps_net::{rpc, NetAddr};
use easyhps_runtime::remote::JobSpec;
use std::io;

/// A connected client. One request/response exchange at a time; a
/// `wait` submission keeps the exchange open until the terminal
/// response ([`Client::read_response`] fetches it).
pub struct Client {
    stream: ClientStream,
}

impl Client {
    /// Connect to a daemon and perform the protocol hello.
    pub fn connect(addr: &NetAddr) -> io::Result<Client> {
        let mut stream = ClientStream::connect(addr)?;
        rpc::write_hello(&mut stream)?;
        Ok(Client { stream })
    }

    /// Send a request and read its first response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        rpc::write_msg(&mut self.stream, &req.encode())?;
        self.read_response()
    }

    /// Read one more response — the terminal `Done`/`Error` of a `wait`
    /// submission, or the `Done` following a cache-hit acceptance.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let payload = rpc::read_msg(&mut self.stream, rpc::MAX_MSG)?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submit a job. Returns the admission response; on a cache hit or
    /// with `wait`, call [`Client::read_response`] for the `Done`.
    pub fn submit(&mut self, tenant: &str, wait: bool, spec: JobSpec) -> io::Result<Response> {
        self.request(&Request::Submit(SubmitReq {
            tenant: tenant.to_string(),
            wait,
            spec,
        }))
    }

    /// Query a job's lifecycle state.
    pub fn status(&mut self, job: u64) -> io::Result<Response> {
        self.request(&Request::Status { job })
    }

    /// Fetch the daemon's metrics as Prometheus-style text.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.request(&Request::Stats)
    }

    /// Cancel a queued job.
    pub fn cancel(&mut self, job: u64) -> io::Result<Response> {
        self.request(&Request::Cancel { job })
    }
}
