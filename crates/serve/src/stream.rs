//! Plain byte streams for the client protocol — TCP or Unix-domain.
//!
//! The rank transport's streams live inside `easyhps-net` and are tied
//! to its framed reader/writer threads; the client protocol is a simple
//! blocking request/response exchange, so it carries its own thin
//! enum over the two std socket types.

use easyhps_net::NetAddr;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A connected client-protocol stream.
#[derive(Debug)]
pub enum ClientStream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Uds(UnixStream),
}

/// A handle that closes a [`ClientStream`] from another thread. The
/// daemon keeps one per connection so a graceful shutdown unblocks
/// handler threads parked in a read instead of leaving the connections
/// (and their threads) to linger past [`Daemon::stop`](crate::Daemon::stop).
#[derive(Debug)]
pub enum StreamShutdown {
    /// Handle to a TCP connection.
    Tcp(TcpStream),
    /// Handle to a Unix-domain connection.
    Uds(UnixStream),
}

impl StreamShutdown {
    /// Close both directions; a handler blocked in a read sees EOF.
    pub fn close(&self) {
        let _ = match self {
            StreamShutdown::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            StreamShutdown::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl ClientStream {
    /// A handle that can close this stream from another thread.
    pub fn shutdown_handle(&self) -> io::Result<StreamShutdown> {
        Ok(match self {
            ClientStream::Tcp(s) => StreamShutdown::Tcp(s.try_clone()?),
            ClientStream::Uds(s) => StreamShutdown::Uds(s.try_clone()?),
        })
    }

    /// Connect to a daemon's client address.
    pub fn connect(addr: &NetAddr) -> io::Result<ClientStream> {
        Ok(match addr {
            NetAddr::Tcp(hp) => {
                let s = TcpStream::connect(hp)?;
                let _ = s.set_nodelay(true);
                ClientStream::Tcp(s)
            }
            NetAddr::Uds(path) => ClientStream::Uds(UnixStream::connect(path)?),
        })
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            ClientStream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            ClientStream::Uds(s) => s.flush(),
        }
    }
}

/// A bound client-protocol listener, polled non-blocking so the accept
/// loop can notice daemon shutdown.
#[derive(Debug)]
pub enum ClientListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener; the path is removed on drop.
    Uds(UnixListener, PathBuf),
}

impl ClientListener {
    /// Bind to `addr` in non-blocking mode. A stale Unix socket file
    /// from a crashed daemon is removed first.
    pub fn bind(addr: &NetAddr) -> io::Result<ClientListener> {
        let l = match addr {
            NetAddr::Tcp(hp) => {
                let l = TcpListener::bind(hp)?;
                l.set_nonblocking(true)?;
                ClientListener::Tcp(l)
            }
            NetAddr::Uds(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                ClientListener::Uds(l, path.clone())
            }
        };
        Ok(l)
    }

    /// The address actually bound (ephemeral TCP port resolved).
    pub fn local_addr(&self) -> NetAddr {
        match self {
            ClientListener::Tcp(l) => NetAddr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".into()),
            ),
            ClientListener::Uds(_, path) => NetAddr::Uds(path.clone()),
        }
    }

    /// Poll for one connection, sleeping `poll` when none is pending.
    /// Returns `None` on a would-block (caller re-checks shutdown).
    pub fn poll_accept(&self, poll: Duration) -> io::Result<Option<ClientStream>> {
        let got = match self {
            ClientListener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                ClientStream::Tcp(s)
            }),
            ClientListener::Uds(l, _) => l.accept().map(|(s, _)| ClientStream::Uds(s)),
        };
        match got {
            Ok(s) => {
                // Hand the handler a blocking stream.
                match &s {
                    ClientStream::Tcp(t) => t.set_nonblocking(false)?,
                    ClientStream::Uds(u) => u.set_nonblocking(false)?,
                }
                Ok(Some(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

impl Drop for ClientListener {
    fn drop(&mut self) {
        if let ClientListener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}
