//! Wire messages of the serve client protocol.
//!
//! Requests and responses are hand-encoded with the workspace wire
//! format ([`WireWriter`]/[`WireReader`]) and travel inside the
//! CRC-sealed, length-prefixed framing of [`easyhps_net::rpc`]. The
//! codec therefore only has to be *unambiguous*; integrity (truncation,
//! bit flips) is the frame layer's job, and the proptests in this crate
//! hold every message to the same standard as [`JobSpec`]: no byte
//! prefix of a sealed message decodes, and no single corrupted byte
//! passes the seal.
//!
//! A connection carries a sequence of request/response exchanges. Every
//! request gets exactly one immediate response, except `Submit` with
//! `wait = true`, which gets an immediate admission response
//! ([`Response::Accepted`] / [`Response::Rejected`] /
//! [`Response::Done`] on a cache hit) followed — possibly much later —
//! by a terminal [`Response::Done`] or [`Response::Error`].

use easyhps_net::{WireError, WireReader, WireWriter};
use easyhps_runtime::remote::JobSpec;

const REQ_SUBMIT: u8 = 1;
const REQ_STATUS: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_CANCEL: u8 = 4;
const REQ_DRAIN: u8 = 5;

const RESP_ACCEPTED: u8 = 1;
const RESP_REJECTED: u8 = 2;
const RESP_STATUS: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_CANCELLED: u8 = 5;
const RESP_DONE: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_DRAINED: u8 = 8;

fn get_string(r: &mut WireReader<'_>, context: &'static str) -> Result<String, WireError> {
    String::from_utf8(r.get_bytes()?).map_err(|_| WireError { context })
}

/// How an accepted submission will be satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A fresh computation was queued.
    New,
    /// The result was already in the content-addressed cache.
    CacheHit,
    /// An identical job is already queued or running; this submission
    /// was attached to it and consumes no queue slot.
    Coalesced,
}

impl Admission {
    fn to_u8(self) -> u8 {
        match self {
            Admission::New => 0,
            Admission::CacheHit => 1,
            Admission::Coalesced => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(Admission::New),
            1 => Ok(Admission::CacheHit),
            2 => Ok(Admission::Coalesced),
            _ => Err(WireError {
                context: "admission kind",
            }),
        }
    }
}

/// The compact summary of a finished job: matrix shape plus the CRC-32C
/// of its row-major little-endian cell bytes (the same digest
/// `easyhps master` prints as `matrix-crc:`), enough for a client to
/// verify bit-identity without shipping the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobResult {
    /// Matrix rows.
    pub rows: u32,
    /// Matrix columns.
    pub cols: u32,
    /// CRC-32C over the encoded cells.
    pub crc: u32,
}

/// Where a job is in its lifecycle, as reported by `status`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting; `position` is its place in the dispatch
    /// queue (0 = next).
    Queued {
        /// Place in the dispatch queue, 0 = next to run.
        position: u32,
    },
    /// Currently dispatched to the fleet or a batch round.
    Running,
    /// Finished; the result summary.
    Done(JobResult),
    /// The computation failed.
    Failed {
        /// Human-readable failure description.
        error: String,
    },
    /// Cancelled before completion.
    Cancelled,
    /// The daemon has no record of this job id.
    Unknown,
}

impl JobState {
    fn encode_into(&self, w: &mut WireWriter) {
        match self {
            JobState::Queued { position } => {
                w.put_u8(0).put_u32(*position);
            }
            JobState::Running => {
                w.put_u8(1);
            }
            JobState::Done(r) => {
                w.put_u8(2).put_u32(r.rows).put_u32(r.cols).put_u32(r.crc);
            }
            JobState::Failed { error } => {
                w.put_u8(3).put_bytes(error.as_bytes());
            }
            JobState::Cancelled => {
                w.put_u8(4);
            }
            JobState::Unknown => {
                w.put_u8(5);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => JobState::Queued {
                position: r.get_u32()?,
            },
            1 => JobState::Running,
            2 => JobState::Done(JobResult {
                rows: r.get_u32()?,
                cols: r.get_u32()?,
                crc: r.get_u32()?,
            }),
            3 => JobState::Failed {
                error: get_string(r, "job failure text")?,
            },
            4 => JobState::Cancelled,
            5 => JobState::Unknown,
            _ => {
                return Err(WireError {
                    context: "job state kind",
                })
            }
        })
    }
}

/// A submission: who is asking, whether the connection should block for
/// the terminal response, and the full job specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitReq {
    /// Tenant key for fair scheduling and accounting labels.
    pub tenant: String,
    /// Keep the exchange open until the job finishes.
    pub wait: bool,
    /// The job to run, in the same encoding the master ships to slaves.
    pub spec: JobSpec,
}

/// Client → daemon messages.
// Requests are transient (decoded, handled, dropped — never stored in
// bulk), so the Submit variant's size is not worth a Box indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a job.
    Submit(SubmitReq),
    /// Ask where a job is in its lifecycle.
    Status {
        /// Job id returned by a prior submit.
        job: u64,
    },
    /// Fetch the daemon's metrics registry as Prometheus-style text.
    Stats,
    /// Cancel a queued or running job.
    Cancel {
        /// Job id returned by a prior submit.
        job: u64,
    },
    /// Gracefully drain a slave out of the daemon's fleet: stop
    /// assigning it work, let in-flight sub-tasks land, release the
    /// rank. See DESIGN.md §17.
    Drain {
        /// Slave rank to drain (1-based; 0 is the master).
        rank: u32,
    },
}

impl Request {
    /// Encode to bytes (to be sealed by [`easyhps_net::rpc::write_msg`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::Submit(s) => {
                w.put_u8(REQ_SUBMIT)
                    .put_bytes(s.tenant.as_bytes())
                    .put_u8(s.wait as u8)
                    .put_bytes(&s.spec.encode());
            }
            Request::Status { job } => {
                w.put_u8(REQ_STATUS).put_u64(*job);
            }
            Request::Stats => {
                w.put_u8(REQ_STATS);
            }
            Request::Cancel { job } => {
                w.put_u8(REQ_CANCEL).put_u64(*job);
            }
            Request::Drain { rank } => {
                w.put_u8(REQ_DRAIN).put_u32(*rank);
            }
        }
        w.finish().to_vec()
    }

    /// Decode from the payload of a checked frame. Trailing bytes are an
    /// error, like every other message in the workspace.
    pub fn decode(bytes: &[u8]) -> Result<Request, WireError> {
        let mut r = WireReader::new(bytes);
        let req = match r.get_u8()? {
            REQ_SUBMIT => {
                let tenant = get_string(&mut r, "tenant key")?;
                let wait = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError {
                            context: "wait flag",
                        })
                    }
                };
                let spec = JobSpec::decode(&r.get_bytes()?)?;
                Request::Submit(SubmitReq { tenant, wait, spec })
            }
            REQ_STATUS => Request::Status { job: r.get_u64()? },
            REQ_STATS => Request::Stats,
            REQ_CANCEL => Request::Cancel { job: r.get_u64()? },
            REQ_DRAIN => Request::Drain { rank: r.get_u32()? },
            _ => {
                return Err(WireError {
                    context: "request kind",
                })
            }
        };
        r.expect_end()?;
        Ok(req)
    }
}

/// Daemon → client messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The submission was admitted; how it will be satisfied.
    Accepted {
        /// Assigned job id.
        job: u64,
        /// How the job will be satisfied.
        admission: Admission,
    },
    /// The submission was refused by admission control.
    Rejected {
        /// Why, including the limit that was hit and what to do.
        reason: String,
    },
    /// Answer to `Status`.
    Status {
        /// The queried job id.
        job: u64,
        /// Its current lifecycle state.
        state: JobState,
    },
    /// Answer to `Stats`: the registry rendered as Prometheus text.
    Stats {
        /// Rendered metrics.
        text: String,
    },
    /// Answer to `Cancel`.
    Cancelled {
        /// The job id the cancel targeted.
        job: u64,
        /// Whether the job was actually cancelled (false if it already
        /// finished, is currently running, or is unknown).
        ok: bool,
    },
    /// Terminal success, sent for `wait` submissions and cache hits.
    Done {
        /// The finished job id.
        job: u64,
        /// Result summary.
        result: JobResult,
        /// True when served from the content-addressed cache.
        cached: bool,
    },
    /// Terminal failure (or a malformed request).
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Answer to `Drain`.
    Drained {
        /// The rank the drain targeted.
        rank: u32,
        /// Whether the drain was handed to the fleet (false when the
        /// daemon has no fleet yet).
        ok: bool,
    },
}

impl Response {
    /// Encode to bytes (to be sealed by [`easyhps_net::rpc::write_msg`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Response::Accepted { job, admission } => {
                w.put_u8(RESP_ACCEPTED)
                    .put_u64(*job)
                    .put_u8(admission.to_u8());
            }
            Response::Rejected { reason } => {
                w.put_u8(RESP_REJECTED).put_bytes(reason.as_bytes());
            }
            Response::Status { job, state } => {
                w.put_u8(RESP_STATUS).put_u64(*job);
                state.encode_into(&mut w);
            }
            Response::Stats { text } => {
                w.put_u8(RESP_STATS).put_bytes(text.as_bytes());
            }
            Response::Cancelled { job, ok } => {
                w.put_u8(RESP_CANCELLED).put_u64(*job).put_u8(*ok as u8);
            }
            Response::Done {
                job,
                result,
                cached,
            } => {
                w.put_u8(RESP_DONE)
                    .put_u64(*job)
                    .put_u32(result.rows)
                    .put_u32(result.cols)
                    .put_u32(result.crc)
                    .put_u8(*cached as u8);
            }
            Response::Error { message } => {
                w.put_u8(RESP_ERROR).put_bytes(message.as_bytes());
            }
            Response::Drained { rank, ok } => {
                w.put_u8(RESP_DRAINED).put_u32(*rank).put_u8(*ok as u8);
            }
        }
        w.finish().to_vec()
    }

    /// Decode from the payload of a checked frame.
    pub fn decode(bytes: &[u8]) -> Result<Response, WireError> {
        let mut r = WireReader::new(bytes);
        let resp = match r.get_u8()? {
            RESP_ACCEPTED => Response::Accepted {
                job: r.get_u64()?,
                admission: Admission::from_u8(r.get_u8()?)?,
            },
            RESP_REJECTED => Response::Rejected {
                reason: get_string(&mut r, "rejection reason")?,
            },
            RESP_STATUS => Response::Status {
                job: r.get_u64()?,
                state: JobState::decode_from(&mut r)?,
            },
            RESP_STATS => Response::Stats {
                text: get_string(&mut r, "stats text")?,
            },
            RESP_CANCELLED => Response::Cancelled {
                job: r.get_u64()?,
                ok: match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError {
                            context: "cancel ok flag",
                        })
                    }
                },
            },
            RESP_DONE => Response::Done {
                job: r.get_u64()?,
                result: JobResult {
                    rows: r.get_u32()?,
                    cols: r.get_u32()?,
                    crc: r.get_u32()?,
                },
                cached: match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError {
                            context: "cached flag",
                        })
                    }
                },
            },
            RESP_ERROR => Response::Error {
                message: get_string(&mut r, "error message")?,
            },
            RESP_DRAINED => Response::Drained {
                rank: r.get_u32()?,
                ok: match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError {
                            context: "drain ok flag",
                        })
                    }
                },
            },
            _ => {
                return Err(WireError {
                    context: "response kind",
                })
            }
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::GridDims;
    use easyhps_runtime::remote::RemoteProblem;

    fn sample_spec() -> JobSpec {
        JobSpec::new(
            RemoteProblem::EditDistance {
                a: b"GATTACA".to_vec(),
                b: b"GCATGCT".to_vec(),
            },
            GridDims::new(4, 4),
            GridDims::new(2, 2),
        )
    }

    #[test]
    fn every_request_roundtrips() {
        let reqs = [
            Request::Submit(SubmitReq {
                tenant: "alice".into(),
                wait: true,
                spec: sample_spec(),
            }),
            Request::Status { job: 42 },
            Request::Stats,
            Request::Cancel { job: u64::MAX },
            Request::Drain { rank: 3 },
        ];
        for req in &reqs {
            assert_eq!(&Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn every_response_roundtrips() {
        let result = JobResult {
            rows: 8,
            cols: 9,
            crc: 0xDEAD_BEEF,
        };
        let resps = [
            Response::Accepted {
                job: 1,
                admission: Admission::New,
            },
            Response::Accepted {
                job: 2,
                admission: Admission::CacheHit,
            },
            Response::Accepted {
                job: 3,
                admission: Admission::Coalesced,
            },
            Response::Rejected {
                reason: "queue full".into(),
            },
            Response::Status {
                job: 4,
                state: JobState::Queued { position: 7 },
            },
            Response::Status {
                job: 5,
                state: JobState::Running,
            },
            Response::Status {
                job: 6,
                state: JobState::Done(result),
            },
            Response::Status {
                job: 7,
                state: JobState::Failed {
                    error: "slave died".into(),
                },
            },
            Response::Status {
                job: 8,
                state: JobState::Cancelled,
            },
            Response::Status {
                job: 9,
                state: JobState::Unknown,
            },
            Response::Stats {
                text: "serve_cache_hits 3\n".into(),
            },
            Response::Cancelled { job: 10, ok: true },
            Response::Done {
                job: 11,
                result,
                cached: true,
            },
            Response::Error {
                message: "no fleet".into(),
            },
            Response::Drained { rank: 2, ok: true },
        ];
        for resp in &resps {
            assert_eq!(&Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_rejected() {
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[99]).is_err());
        let mut bytes = Request::Stats.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err(), "trailing byte detected");
    }
}
