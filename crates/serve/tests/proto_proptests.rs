//! Property-based robustness tests for the daemon's client protocol,
//! held to the same standard as the runtime's `JobSpec`: every message
//! roundtrips exactly, every byte-length prefix of an encoding fails to
//! decode cleanly (no panic, no hostile-length allocation, no silent
//! part-read), and any single corrupted byte of a sealed frame is
//! caught by the CRC before the decoder ever sees it.

use easyhps_core::GridDims;
use easyhps_net::frame;
use easyhps_runtime::remote::{JobSpec, RemoteProblem};
use easyhps_serve::{Admission, JobResult, JobState, Request, Response, SubmitReq};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        proptest::collection::vec(any::<u8>(), 1..24),
        proptest::collection::vec(any::<u8>(), 1..24),
        1u32..12,
        1u32..6,
    )
        .prop_map(|(a, b, pps, tps)| {
            JobSpec::new(
                RemoteProblem::EditDistance { a, b },
                GridDims::new(pps, pps),
                GridDims::new(tps.min(pps), tps.min(pps)),
            )
        })
}

fn arb_text(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0x20u8..0x7f, 0..max)
        .prop_map(|v| String::from_utf8(v).expect("printable ascii"))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_spec(), arb_text(12), any::<bool>())
            .prop_map(|(spec, tenant, wait)| { Request::Submit(SubmitReq { tenant, wait, spec }) }),
        any::<u64>().prop_map(|job| Request::Status { job }),
        Just(Request::Stats),
        any::<u64>().prop_map(|job| Request::Cancel { job }),
        any::<u32>().prop_map(|rank| Request::Drain { rank }),
    ]
}

fn arb_result() -> impl Strategy<Value = JobResult> {
    (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(rows, cols, crc)| JobResult {
        rows,
        cols,
        crc,
    })
}

fn arb_state() -> impl Strategy<Value = JobState> {
    prop_oneof![
        any::<u32>().prop_map(|position| JobState::Queued { position }),
        Just(JobState::Running),
        arb_result().prop_map(JobState::Done),
        arb_text(40).prop_map(|error| JobState::Failed { error }),
        Just(JobState::Cancelled),
        Just(JobState::Unknown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u64>(), 0u8..3).prop_map(|(job, a)| Response::Accepted {
            job,
            admission: match a {
                0 => Admission::New,
                1 => Admission::CacheHit,
                _ => Admission::Coalesced,
            },
        }),
        arb_text(60).prop_map(|reason| Response::Rejected { reason }),
        (any::<u64>(), arb_state()).prop_map(|(job, state)| Response::Status { job, state }),
        arb_text(200).prop_map(|text| Response::Stats { text }),
        (any::<u64>(), any::<bool>()).prop_map(|(job, ok)| Response::Cancelled { job, ok }),
        (any::<u64>(), arb_result(), any::<bool>()).prop_map(|(job, result, cached)| {
            Response::Done {
                job,
                result,
                cached,
            }
        }),
        arb_text(60).prop_map(|message| Response::Error { message }),
        (any::<u32>(), any::<bool>()).prop_map(|(rank, ok)| Response::Drained { rank, ok }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Requests roundtrip exactly, and every proper prefix fails.
    #[test]
    fn every_request_prefix_fails_cleanly(req in arb_request()) {
        let buf = req.encode();
        prop_assert_eq!(&Request::decode(&buf).unwrap(), &req);
        for cut in 0..buf.len() {
            prop_assert!(
                Request::decode(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                buf.len()
            );
        }
    }

    /// Responses roundtrip exactly, and every proper prefix fails.
    #[test]
    fn every_response_prefix_fails_cleanly(resp in arb_response()) {
        let buf = resp.encode();
        prop_assert_eq!(&Response::decode(&buf).unwrap(), &resp);
        for cut in 0..buf.len() {
            prop_assert!(
                Response::decode(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                buf.len()
            );
        }
    }

    /// The daemon's transport seals every message in a CRC-32C frame.
    /// Any single corrupted byte of the sealed encoding is rejected at
    /// the frame layer — the protocol decoder never sees the damage.
    #[test]
    fn any_corrupted_request_byte_is_caught(
        req in arb_request(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let sealed = frame::seal_raw(&req.encode());
        prop_assert!(frame::check(&sealed).is_ok(), "the intact frame verifies");
        let mut buf = sealed.to_vec();
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= xor;
        prop_assert!(
            frame::check(&buf).is_err(),
            "flip at byte {pos}/{} must not verify",
            buf.len()
        );
    }

    #[test]
    fn any_corrupted_response_byte_is_caught(
        resp in arb_response(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let sealed = frame::seal_raw(&resp.encode());
        prop_assert!(frame::check(&sealed).is_ok());
        let mut buf = sealed.to_vec();
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= xor;
        prop_assert!(frame::check(&buf).is_err(), "flip at byte {pos}");
    }

    /// Arbitrary bytes through both decoders: errors are fine, panics
    /// and runaway allocations are not.
    #[test]
    fn random_bytes_never_panic_either_decoder(
        data in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = Request::decode(&data);
        let _ = Response::decode(&data);
    }
}
