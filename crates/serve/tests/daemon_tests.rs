//! In-process integration tests for the serve daemon: the full client
//! protocol over real TCP against a daemon with a local fleet. The
//! acceptance scenarios — two identical submissions collapsing into one
//! computation (the counters prove it) and a crash leaving only durable
//! specs behind that a restarted daemon completes bit-identically — run
//! here deterministically; the process-level kill -9 variant lives in
//! the workspace-level `daemon` e2e test.

use easyhps_core::{GridDims, TileRegion};
use easyhps_net::{crc32c, NetAddr};
use easyhps_runtime::remote::{JobSpec, RemoteProblem};
use easyhps_serve::{
    Admission, Client, Daemon, FleetSpec, JobState, JobStore, Response, ServeConfig,
};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "easyhps-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn editdist_spec(a: &[u8], b: &[u8], pps: u32) -> JobSpec {
    JobSpec::new(
        RemoteProblem::EditDistance {
            a: a.to_vec(),
            b: b.to_vec(),
        },
        GridDims::new(pps, pps),
        GridDims::new((pps / 2).max(1), (pps / 2).max(1)),
    )
}

/// The reference CRC a daemon result must match: the sequential solve's
/// canonical cell encoding, same digest the CLI prints as `matrix-crc:`.
fn reference_crc(spec: &JobSpec) -> u32 {
    let m = spec.problem.solve_sequential();
    let d = m.dims();
    crc32c(&m.encode_region(TileRegion::new(0, d.rows, 0, d.cols)))
}

fn local_config(listen: &str) -> ServeConfig {
    let mut cfg = ServeConfig::new(NetAddr::parse(listen).unwrap());
    cfg.fleet = FleetSpec::Local {
        slaves: 2,
        threads: Some(2),
    };
    cfg
}

fn counter(daemon: &Daemon, name: &str) -> u64 {
    use easyhps_obs::MetricValue;
    daemon
        .registry()
        .snapshot()
        .entries
        .iter()
        .find_map(|(n, v)| match (n == name, v) {
            (true, MetricValue::Counter(c)) => Some(*c),
            _ => None,
        })
        .unwrap_or(0)
}

fn wait_done(client: &mut Client, job: u64, deadline: Duration) -> easyhps_serve::JobResult {
    let t0 = Instant::now();
    loop {
        match client.status(job).unwrap() {
            Response::Status {
                state: JobState::Done(r),
                ..
            } => return r,
            Response::Status {
                state: JobState::Failed { error },
                ..
            } => panic!("job {job} failed: {error}"),
            _ if t0.elapsed() > deadline => panic!("job {job} not done in {deadline:?}"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// A repeat submission is answered from the content-addressed cache —
/// accepted as a cache hit, followed by an unsolicited `Done`, with the
/// sequential reference's exact CRC — and the counters show exactly one
/// computation.
#[test]
fn repeat_submission_hits_the_cache_bit_identically() {
    let daemon = Daemon::start(local_config("127.0.0.1:0")).unwrap();
    let spec = editdist_spec(b"the quick brown fox jumps", b"over the lazy dog", 6);
    let want = reference_crc(&spec);

    let mut c = Client::connect(daemon.addr()).unwrap();
    let Response::Accepted { job, admission } = c.submit("alice", true, spec.clone()).unwrap()
    else {
        panic!("first submission must be accepted");
    };
    assert_eq!(admission, Admission::New);
    let Response::Done { result, cached, .. } = c.read_response().unwrap() else {
        panic!("wait submission must end in Done");
    };
    assert!(!cached, "first computation is not a cache hit");
    assert_eq!(result.crc, want, "daemon result != sequential reference");
    let _ = job;

    let Response::Accepted { admission, .. } = c.submit("bob", false, spec).unwrap() else {
        panic!("second submission must be accepted");
    };
    assert_eq!(admission, Admission::CacheHit);
    let Response::Done { result, cached, .. } = c.read_response().unwrap() else {
        panic!("a cache hit is followed by its Done");
    };
    assert!(cached);
    assert_eq!(result.crc, want);

    assert_eq!(counter(&daemon, "serve_cache_hits"), 1);
    // Only the first submission was computed; the hit was answered from
    // the cache without ever reaching the scheduler.
    assert_eq!(counter(&daemon, "serve_jobs_completed"), 1);
    assert_eq!(counter(&daemon, "serve_jobs_submitted"), 2);
    let cells = counter(&daemon, "serve_cells_computed");
    assert_eq!(
        cells,
        spec_cells(b"the quick brown fox jumps", b"over the lazy dog"),
        "only ONE computation ran for two submissions"
    );
    daemon.stop();
}

fn spec_cells(a: &[u8], b: &[u8]) -> u64 {
    (a.len() as u64 + 1) * (b.len() as u64 + 1)
}

/// Two identical submissions in flight at once collapse into one
/// computation: the daemon runs a long job first so the identical pair
/// sits queued together, where the second coalesces onto the first.
#[test]
fn concurrent_identical_submissions_coalesce() {
    let daemon = Daemon::start(local_config("127.0.0.1:0")).unwrap();
    let mut c = Client::connect(daemon.addr()).unwrap();

    // A job big enough to hold the scheduler for a moment (fleet path,
    // above the batch threshold).
    let blocker = editdist_spec(&[b'a'; 300], &[b'b'; 290], 8);
    let Response::Accepted { job: j0, .. } = c.submit("alice", false, blocker).unwrap() else {
        panic!("blocker must be accepted");
    };

    // While it runs (or queues), two identical submissions arrive from
    // different tenants. Whatever the interleaving, the second of the
    // pair must coalesce onto the first — never compute twice.
    let spec = editdist_spec(b"coalesce me exactly once", b"coalesce me too", 4);
    let want = reference_crc(&spec);
    let Response::Accepted {
        job: j1,
        admission: a1,
    } = c.submit("alice", false, spec.clone()).unwrap()
    else {
        panic!("leader must be accepted");
    };
    assert_eq!(a1, Admission::New);
    let Response::Accepted {
        job: j2,
        admission: a2,
    } = c.submit("bob", false, spec).unwrap()
    else {
        panic!("follower must be accepted");
    };
    assert_eq!(
        a2,
        Admission::Coalesced,
        "identical in-flight job must coalesce"
    );
    assert_ne!(j1, j2, "coalesced submissions keep distinct job ids");

    for j in [j0, j1, j2] {
        wait_done(&mut c, j, Duration::from_secs(60));
    }
    let r1 = wait_done(&mut c, j1, Duration::from_secs(1));
    let r2 = wait_done(&mut c, j2, Duration::from_secs(1));
    assert_eq!(r1.crc, want);
    assert_eq!(r2.crc, want, "leader and follower see the same bits");
    assert_eq!(counter(&daemon, "serve_jobs_coalesced"), 1);
    assert_eq!(counter(&daemon, "serve_jobs_completed"), 3);
    daemon.stop();
}

/// Admission control rejects past the queue bound, and the refusal names
/// the limit and what to do about it.
#[test]
fn queue_full_rejection_names_the_limit() {
    let mut cfg = local_config("127.0.0.1:0");
    cfg.queue_cap = 1;
    let daemon = Daemon::start(cfg).unwrap();
    let mut c = Client::connect(daemon.addr()).unwrap();
    // A long fleet-path job keeps the scheduler busy; distinct small
    // jobs then pile into the one queue slot. The scheduler can drain
    // at most the first — by the third submission one must bounce.
    let blocker = editdist_spec(&[b'q'; 300], &[b'r'; 290], 8);
    let Response::Accepted { .. } = c.submit("alice", false, blocker).unwrap() else {
        panic!("blocker must be accepted");
    };
    let mut rejection = None;
    for i in 0..4u8 {
        let spec = editdist_spec(
            format!("distinct job {i}").as_bytes(),
            b"fills the queue",
            3,
        );
        match c.submit("alice", false, spec).unwrap() {
            Response::Rejected { reason } => {
                rejection = Some(reason);
                break;
            }
            Response::Accepted { .. } => {}
            other => panic!("unexpected answer: {other:?}"),
        }
    }
    let reason = rejection.expect("a 1-slot queue must reject one of 4 submissions");
    assert!(
        reason.contains("queue full"),
        "reason names the limit: {reason}"
    );
    assert!(reason.contains("retry"), "reason says what to do: {reason}");
    assert!(counter(&daemon, "serve_jobs_rejected") >= 1);
    daemon.stop();
}

/// A queued job can be cancelled; its id answers `status` as cancelled
/// and it never completes.
#[test]
fn queued_jobs_are_cancellable() {
    let daemon = Daemon::start(local_config("127.0.0.1:0")).unwrap();
    let mut c = Client::connect(daemon.addr()).unwrap();
    // Enough work ahead of it that the target is still queued when the
    // cancel arrives.
    let blocker = editdist_spec(&[b'x'; 300], &[b'y'; 280], 8);
    let Response::Accepted { job: j0, .. } = c.submit("alice", false, blocker).unwrap() else {
        panic!()
    };
    let spec = editdist_spec(b"cancel me", b"before i run", 3);
    let Response::Accepted { job, .. } = c.submit("alice", false, spec).unwrap() else {
        panic!()
    };
    match c.cancel(job).unwrap() {
        Response::Cancelled { ok: true, .. } => {
            let Response::Status { state, .. } = c.status(job).unwrap() else {
                panic!()
            };
            assert_eq!(state, JobState::Cancelled);
        }
        // The scheduler may have already grabbed it — then the cancel
        // honestly reports failure instead.
        Response::Cancelled { ok: false, .. } => {}
        other => panic!("unexpected cancel answer: {other:?}"),
    }
    wait_done(&mut c, j0, Duration::from_secs(60));
    daemon.stop();
}

/// A client outlives a daemon restart: its next request redials with
/// bounded exponential backoff and resends, so `status`/`submit --wait`
/// keep working across the restart instead of erroring out.
#[test]
fn client_survives_daemon_restart() {
    let daemon = Daemon::start(local_config("127.0.0.1:0")).unwrap();
    let addr = daemon.addr().clone();
    let mut c = Client::connect(&addr).unwrap();

    let spec = editdist_spec(b"a job before the restart", b"and after it too", 4);
    let want = reference_crc(&spec);
    let Response::Done { result, .. } = c.submit_wait("alice", spec.clone()).unwrap() else {
        panic!("wait submission must end in Done");
    };
    assert_eq!(result.crc, want);
    assert_eq!(c.retries(), 0, "healthy daemon needs no retries");

    // Restart the daemon on the same address; the client's TCP stream
    // is now dead.
    daemon.stop();
    let t0 = Instant::now();
    let daemon = loop {
        let mut cfg = local_config("127.0.0.1:0");
        cfg.listen = addr.clone();
        // The freed port may take a moment to rebind.
        match Daemon::start(cfg) {
            Ok(d) => break d,
            Err(e) if t0.elapsed() < Duration::from_secs(10) => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("rebinding {addr}: {e}"),
        }
    };

    // The same client object keeps working: the dead stream is detected,
    // redialed and the request resent.
    let Response::Status { state, .. } = c.status(1).unwrap() else {
        panic!("status must be answered after the restart");
    };
    assert_eq!(state, JobState::Unknown, "fresh daemon has no job 1");
    assert!(c.retries() >= 1, "the restart must have cost a retry");

    // And a full wait-submission still runs end to end, bit-identical.
    let Response::Done { result, .. } = c.submit_wait("alice", spec).unwrap() else {
        panic!("post-restart submission must end in Done");
    };
    assert_eq!(result.crc, want);
    daemon.stop();
}

/// The drain RPC reaches the fleet: rank 0 is refused, a slave rank is
/// accepted once the scheduler has published the fleet control, and
/// jobs submitted after the drain still complete (on the remaining
/// slave).
#[test]
fn drain_rpc_reaches_the_fleet() {
    let daemon = Daemon::start(local_config("127.0.0.1:0")).unwrap();
    let mut c = Client::connect(daemon.addr()).unwrap();

    let Response::Drained { ok, .. } = c.drain(0).unwrap() else {
        panic!("drain must be answered");
    };
    assert!(!ok, "rank 0 is the master and cannot be drained");

    // The scheduler publishes the control shortly after start.
    let t0 = Instant::now();
    loop {
        match c.drain(2).unwrap() {
            Response::Drained { ok: true, .. } => break,
            Response::Drained { ok: false, .. } if t0.elapsed() < Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected drain answer: {other:?}"),
        }
    }
    assert_eq!(counter(&daemon, "serve_drain_requests"), 1);

    // Big enough for the fleet path; it must complete without rank 2.
    let spec = editdist_spec(&[b'd'; 200], &[b'e'; 190], 8);
    let Response::Done { result, .. } = c.submit_wait("alice", spec.clone()).unwrap() else {
        panic!("post-drain submission must end in Done");
    };
    assert_eq!(result.crc, reference_crc(&spec));
    daemon.stop();
}

/// The crash-recovery acceptance scenario, in-process: a state directory
/// holding durably accepted but unfinished specs (exactly what a daemon
/// killed with -9 mid-queue leaves behind) is fully completed by a fresh
/// daemon on startup, bit-identical to the sequential references, with
/// duplicate specs re-coalescing rather than recomputing.
#[test]
fn restart_completes_accepted_jobs_bit_identically() {
    let dir = tmp_dir("recover");
    let specs = [
        editdist_spec(b"first accepted job", b"lost to a kill -9", 4),
        editdist_spec(b"second accepted job", b"also never ran", 4),
        // A duplicate of the first: recovery must coalesce or cache-hit
        // it, not compute it twice.
        editdist_spec(b"first accepted job", b"lost to a kill -9", 4),
    ];
    {
        // Simulate the dead daemon's durable footprint: specs persisted
        // at acceptance, no results.
        let store = JobStore::open(&dir).unwrap();
        for (i, spec) in specs.iter().enumerate() {
            store.persist_spec(i as u64 + 1, "alice", spec).unwrap();
        }
    }

    let mut cfg = local_config("127.0.0.1:0");
    cfg.state_dir = Some(dir.clone());
    let daemon = Daemon::start(cfg).unwrap();
    assert_eq!(counter(&daemon, "serve_jobs_recovered"), 3);

    let mut c = Client::connect(daemon.addr()).unwrap();
    for (i, spec) in specs.iter().enumerate() {
        let r = wait_done(&mut c, i as u64 + 1, Duration::from_secs(60));
        assert_eq!(
            r.crc,
            reference_crc(spec),
            "recovered job {} must match its sequential reference",
            i + 1
        );
    }
    // Two distinct problems — the duplicate pair computed once.
    let dup = counter(&daemon, "serve_jobs_coalesced") + counter(&daemon, "serve_cache_hits");
    assert_eq!(dup, 1, "the duplicate spec must not recompute");

    // A job submitted after recovery gets an id above every recovered
    // one — ids never collide across the crash.
    let Response::Accepted { job, .. } = c
        .submit("bob", true, editdist_spec(b"post-crash", b"job", 3))
        .unwrap()
    else {
        panic!()
    };
    assert!(job > 3);
    let Response::Done { .. } = c.read_response().unwrap() else {
        panic!()
    };
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
