//! End-to-end smoke tests: real seeds through the real runtime.
//!
//! The full sweep (hundreds of seeds, release mode) lives in CI's
//! `stress-matrix` job; here a handful of seeds keeps `cargo test` fast
//! while still proving the harness drives real runs and holds its
//! invariants.

use easyhps_core::ScheduleMode;
use easyhps_stress::{
    run_kill_seed, run_plan, run_seed, FaultClause, KillPlan, StressConfig, StressPlan, Verdict,
    Workload,
};
use std::time::Duration;

#[test]
fn a_handful_of_seeds_pass_every_invariant() {
    let cfg = StressConfig::default();
    for seed in [1u64, 7, 42] {
        let outcome = run_seed(seed, &cfg);
        assert!(
            outcome.passed(),
            "seed {seed} failed; repro: {}\nviolations:\n{}\nplan:\n{}",
            outcome.repro_line(),
            outcome.violations.join("\n"),
            outcome.plan.describe(),
        );
    }
}

#[test]
fn pinned_modes_all_work() {
    for mode in [
        ScheduleMode::Dynamic,
        ScheduleMode::BlockCyclic { block: 1 },
        ScheduleMode::ColumnWavefront,
    ] {
        let cfg = StressConfig {
            mode,
            ..StressConfig::default()
        };
        let outcome = run_seed(3, &cfg);
        assert!(
            outcome.passed(),
            "seed 3 under {mode:?} failed; repro: {}\nviolations:\n{}",
            outcome.repro_line(),
            outcome.violations.join("\n"),
        );
    }
}

#[test]
fn a_seed_replays_the_same_schedule_byte_for_byte() {
    let cfg = StressConfig::default();
    let a = StressPlan::from_seed(99, &cfg);
    let b = StressPlan::from_seed(99, &cfg);
    assert_eq!(a.describe(), b.describe());
    // And the run itself is reproducible at the invariant level: two runs
    // of the same plan agree on pass/fail.
    assert_eq!(run_plan(&a, &cfg).is_empty(), run_plan(&b, &cfg).is_empty());
}

// Regression for the static-mode liveness deadlock the harness caught on
// its first CI-scale sweep (`easyhps stress --seed 66 --mode cw
// --clauses 1,2`): a slave that crashed while holding no *overdue* task
// (its task had already been redispatched while it was stall-slow) was
// never judged for liveness, so it was never excluded — and the tiles it
// statically owned could never fall back to the surviving slave. The run
// hung forever. Fixed by sweeping heartbeat liveness for every slave on
// every FT poll, independent of the overtime queue.
#[test]
fn crash_with_nothing_overdue_does_not_deadlock_static_modes() {
    let plan = StressPlan {
        seed: 66,
        mode: ScheduleMode::ColumnWavefront,
        slaves: 2,
        workload: Workload::Swgg,
        len: 32,
        clauses: vec![
            FaultClause::Crash {
                rank: 1,
                after_sends: 37,
            },
            FaultClause::Stall {
                permille: 199,
                millis: 257,
            },
        ],
    };
    let cfg = StressConfig {
        mode: plan.mode,
        hang_timeout: Duration::from_secs(45),
        ..StressConfig::default()
    };
    let violations = run_plan(&plan, &cfg);
    assert!(violations.is_empty(), "{violations:?}");
}

// Regression for the transient-all-dead abort the harness caught next
// (`easyhps stress --seed 23`): one slave crashes early, the other is
// 98% heartbeat-starved. The eager liveness sweep briefly excluded both
// at once, and the master aborted with AllSlavesDead even though the
// starved slave was alive with a clean data link. The master now gives
// up only when every slave's channel is gone for good, and dispatches
// speculatively to silent-but-reachable slaves so a live one proves
// itself by ACKing (a hung one exhausts the retry budget and turns
// unreachable, so the run still fails fast).
#[test]
fn heartbeat_starvation_of_the_last_slave_is_survivable() {
    let plan = StressPlan {
        seed: 23,
        mode: ScheduleMode::Dynamic,
        slaves: 2,
        workload: Workload::Nussinov,
        len: 31,
        clauses: vec![
            FaultClause::LinkChaos {
                rank: 1,
                drop_pm: 29,
                dup_pm: 165,
                delay_pm: 249,
                delay_sends: 3,
            },
            FaultClause::StarveHeartbeats { rank: 2, pm: 980 },
            FaultClause::Crash {
                rank: 1,
                after_sends: 13,
            },
        ],
    };
    let cfg = StressConfig {
        hang_timeout: Duration::from_secs(45),
        ..StressConfig::default()
    };
    let violations = run_plan(&plan, &cfg);
    assert!(violations.is_empty(), "{violations:?}");
}

// A severed socket link must heal by redial: the slave keeps its state,
// reconnects under a bumped epoch, and the matrix still comes out
// bit-identical. Invariant 8 (`socket_reconnects >= 1` when a sever
// clause ran over a socket transport) makes a silent non-reconnect a
// failure rather than a vacuous pass.
#[test]
fn a_severed_tcp_link_heals_by_reconnecting() {
    let cfg = StressConfig {
        transport: easyhps_runtime::TransportKind::Tcp,
        hang_timeout: Duration::from_secs(60),
        ..StressConfig::default()
    };
    let plan = StressPlan {
        seed: 777,
        mode: ScheduleMode::Dynamic,
        slaves: 2,
        workload: Workload::Swgg,
        len: 48,
        clauses: vec![FaultClause::LinkSever {
            rank: 1,
            after_sends: 20,
            down_ms: 120,
        }],
    };
    let violations = run_plan(&plan, &cfg);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn an_empty_fault_schedule_is_a_clean_run() {
    let cfg = StressConfig::default();
    let plan = StressPlan::from_seed(5, &cfg).with_clauses(&[]);
    assert!(plan.clauses.is_empty());
    let violations = run_plan(&plan, &cfg);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn kill_master_seeds_recover_bit_identical() {
    let cfg = StressConfig::default();
    for seed in [2u64, 11] {
        let outcome = run_kill_seed(seed, &cfg);
        assert!(
            outcome.passed(),
            "seed {seed} failed; repro: {}\nviolations:\n{}\nplan: {:?}",
            outcome.repro_line(),
            outcome.violations.join("\n"),
            outcome.plan,
        );
        assert_eq!(outcome.verdict(), Verdict::Pass);
    }
}

#[test]
fn kill_plans_replay_byte_for_byte_and_vary() {
    assert_eq!(
        format!("{:?}", KillPlan::from_seed(7)),
        format!("{:?}", KillPlan::from_seed(7))
    );
    // The knobs actually vary across seeds: some plans chop the segment
    // tail, some corrupt a link, and the kill budget is not constant.
    let plans: Vec<KillPlan> = (0..80).map(KillPlan::from_seed).collect();
    assert!(plans.iter().any(|p| p.chop_tail.is_some()));
    assert!(plans.iter().any(|p| p.bitflip.is_some()));
    let budgets: std::collections::HashSet<u64> =
        plans.iter().map(|p| p.kill_after_sends).collect();
    assert!(budgets.len() > 10, "kill budgets vary ({})", budgets.len());
}

/// The verdict distinguishes a hang from an invariant failure, so the
/// one-line repro carries the failure class.
#[test]
fn hang_verdict_is_not_an_invariant_failure() {
    let cfg = StressConfig::default();
    let mut outcome = run_seed(1, &cfg);
    assert_eq!(outcome.verdict(), Verdict::Pass);
    outcome.violations = vec!["hang: no result within 60s (deadlock or livelock)".into()];
    assert_eq!(outcome.verdict(), Verdict::Hang);
    outcome.violations = vec!["matrix mismatch at (1, 1)".into()];
    assert_eq!(outcome.verdict(), Verdict::InvariantFailed);
}
