//! Executing one stress plan against the real runtime and checking the
//! run invariants.

use crate::plan::{mix64, FaultClause, StressConfig, StressPlan, Workload};
use crate::shrink::shrink;
use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{
    DpProblem, EditDistance, Lcs, NeedlemanWunsch, Nussinov, SmithWatermanGeneralGap,
};
use easyhps_net::FaultPlan;
use easyhps_runtime::testing::StallProblem;
use easyhps_runtime::{tags, EasyHps, RunOutput};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How a seed ended, coarsened for exit codes and the repro line. A hang
/// is not an invariant failure: the run produced *no* result, the stuck
/// thread was leaked, and the trace file is left on disk for inspection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every invariant held.
    Pass,
    /// The run finished (or failed) and violated at least one invariant.
    InvariantFailed,
    /// No result within the hang timeout — deadlock or livelock.
    Hang,
}

/// Result of stressing one seed.
#[derive(Clone, Debug)]
pub struct SeedOutcome {
    /// The schedule that was run.
    pub plan: StressPlan,
    /// Invariant violations (empty = the seed passed).
    pub violations: Vec<String>,
    /// When the seed failed and shrinking was on: the minimal set of
    /// clause indices that still reproduces a failure.
    pub minimized: Option<Vec<usize>>,
    /// Wall-clock time spent on this seed (shrinking included).
    pub elapsed: Duration,
}

impl SeedOutcome {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Coarse verdict: pass, invariant failure, or hang.
    pub fn verdict(&self) -> Verdict {
        if self.violations.is_empty() {
            Verdict::Pass
        } else if self.violations.iter().any(|v| v.starts_with("hang:")) {
            Verdict::Hang
        } else {
            Verdict::InvariantFailed
        }
    }

    /// The one-line repro command for a failing seed.
    pub fn repro_line(&self) -> String {
        let mode = match self.plan.mode {
            easyhps_core::ScheduleMode::Dynamic => "dynamic",
            easyhps_core::ScheduleMode::BlockCyclic { .. } => "bcw",
            easyhps_core::ScheduleMode::ColumnWavefront => "cw",
        };
        let clauses = match &self.minimized {
            Some(keep) if keep.len() < self.plan.clauses.len() => {
                if keep.is_empty() {
                    " --clauses none".to_string()
                } else {
                    format!(
                        " --clauses {}",
                        keep.iter()
                            .map(|i| i.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                }
            }
            _ => String::new(),
        };
        format!(
            "easyhps stress --seed {} --mode {mode}{clauses}",
            self.plan.seed
        )
    }
}

/// Derive the plan for `seed`, run it, and (on failure) minimize the
/// fault schedule.
pub fn run_seed(seed: u64, cfg: &StressConfig) -> SeedOutcome {
    let t0 = Instant::now();
    let plan = StressPlan::from_seed(seed, cfg);
    let violations = run_plan(&plan, cfg);
    let minimized = (cfg.shrink && !violations.is_empty() && !plan.clauses.is_empty()).then(|| {
        shrink(plan.clauses.len(), |keep| {
            !run_plan(&plan.with_clauses(keep), cfg).is_empty()
        })
    });
    SeedOutcome {
        plan,
        violations,
        minimized,
        elapsed: t0.elapsed(),
    }
}

/// Run one plan against the real runtime; return the invariant
/// violations (empty = pass).
pub fn run_plan(plan: &StressPlan, cfg: &StressConfig) -> Vec<String> {
    let n = plan.len;
    // Input sequences derive from the seed too, so the whole run is one
    // number.
    let s1 = mix64(plan.seed ^ 0xa5a5);
    let s2 = mix64(plan.seed ^ 0x5a5a);
    match plan.workload {
        Workload::EditDist => drive(
            plan,
            cfg,
            EditDistance::new(
                random_sequence(Alphabet::Dna, n as usize, s1),
                random_sequence(Alphabet::Dna, n as usize + 3, s2),
            ),
        ),
        Workload::Swgg => drive(
            plan,
            cfg,
            SmithWatermanGeneralGap::dna(
                random_sequence(Alphabet::Dna, n as usize, s1),
                random_sequence(Alphabet::Dna, n as usize + 3, s2),
            ),
        ),
        Workload::Nussinov => drive(
            plan,
            cfg,
            Nussinov::new(random_sequence(Alphabet::Rna, n as usize + 6, s1)),
        ),
        Workload::Nw => drive(
            plan,
            cfg,
            NeedlemanWunsch::dna(
                random_sequence(Alphabet::Dna, n as usize, s1),
                random_sequence(Alphabet::Dna, n as usize + 3, s2),
            ),
        ),
        Workload::Lcs => drive(
            plan,
            cfg,
            Lcs::new(
                random_sequence(Alphabet::Dna, n as usize, s1),
                random_sequence(Alphabet::Dna, n as usize + 3, s2),
            ),
        ),
    }
}

/// Per-rank [`FaultPlan`]s folded from the plan's clauses. Index = rank
/// (0 = master); `None` = clean link.
fn rank_fault_plans(plan: &StressPlan) -> Vec<Option<FaultPlan>> {
    let mut plans: Vec<Option<FaultPlan>> = vec![None; plan.slaves + 1];
    fn touch(plans: &mut [Option<FaultPlan>], seed: u64, rank: u32) -> &mut FaultPlan {
        plans[rank as usize].get_or_insert_with(|| FaultPlan {
            // Distinct deterministic stream per rank, all from one seed.
            seed: mix64(seed ^ (0x1000 + rank as u64)),
            ..FaultPlan::default()
        })
    }
    for clause in &plan.clauses {
        match *clause {
            FaultClause::LinkChaos {
                rank,
                drop_pm,
                dup_pm,
                delay_pm,
                delay_sends,
            } => {
                let p = touch(&mut plans, plan.seed, rank);
                p.drop_prob = drop_pm as f64 / 1000.0;
                p.dup_prob = dup_pm as f64 / 1000.0;
                p.delay_prob = delay_pm as f64 / 1000.0;
                p.delay_sends = delay_sends;
            }
            FaultClause::StarveHeartbeats { rank, pm } => {
                touch(&mut plans, plan.seed, rank)
                    .tag_drops
                    .push((tags::HEARTBEAT, pm as f64 / 1000.0));
            }
            FaultClause::Crash { rank, after_sends } => {
                touch(&mut plans, plan.seed, rank).die_after_sends = Some(after_sends);
            }
            FaultClause::Stall { .. } => {} // handled at the kernel level
            FaultClause::BitFlip { rank, pm } => {
                touch(&mut plans, plan.seed, rank).bitflip_prob = pm as f64 / 1000.0;
            }
            FaultClause::LinkSever {
                rank,
                after_sends,
                down_ms,
            } => {
                touch(&mut plans, plan.seed, rank).link_sever = Some(easyhps_net::LinkSever {
                    at: after_sends,
                    down_for: Duration::from_millis(down_ms),
                });
            }
        }
    }
    plans
}

static TRACE_NONCE: AtomicU64 = AtomicU64::new(0);

fn drive<P>(plan: &StressPlan, cfg: &StressConfig, problem: P) -> Vec<String>
where
    P: DpProblem + Clone + Send + 'static,
{
    let reference = problem.solve_sequential();
    let pattern = problem.pattern();

    let (stall_pm, stall_ms) = plan
        .clauses
        .iter()
        .find_map(|c| match c {
            FaultClause::Stall { permille, millis } => Some((*permille, *millis)),
            _ => None,
        })
        .unwrap_or((0, 0));
    let stalled = StallProblem::new(
        problem,
        mix64(plan.seed ^ 0x57a11),
        stall_pm,
        Duration::from_millis(stall_ms),
    );

    let trace_path: PathBuf = std::env::temp_dir().join(format!(
        "easyhps-stress-{}-{}-{}.trace.json",
        std::process::id(),
        plan.seed,
        TRACE_NONCE.fetch_add(1, Ordering::Relaxed)
    ));

    let has_sever = plan
        .clauses
        .iter()
        .any(|c| matches!(c, FaultClause::LinkSever { .. }));
    let socket_transport = cfg.transport != easyhps_runtime::TransportKind::InProcess;

    let mut hps = EasyHps::new(stalled)
        .slaves(plan.slaves)
        .threads_per_slave(2)
        .process_partition((8, 8))
        .thread_partition((4, 4))
        .process_mode(plan.mode)
        .transport(cfg.transport)
        .task_timeout(Duration::from_millis(300))
        .heartbeat(Duration::from_millis(20), Duration::from_millis(150))
        .metrics(true)
        .trace_out(&trace_path);
    if has_sever && socket_transport {
        // A severed socket must heal by redial: the slave keeps its rank
        // and resumes under a bumped fleet epoch. (In-process channel
        // links cannot drop; the clause is inert there.)
        hps = hps.reconnect(Duration::from_secs(10));
    }
    for (rank, fp) in rank_fault_plans(plan).into_iter().enumerate() {
        let Some(fp) = fp else { continue };
        hps = if rank == 0 {
            hps.inject_master_fault(fp)
        } else {
            hps.inject_fault(rank - 1, fp)
        };
    }
    let n_tiles = hps.model().master_dag().len() as u64;
    // A crashed slave must end excluded; a fully heartbeat-starved one
    // legitimately may (it is indistinguishable from a dead one, and
    // exclusion is the correct response) — either clause waives the
    // no-permanent-exclusion liveness invariant.
    let exclusion_expected = plan.clauses.iter().any(|c| {
        matches!(
            c,
            FaultClause::Crash { .. } | FaultClause::StarveHeartbeats { .. }
        )
    });

    // Watchdog: the run happens on its own thread; if no result appears
    // within the hang timeout, the seed fails (the stuck thread is
    // leaked — the harness process is about to report and exit anyway).
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(hps.run());
    });
    let result = match rx.recv_timeout(cfg.hang_timeout) {
        Ok(r) => r,
        Err(_) => {
            return vec![format!(
                "hang: no result within {:?} (deadlock or livelock)",
                cfg.hang_timeout
            )];
        }
    };

    let mut v: Vec<String> = Vec::new();
    let out: RunOutput<P::Cell> = match result {
        Ok(out) => out,
        Err(e) => {
            let _ = std::fs::remove_file(&trace_path);
            return vec![format!("run failed: {e}")];
        }
    };

    // Invariant 1: the matrix is bit-identical to the sequential kernel.
    let mut mismatches = 0u64;
    for pos in reference.dims().iter() {
        if pattern.contains(pos) && out.matrix.at(pos) != reference.at(pos) {
            mismatches += 1;
            if mismatches <= 3 {
                v.push(format!(
                    "matrix mismatch at {pos}: got {:?}, sequential says {:?}",
                    out.matrix.at(pos),
                    reference.at(pos)
                ));
            }
        }
    }
    if mismatches > 3 {
        v.push(format!("... {mismatches} mismatched cells total"));
    }

    // Invariant 2: every tile accepted exactly once, none lost.
    let m = &out.report.master;
    if m.completed != n_tiles {
        v.push(format!(
            "tile accounting: completed={} but the DAG has {n_tiles} tiles",
            m.completed
        ));
    }

    // Invariant 3: stats conservation — every dispatch ends in exactly
    // one of {accepted completion, cancelled-and-redispatched}.
    if m.dispatched != (m.completed - m.resumed) + m.redispatched {
        v.push(format!(
            "stats conservation: dispatched={} != (completed={} - resumed={}) \
             + redispatched={}",
            m.dispatched, m.completed, m.resumed, m.redispatched
        ));
    }

    // Invariant 4: one master-observed span per accepted tile.
    if out.report.trace.spans.len() as u64 != m.completed - m.resumed {
        v.push(format!(
            "trace spans: {} spans for {} accepted completions",
            out.report.trace.spans.len(),
            m.completed - m.resumed
        ));
    }

    // Invariant 5: without a planned crash or heartbeat starvation,
    // nobody ends up permanently dead (exclusions must heal via
    // re-admission). A link sever that actually fired also waives this:
    // when the outage outlasts the rest of the run, the survivor
    // finishes the matrix while the severed rank is still excluded for
    // silence — correct behaviour, indistinguishable at run end from a
    // silent death. A sever clause that never triggered waives nothing.
    let severs_fired = out
        .metrics
        .as_ref()
        .map_or(0, |reg| reg.snapshot().counter_total("net_links_severed"));
    if !exclusion_expected && severs_fired == 0 && m.dead_slaves != 0 {
        v.push(format!(
            "liveness: {} slave(s) permanently excluded with no crash or \
             heartbeat-starvation clause in the plan",
            m.dead_slaves
        ));
    }

    // Invariant 6: the emitted Chrome trace passes the structural
    // validator and records exactly the accepted tiles.
    match std::fs::read_to_string(&trace_path) {
        Ok(text) => match easyhps_obs::validate_chrome_trace(&text) {
            Ok(summary) => {
                let tiles = summary.count("tile") as u64;
                if tiles != m.completed - m.resumed {
                    v.push(format!(
                        "trace: {tiles} 'tile' events for {} accepted \
                         completions",
                        m.completed - m.resumed
                    ));
                }
            }
            Err(e) => v.push(format!("trace validation: {e}")),
        },
        Err(e) => v.push(format!("trace file unreadable: {e}")),
    }
    let _ = std::fs::remove_file(&trace_path);

    // Invariant 7: a corrupting link never goes unnoticed — if the fault
    // layer flipped bits in a meaningful number of outgoing messages, the
    // CRC-guarded framing must have caught at least one (a corrupted
    // frame that *verifies* would instead surface as a matrix mismatch,
    // but this catches silent accounting bugs too). The >= 3 floor skips
    // runs where the seeded flips never actually fired.
    if let Some(metrics) = &out.metrics {
        let snap = metrics.snapshot();
        let injected = snap.counter_total("net_msgs_corrupted");
        let caught = snap.counter_total("net_frames_corrupt");
        if injected >= 3 && caught == 0 {
            v.push(format!(
                "corruption defense: {injected} messages were bit-flipped \
                 but zero frames failed the CRC check"
            ));
        }

        // Invariant 8: a link sever that actually *fired* over a socket
        // transport must heal by redial — `net_links_severed` proves the
        // cable was pulled (a clause whose send threshold was never
        // reached is vacuous, like invariant 7's un-fired bit flips),
        // and the reconnect counter proves the link came back; the
        // bit-identical matrix above already vouches for the resumed
        // slave's work. No tile computed under a stale epoch is ever
        // accepted: the master's epoch fence rejects late DONEs from a
        // pre-sever incarnation, and any fence leak would surface as
        // invariant 2/3 double-accounting.
        let severed = snap.counter_total("net_links_severed");
        if has_sever
            && socket_transport
            && severed >= 1
            && snap.counter_total("socket_reconnects") == 0
        {
            v.push(format!(
                "reconnect: {severed} link sever(s) fired over a socket \
                 transport but socket_reconnects stayed 0 (the severed \
                 link never healed by redial)"
            ));
        }
    }

    v
}
