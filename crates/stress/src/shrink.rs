//! Greedy delta-debugging over fault clauses.

/// Minimize a failing clause set: repeatedly try dropping one clause and
/// keep the removal whenever `still_fails` says the failure persists.
/// `still_fails` receives the *original* indices of the clauses to keep
/// active, so the result is directly usable as a `--clauses` list. The
/// returned set is 1-minimal: removing any single remaining clause makes
/// the failure disappear (up to nondeterminism in the probe).
pub fn shrink<F>(n_clauses: usize, mut still_fails: F) -> Vec<usize>
where
    F: FnMut(&[usize]) -> bool,
{
    let mut live: Vec<usize> = (0..n_clauses).collect();
    let mut i = 0;
    while i < live.len() {
        let candidate: Vec<usize> = live.iter().copied().filter(|&x| x != live[i]).collect();
        if still_fails(&candidate) {
            live = candidate; // clause i was irrelevant; keep it dropped
        } else {
            i += 1; // clause i is load-bearing; move on
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_guilty_clause() {
        // Failure iff clause 3 is present.
        let calls = std::cell::Cell::new(0usize);
        let min = shrink(6, |keep| {
            calls.set(calls.get() + 1);
            keep.contains(&3)
        });
        assert_eq!(min, vec![3]);
        assert!(calls.get() <= 6, "one probe per clause");
    }

    #[test]
    fn keeps_a_conjunction_of_clauses() {
        // Failure needs both 1 and 4.
        let min = shrink(6, |keep| keep.contains(&1) && keep.contains(&4));
        assert_eq!(min, vec![1, 4]);
    }

    #[test]
    fn empty_when_failure_is_clause_independent() {
        // Fails no matter what (an interleaving-only bug).
        let min = shrink(5, |_| true);
        assert!(min.is_empty());
    }

    #[test]
    fn zero_clauses_is_fine() {
        assert!(shrink(0, |_| true).is_empty());
    }
}
