//! The kill-master drill: run to a seeded progress point with durable
//! checkpointing on, kill the master, then restart from the checkpoint
//! *directory* — not from any in-memory state — and check that recovery
//! is exact.
//!
//! Each seed derives a [`KillPlan`]: workload, cluster shape, the
//! master's send budget (its endpoint dies mid-run, which is what a
//! process kill looks like from the network), the checkpoint cadence,
//! an optional torn-tail chop (bytes truncated from the newest segment
//! file, simulating a crash mid-append), and an optional corrupting
//! link. The recovery invariants:
//!
//! 1. the resumed run completes and its matrix is bit-identical to the
//!    sequential kernel;
//! 2. `resumed` equals exactly the tiles the directory held
//!    (`Checkpoint::load_dir`), and `master_tiles_restored` agrees;
//! 3. stats conservation still holds across the restart:
//!    `dispatched == (completed - resumed) + redispatched`;
//! 4. with a corrupting link, flipped frames are caught by the CRC
//!    check, never silently decoded.

use crate::plan::{mix64, StressConfig, Workload};
use crate::run::Verdict;
use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{
    DpProblem, EditDistance, Lcs, NeedlemanWunsch, Nussinov, SmithWatermanGeneralGap,
};
use easyhps_net::FaultPlan;
use easyhps_runtime::{Checkpoint, CheckpointPolicy, EasyHps, RunOutput, RuntimeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A seeded crash-recovery schedule. Like `StressPlan`, deriving one
/// from its seed is pure: the same seed reproduces byte for byte.
#[derive(Clone, Debug)]
pub struct KillPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// Slave count (the master is rank 0 on top).
    pub slaves: usize,
    /// Which DP problem to run.
    pub workload: Workload,
    /// Input sequence length.
    pub len: u32,
    /// The master endpoint dies after this many send attempts.
    pub kill_after_sends: u64,
    /// Checkpoint flush cadence, in accepted tiles.
    pub every_tiles: u64,
    /// Segment count that triggers compaction.
    pub compact_after: usize,
    /// Truncate this many bytes off the newest segment file after the
    /// kill — a crash mid-append. The torn tail must be discarded, the
    /// prefix must survive.
    pub chop_tail: Option<u32>,
    /// Corrupting link: `(rank, permille)` — deterministic bit flips on
    /// that rank's outgoing frames, in both the killed and resumed run.
    pub bitflip: Option<(u32, u32)>,
}

impl KillPlan {
    /// Derive the whole schedule from one seed. Draws are ordered and
    /// appended-only: new knobs must draw *after* every existing one so
    /// old seeds keep their schedules.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ 0x6b17));
        let slaves = rng.random_range(2..=3usize);
        let workload = match rng.random_range(0..3u32) {
            0 => Workload::EditDist,
            1 => Workload::Swgg,
            _ => Workload::Nussinov,
        };
        let len = 26 + rng.random_range(0..8u32);
        // 25-ish tiles need well over 50 sends (ASSIGNs + acks) to
        // finish; this budget ranges from "dies almost immediately" to
        // "dies near the end".
        let kill_after_sends = rng.random_range(10..=120u64);
        let every_tiles = rng.random_range(1..=3u64);
        let compact_after = rng.random_range(2..=4usize);
        let chop_tail = rng.random_bool(0.5).then(|| rng.random_range(1..=40u32));
        let bitflip = rng.random_bool(0.35).then(|| {
            (
                rng.random_range(0..=slaves as u32),
                rng.random_range(5..=15u32),
            )
        });
        Self {
            seed,
            slaves,
            workload,
            len,
            kill_after_sends,
            every_tiles,
            compact_after,
            chop_tail,
            bitflip,
        }
    }
}

/// Result of one kill-master seed.
#[derive(Clone, Debug)]
pub struct KillOutcome {
    /// The schedule that was run.
    pub plan: KillPlan,
    /// Invariant violations (empty = the seed passed).
    pub violations: Vec<String>,
    /// Wall-clock time spent on this seed.
    pub elapsed: Duration,
}

impl KillOutcome {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Coarse verdict: pass, invariant failure, or hang.
    pub fn verdict(&self) -> Verdict {
        if self.violations.is_empty() {
            Verdict::Pass
        } else if self.violations.iter().any(|v| v.starts_with("hang:")) {
            Verdict::Hang
        } else {
            Verdict::InvariantFailed
        }
    }

    /// The one-line repro command for a failing seed.
    pub fn repro_line(&self) -> String {
        format!("easyhps stress --kill-master --seed {}", self.plan.seed)
    }
}

/// Derive the kill plan for `seed` and run the two-phase drill.
pub fn run_kill_seed(seed: u64, cfg: &StressConfig) -> KillOutcome {
    let t0 = Instant::now();
    let plan = KillPlan::from_seed(seed);
    let n = plan.len as usize;
    let s1 = mix64(seed ^ 0xa5a5);
    let s2 = mix64(seed ^ 0x5a5a);
    let violations = match plan.workload {
        Workload::EditDist => drive_kill(
            &plan,
            cfg,
            EditDistance::new(
                random_sequence(Alphabet::Dna, n, s1),
                random_sequence(Alphabet::Dna, n + 3, s2),
            ),
        ),
        Workload::Swgg => drive_kill(
            &plan,
            cfg,
            SmithWatermanGeneralGap::dna(
                random_sequence(Alphabet::Dna, n, s1),
                random_sequence(Alphabet::Dna, n + 3, s2),
            ),
        ),
        Workload::Nussinov => drive_kill(
            &plan,
            cfg,
            Nussinov::new(random_sequence(Alphabet::Rna, n + 6, s1)),
        ),
        Workload::Nw => drive_kill(
            &plan,
            cfg,
            NeedlemanWunsch::dna(
                random_sequence(Alphabet::Dna, n, s1),
                random_sequence(Alphabet::Dna, n + 3, s2),
            ),
        ),
        Workload::Lcs => drive_kill(
            &plan,
            cfg,
            Lcs::new(
                random_sequence(Alphabet::Dna, n, s1),
                random_sequence(Alphabet::Dna, n + 3, s2),
            ),
        ),
    };
    KillOutcome {
        plan,
        violations,
        elapsed: t0.elapsed(),
    }
}

static DIR_NONCE: AtomicU64 = AtomicU64::new(0);

/// Deterministic bit-flip plan for one rank.
fn flip_plan(seed: u64, rank: u32, pm: u32) -> FaultPlan {
    FaultPlan {
        seed: mix64(seed ^ (0x2000 + rank as u64)),
        ..FaultPlan::default()
    }
    .with_bitflips(pm as f64 / 1000.0)
}

/// Run `hps` on its own thread with a hang watchdog. `None` = no result
/// within the timeout (the stuck thread is leaked, as in `drive`).
fn run_watched<P>(
    hps: EasyHps<P>,
    timeout: Duration,
) -> Option<Result<RunOutput<P::Cell>, RuntimeError>>
where
    P: DpProblem + Clone + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(hps.run());
    });
    rx.recv_timeout(timeout).ok()
}

/// Truncate `bytes` off the end of the newest (highest-index) segment
/// file — a torn append. No-op when the directory has no segments.
fn chop_newest_segment(dir: &Path, bytes: u32) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let newest = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-"))
        })
        .max();
    if let Some(path) = newest {
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&path) {
            let len = f.metadata().map(|m| m.len()).unwrap_or(0);
            let _ = f.set_len(len.saturating_sub(bytes as u64));
        }
    }
}

fn drive_kill<P>(plan: &KillPlan, cfg: &StressConfig, problem: P) -> Vec<String>
where
    P: DpProblem + Clone + Send + 'static,
{
    let reference = problem.solve_sequential();
    let pattern = problem.pattern();
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "easyhps-stress-kill-{}-{}-{}",
        std::process::id(),
        plan.seed,
        DIR_NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    let policy = CheckpointPolicy::new(&dir)
        .with_every_tiles(plan.every_tiles)
        .with_compact_after(plan.compact_after);

    let build = |p: P| {
        let mut hps = EasyHps::new(p)
            .slaves(plan.slaves)
            .threads_per_slave(2)
            .process_partition((8, 8))
            .thread_partition((4, 4))
            .transport(cfg.transport)
            .task_timeout(Duration::from_millis(300))
            .heartbeat(Duration::from_millis(20), Duration::from_millis(150))
            .checkpoint(policy.clone());
        if let Some((rank, pm)) = plan.bitflip {
            let fp = flip_plan(plan.seed, rank, pm);
            hps = if rank == 0 {
                hps.inject_master_fault(fp)
            } else {
                hps.inject_fault(rank as usize - 1, fp)
            };
        }
        hps
    };

    let mut v = Vec::new();

    // Phase 1: run with a send budget on the master's endpoint — it dies
    // mid-run, exactly like a process kill as seen from the network.
    let mut kill_fp = FaultPlan::die_after(plan.kill_after_sends);
    if let Some((0, pm)) = plan.bitflip {
        kill_fp = kill_fp.with_bitflips(pm as f64 / 1000.0);
        kill_fp.seed = mix64(plan.seed ^ 0x2000);
    }
    let hps1 = build(problem.clone()).inject_master_fault(kill_fp);
    match run_watched(hps1, cfg.hang_timeout) {
        None => {
            v.push(format!(
                "hang: killed run produced no result within {:?} \
                 (death must surface as an error, not a wedge)",
                cfg.hang_timeout
            ));
            return v;
        }
        // A generous budget can let the run finish — fine; the directory
        // then holds the full run and the resume phase still exercises
        // load + replay.
        Some(Ok(out)) => {
            if out.matrix != reference {
                v.push("killed run finished but its matrix is wrong".into());
            }
        }
        Some(Err(_)) => {} // the expected mid-run death
    }

    // A crash can tear the append in progress: chop the newest segment
    // and require the prefix to survive.
    if let Some(bytes) = plan.chop_tail {
        chop_newest_segment(&dir, bytes);
    }

    // Phase 2: recover from the directory alone.
    let cp = match Checkpoint::load_dir(&dir) {
        Ok(cp) => cp,
        Err(e) => {
            v.push(format!("checkpoint directory unreadable after kill: {e}"));
            let _ = std::fs::remove_dir_all(&dir);
            return v;
        }
    };
    let restored = cp.as_ref().map_or(0, |c| c.finished_len()) as u64;

    let mut hps2 = build(problem).metrics(true);
    if let Some(cp) = cp {
        hps2 = hps2.resume_from(cp);
    }
    let n_tiles = hps2.model().master_dag().len() as u64;
    let out = match run_watched(hps2, cfg.hang_timeout) {
        None => {
            v.push(format!(
                "hang: resumed run produced no result within {:?}",
                cfg.hang_timeout
            ));
            return v;
        }
        Some(Err(e)) => {
            v.push(format!("resumed run failed: {e}"));
            let _ = std::fs::remove_dir_all(&dir);
            return v;
        }
        Some(Ok(out)) => out,
    };

    // Invariant 1: bit-identical recovery.
    let mut mismatches = 0u64;
    for pos in reference.dims().iter() {
        if pattern.contains(pos) && out.matrix.at(pos) != reference.at(pos) {
            mismatches += 1;
            if mismatches <= 3 {
                v.push(format!(
                    "matrix mismatch at {pos} after resume: got {:?}, \
                     sequential says {:?}",
                    out.matrix.at(pos),
                    reference.at(pos)
                ));
            }
        }
    }
    if mismatches > 3 {
        v.push(format!("... {mismatches} mismatched cells total"));
    }

    // Invariant 2: the resumed run skipped exactly the durable tiles.
    let m = &out.report.master;
    if m.completed != n_tiles {
        v.push(format!(
            "tile accounting: completed={} but the DAG has {n_tiles} tiles",
            m.completed
        ));
    }
    if m.resumed != restored {
        v.push(format!(
            "resume accounting: the directory held {restored} tiles but \
             the run resumed {}",
            m.resumed
        ));
    }

    // Invariant 3: stats conservation across the restart.
    if m.dispatched != (m.completed - m.resumed) + m.redispatched {
        v.push(format!(
            "stats conservation: dispatched={} != (completed={} - \
             resumed={}) + redispatched={}",
            m.dispatched, m.completed, m.resumed, m.redispatched
        ));
    }

    if let Some(metrics) = &out.metrics {
        let snap = metrics.snapshot();
        // Invariant 2b: the restored-from-disk counter agrees.
        if snap.counter("master_tiles_restored") != Some(restored) {
            v.push(format!(
                "master_tiles_restored={:?} but the directory held \
                 {restored} tiles",
                snap.counter("master_tiles_restored")
            ));
        }
        // Invariant 4: bit flips never decode — they get caught.
        let injected = snap.counter_total("net_msgs_corrupted");
        let caught = snap.counter_total("net_frames_corrupt");
        if injected >= 3 && caught == 0 {
            v.push(format!(
                "corruption defense: {injected} messages were bit-flipped \
                 but zero frames failed the CRC check"
            ));
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    v
}
