//! Seed-derived stress plans.
//!
//! A [`StressPlan`] is a pure function of one `u64` seed (plus the
//! optional pins in [`StressConfig`]): the workload, cluster shape and
//! every fault clause are drawn from a `StdRng` seeded with it, in a
//! fixed order. Re-deriving the plan for the same seed therefore
//! reproduces the exact fault schedule, byte for byte — which is what
//! makes a one-line `easyhps stress --seed N` repro possible. All clause
//! parameters are integers (probabilities in permille) so the canonical
//! description renders identically everywhere.

use easyhps_core::ScheduleMode;
use easyhps_runtime::TransportKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Duration;

/// Which DP kernel a stress run drives.
///
/// The first three are drawn from the seed; `Nw` and `Lcs` are pin-only
/// (`--workload nw|lcs`) so their addition does not perturb the draw
/// order that existing seeds' schedules depend on. They exist to sweep
/// the invariants with the anti-diagonal SIMD kernels selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Edit distance (dense wavefront, bit-parallel Myers kernel).
    EditDist,
    /// Smith-Waterman with general gaps (wavefront + column/row lookback).
    Swgg,
    /// Nussinov RNA folding (triangular pattern, sparse).
    Nussinov,
    /// Needleman-Wunsch global alignment (anti-diagonal SIMD kernel).
    /// Pin-only: never drawn from a seed.
    Nw,
    /// Longest common subsequence (anti-diagonal SIMD kernel). Pin-only:
    /// never drawn from a seed.
    Lcs,
}

impl Workload {
    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "editdist" => Ok(Self::EditDist),
            "swgg" => Ok(Self::Swgg),
            "nussinov" => Ok(Self::Nussinov),
            "nw" => Ok(Self::Nw),
            "lcs" => Ok(Self::Lcs),
            other => Err(format!(
                "unknown workload '{other}' (editdist|swgg|nussinov|nw|lcs)"
            )),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::EditDist => "editdist",
            Self::Swgg => "swgg",
            Self::Nussinov => "nussinov",
            Self::Nw => "nw",
            Self::Lcs => "lcs",
        })
    }
}

/// One adversarial ingredient of a stress schedule. Probabilities are in
/// permille so plans describe (and reproduce) exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultClause {
    /// Chaos on one rank's outgoing link: uniform drop, duplicate
    /// delivery, and delayed/reordered delivery (held for `delay_sends`
    /// subsequent sends).
    LinkChaos {
        /// Rank whose outgoing traffic is affected (0 = master).
        rank: u32,
        /// Drop probability, permille.
        drop_pm: u32,
        /// Duplicate probability, permille.
        dup_pm: u32,
        /// Delay probability, permille.
        delay_pm: u32,
        /// Sends a delayed message is held for.
        delay_sends: u32,
    },
    /// Drop this slave rank's HEARTBEAT frames specifically — the master
    /// must judge it by its remaining traffic (exclusion + re-admission).
    StarveHeartbeats {
        /// Slave rank (1-based).
        rank: u32,
        /// Heartbeat drop probability, permille.
        pm: u32,
    },
    /// Kill this slave rank's endpoint after it has attempted
    /// `after_sends` sends — a mid-run crash.
    Crash {
        /// Slave rank (1-based).
        rank: u32,
        /// Send attempts before death.
        after_sends: u64,
    },
    /// Stall a seeded subset of kernel invocations — slow or frozen
    /// compute threads (drives timeout-redistribution and stale DONEs).
    Stall {
        /// Per-call stall probability, permille.
        permille: u32,
        /// Stall duration, milliseconds.
        millis: u64,
    },
    /// Flip one seeded bit in a fraction of this rank's outgoing frames —
    /// a corrupting link. The CRC-guarded framing must catch every flip
    /// and recover by retransmission; a flip that decodes is a bug.
    BitFlip {
        /// Rank whose outgoing traffic is corrupted (0 = master).
        rank: u32,
        /// Corruption probability, permille.
        pm: u32,
    },
    /// Hard-close this slave rank's socket after `after_sends` send
    /// attempts, keeping it dark for `down_ms` — a severed link. Under a
    /// socket transport with a reconnect window the slave must redial,
    /// resume its rank under a bumped fleet epoch, and the run must
    /// still produce the exact matrix (meaningless on the in-process
    /// transport, whose channel links cannot drop).
    LinkSever {
        /// Slave rank (1-based) whose link is severed.
        rank: u32,
        /// Send attempts before the sever.
        after_sends: u64,
        /// How long the link stays down, milliseconds.
        down_ms: u64,
    },
}

impl fmt::Display for FaultClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LinkChaos {
                rank,
                drop_pm,
                dup_pm,
                delay_pm,
                delay_sends,
            } => write!(
                f,
                "link-chaos rank={rank} drop={drop_pm}pm dup={dup_pm}pm \
                 delay={delay_pm}pm delay-sends={delay_sends}"
            ),
            Self::StarveHeartbeats { rank, pm } => {
                write!(f, "starve-heartbeats rank={rank} pm={pm}")
            }
            Self::Crash { rank, after_sends } => {
                write!(f, "crash rank={rank} after-sends={after_sends}")
            }
            Self::Stall { permille, millis } => {
                write!(f, "stall permille={permille} millis={millis}")
            }
            Self::BitFlip { rank, pm } => {
                write!(f, "bit-flip rank={rank} pm={pm}")
            }
            Self::LinkSever {
                rank,
                after_sends,
                down_ms,
            } => {
                write!(
                    f,
                    "link-sever rank={rank} after-sends={after_sends} down-ms={down_ms}"
                )
            }
        }
    }
}

/// User pins on plan derivation (CLI flags). Anything left `None` is
/// drawn from the seed.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Process-level schedule mode of the run.
    pub mode: ScheduleMode,
    /// Pin the slave count (otherwise 2..=3 from the seed).
    pub slaves: Option<usize>,
    /// Pin the workload (otherwise drawn from the seed).
    pub workload: Option<Workload>,
    /// Kill a run (and fail the seed) after this long with no result.
    pub hang_timeout: Duration,
    /// Minimize failing fault schedules before reporting.
    pub shrink: bool,
    /// Transport carrying the virtual cluster's traffic. Not part of the
    /// seed draw (a pin, like `mode`): the same schedule can be replayed
    /// over channels, TCP or Unix sockets to compare behaviour.
    pub transport: TransportKind,
}

impl Default for StressConfig {
    fn default() -> Self {
        Self {
            mode: ScheduleMode::Dynamic,
            slaves: None,
            workload: None,
            hang_timeout: Duration::from_secs(60),
            shrink: true,
            transport: TransportKind::InProcess,
        }
    }
}

/// A fully derived stress schedule: everything a run needs, reproducible
/// from `(seed, mode, pins)`.
#[derive(Clone, Debug)]
pub struct StressPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// Process-level schedule mode.
    pub mode: ScheduleMode,
    /// Number of slaves.
    pub slaves: usize,
    /// Kernel under test.
    pub workload: Workload,
    /// Input sequence length.
    pub len: u32,
    /// The adversarial ingredients, in derivation order. Clause indices
    /// are stable: `--clauses 0,2` re-derives this list and keeps only
    /// those positions.
    pub clauses: Vec<FaultClause>,
}

/// SplitMix64 finalizer — used to give each rank's fault stream its own
/// sub-seed without consuming draws from the plan RNG.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl StressPlan {
    /// Derive the plan for `seed` under `cfg`. Pure: same inputs, same
    /// plan, always.
    pub fn from_seed(seed: u64, cfg: &StressConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Draw order is part of the reproducibility contract: slaves,
        // workload, len, then clauses. Pinned values still consume their
        // draws so `--slaves 3` does not reshuffle the rest of the plan.
        let drawn_slaves = rng.random_range(2..=3usize);
        let slaves = cfg.slaves.unwrap_or(drawn_slaves);
        let drawn_workload = match rng.random_range(0..3u32) {
            0 => Workload::EditDist,
            1 => Workload::Swgg,
            _ => Workload::Nussinov,
        };
        let workload = cfg.workload.unwrap_or(drawn_workload);
        let len = 26 + rng.random_range(0..8u32);

        let mut clauses = Vec::new();
        // Per-link chaos, master (rank 0) included.
        for rank in 0..=slaves as u32 {
            if !rng.random_bool(0.5) {
                continue;
            }
            let drop_pm = rng.random_range(0..=200u32);
            let dup_pm = rng.random_range(0..=250u32);
            let delay_pm = rng.random_range(0..=250u32);
            let delay_sends = rng.random_range(1..=3u32);
            if drop_pm + dup_pm + delay_pm == 0 {
                continue;
            }
            clauses.push(FaultClause::LinkChaos {
                rank,
                drop_pm,
                dup_pm,
                delay_pm,
                delay_sends,
            });
        }
        // At most one heartbeat starvation.
        if rng.random_bool(0.25) {
            clauses.push(FaultClause::StarveHeartbeats {
                rank: rng.random_range(1..=slaves as u32),
                pm: rng.random_range(600..=1000u32),
            });
        }
        // At most one crash, and only with a surviving slave left.
        if slaves >= 2 && rng.random_bool(0.25) {
            clauses.push(FaultClause::Crash {
                rank: rng.random_range(1..=slaves as u32),
                after_sends: rng.random_range(10..=120u64),
            });
        }
        // Seeded kernel stalls.
        if rng.random_bool(0.5) {
            clauses.push(FaultClause::Stall {
                permille: rng.random_range(30..=200u32),
                millis: rng.random_range(40..=300u64),
            });
        }
        // Corrupting link on one rank. Drawn *after* every pre-existing
        // clause so old seeds keep their schedules byte for byte.
        if rng.random_bool(0.35) {
            clauses.push(FaultClause::BitFlip {
                rank: rng.random_range(0..=slaves as u32),
                pm: rng.random_range(5..=15u32),
            });
        }
        // Severed link on one slave. Drawn after BitFlip — same
        // byte-for-byte contract for pre-existing seeds.
        if rng.random_bool(0.3) {
            clauses.push(FaultClause::LinkSever {
                rank: rng.random_range(1..=slaves as u32),
                after_sends: rng.random_range(10..=120u64),
                down_ms: rng.random_range(50..=400u64),
            });
        }

        Self {
            seed,
            mode: cfg.mode,
            slaves,
            workload,
            len,
            clauses,
        }
    }

    /// The same plan with only the clauses at `keep` (original indices)
    /// left active — the shrinker's probe.
    pub fn with_clauses(&self, keep: &[usize]) -> Self {
        let mut p = self.clone();
        p.clauses = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(i, _)| keep.contains(i))
            .map(|(_, c)| c.clone())
            .collect();
        p
    }

    /// Canonical, byte-exact description of the full schedule. Equal
    /// descriptions mean equal fault schedules.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "seed={} mode={} workload={} len={} slaves={}\n",
            self.seed,
            self.mode.name(),
            self.workload,
            self.len,
            self.slaves
        );
        if self.clauses.is_empty() {
            s.push_str("  (no fault clauses: interleaving stress only)\n");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            let _ = writeln!(s, "  clause {i}: {c}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan_byte_for_byte() {
        let cfg = StressConfig::default();
        for seed in 0..200u64 {
            let a = StressPlan::from_seed(seed, &cfg);
            let b = StressPlan::from_seed(seed, &cfg);
            assert_eq!(a.describe(), b.describe(), "seed {seed} must replay");
            assert_eq!(a.clauses, b.clauses);
        }
    }

    #[test]
    fn seeds_cover_every_clause_kind() {
        let cfg = StressConfig::default();
        let (mut chaos, mut starve, mut crash, mut stall, mut flip, mut sever) = (0, 0, 0, 0, 0, 0);
        for seed in 0..300u64 {
            for c in StressPlan::from_seed(seed, &cfg).clauses {
                match c {
                    FaultClause::LinkChaos { .. } => chaos += 1,
                    FaultClause::StarveHeartbeats { .. } => starve += 1,
                    FaultClause::Crash { .. } => crash += 1,
                    FaultClause::Stall { .. } => stall += 1,
                    FaultClause::BitFlip { .. } => flip += 1,
                    FaultClause::LinkSever { .. } => sever += 1,
                }
            }
        }
        assert!(chaos > 100, "link chaos common ({chaos})");
        assert!(starve > 20, "starvation present ({starve})");
        assert!(crash > 20, "crashes present ({crash})");
        assert!(stall > 50, "stalls present ({stall})");
        assert!(flip > 50, "bit flips present ({flip})");
        assert!(sever > 50, "link severs present ({sever})");
    }

    #[test]
    fn pinning_slaves_does_not_reshuffle_the_rest() {
        let free = StressPlan::from_seed(11, &StressConfig::default());
        let pinned = StressPlan::from_seed(
            11,
            &StressConfig {
                slaves: Some(free.slaves),
                ..StressConfig::default()
            },
        );
        assert_eq!(free.describe(), pinned.describe());
    }

    #[test]
    fn with_clauses_keeps_original_positions() {
        let cfg = StressConfig::default();
        let plan = (0..100u64)
            .map(|s| StressPlan::from_seed(s, &cfg))
            .find(|p| p.clauses.len() >= 3)
            .expect("some seed has 3+ clauses");
        let sub = plan.with_clauses(&[0, 2]);
        assert_eq!(sub.clauses.len(), 2);
        assert_eq!(sub.clauses[0], plan.clauses[0]);
        assert_eq!(sub.clauses[1], plan.clauses[2]);
    }

    #[test]
    fn crash_clauses_never_target_the_master_or_exceed_one() {
        let cfg = StressConfig::default();
        for seed in 0..500u64 {
            let plan = StressPlan::from_seed(seed, &cfg);
            let crashes: Vec<_> = plan
                .clauses
                .iter()
                .filter_map(|c| match c {
                    FaultClause::Crash { rank, .. } => Some(*rank),
                    _ => None,
                })
                .collect();
            assert!(crashes.len() <= 1, "seed {seed}: at most one crash");
            for r in crashes {
                assert!(
                    r >= 1 && r <= plan.slaves as u32,
                    "seed {seed}: crash rank {r} is a slave"
                );
                assert!(plan.slaves >= 2, "seed {seed}: a slave survives");
            }
        }
    }
}
