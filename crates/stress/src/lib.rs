//! # easyhps-stress — seeded schedule-stress harness for the real runtime
//!
//! Property-based fault drilling for the master–slave runtime: one `u64`
//! seed deterministically derives a whole adversarial schedule — per-link
//! drop/duplicate/delay(reorder) chaos (master link included), heartbeat
//! starvation, a mid-run slave crash, seeded kernel stalls, a corrupting
//! link (seeded bit flips) — which is then run against the **real**
//! runtime (real threads, real wire protocol, not the virtual-time
//! simulator in `crates/sim`). After the run, invariants are checked:
//!
//! 1. the matrix is bit-identical to the sequential kernel;
//! 2. every DAG tile was accepted exactly once (none lost or
//!    double-credited);
//! 3. stats conservation: `dispatched == (completed - resumed) +
//!    redispatched`;
//! 4. one master-observed trace span per accepted tile;
//! 5. with no crash or heartbeat-starvation clause, no slave stays
//!    permanently excluded;
//! 6. the emitted Chrome trace passes the `easyhps-obs` structural
//!    validator and records exactly the accepted tiles;
//! 7. when the fault layer flipped bits in a meaningful number of
//!    messages, the CRC-guarded framing caught at least one.
//!
//! The kill-master drill ([`run_kill_seed`]) is the crash-recovery
//! counterpart: each seed checkpoints to disk, kills the master mid-run,
//! optionally tears the newest segment file, restarts from the directory
//! alone, and requires bit-identical recovery with the restored-tile
//! accounting conserved.
//!
//! A failing seed prints a one-line repro (`easyhps stress --seed N ...`)
//! and a greedy delta-debugging shrinker minimizes the fault schedule
//! first, so the repro carries only the clauses that matter. Re-deriving a
//! plan from its seed is pure: the schedule reproduces byte for byte.
//!
//! ```no_run
//! use easyhps_stress::{run_seed, StressConfig};
//!
//! let outcome = run_seed(42, &StressConfig::default());
//! assert!(outcome.passed(), "{}\n{}", outcome.repro_line(),
//!         outcome.violations.join("\n"));
//! ```

mod kill;
mod plan;
mod run;
mod shrink;

pub use kill::{run_kill_seed, KillOutcome, KillPlan};
pub use plan::{FaultClause, StressConfig, StressPlan, Workload};
pub use run::{run_plan, run_seed, SeedOutcome, Verdict};
pub use shrink::shrink;
