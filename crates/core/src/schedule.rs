//! Scheduling policies: the dynamic worker pool and the static baselines.

use crate::geom::GridPos;

/// How computable sub-tasks are matched to workers, at either level of the
/// hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScheduleMode {
    /// EasyHPS dynamic worker pool: any idle worker takes the top of the
    /// computable sub-task stack.
    Dynamic,
    /// Block-cyclic based wavefront (Liu & Schmidt, the paper's baseline):
    /// tile column bands of width `block` are assigned to workers
    /// round-robin, and a worker only ever executes its own tiles — even if
    /// it sits idle while other workers' tiles are computable (the paper's
    /// "fatal situation").
    BlockCyclic {
        /// Width, in tiles, of one column band.
        block: u32,
    },
    /// Column-based wavefront: the special case of block-cyclic where
    /// `block = ceil(tile_cols / workers)`, i.e. each worker owns one
    /// contiguous band of columns.
    ColumnWavefront,
}

impl ScheduleMode {
    /// Static owner of `tile`, given the abstract DAG's column count and
    /// the number of workers. `None` for [`ScheduleMode::Dynamic`] (no
    /// static ownership).
    pub fn static_owner(&self, tile: GridPos, tile_cols: u32, workers: u32) -> Option<u32> {
        assert!(workers > 0, "need at least one worker");
        match *self {
            ScheduleMode::Dynamic => None,
            ScheduleMode::BlockCyclic { block } => {
                let block = block.max(1);
                Some((tile.col / block) % workers)
            }
            ScheduleMode::ColumnWavefront => {
                let block = tile_cols.div_ceil(workers).max(1);
                Some((tile.col / block) % workers)
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleMode::Dynamic => "dynamic",
            ScheduleMode::BlockCyclic { .. } => "block-cyclic-wavefront",
            ScheduleMode::ColumnWavefront => "column-wavefront",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_has_no_static_owner() {
        assert_eq!(
            ScheduleMode::Dynamic.static_owner(GridPos::new(0, 5), 10, 3),
            None
        );
    }

    #[test]
    fn block_cyclic_round_robins_bands() {
        let m = ScheduleMode::BlockCyclic { block: 2 };
        // cols 0,1 -> w0; 2,3 -> w1; 4,5 -> w2; 6,7 -> w0 ...
        assert_eq!(m.static_owner(GridPos::new(0, 0), 8, 3), Some(0));
        assert_eq!(m.static_owner(GridPos::new(3, 1), 8, 3), Some(0));
        assert_eq!(m.static_owner(GridPos::new(0, 2), 8, 3), Some(1));
        assert_eq!(m.static_owner(GridPos::new(0, 5), 8, 3), Some(2));
        assert_eq!(m.static_owner(GridPos::new(0, 6), 8, 3), Some(0));
    }

    #[test]
    fn column_wavefront_is_contiguous_bands() {
        let m = ScheduleMode::ColumnWavefront;
        // 9 columns over 3 workers -> bands of 3.
        for c in 0..9 {
            assert_eq!(m.static_owner(GridPos::new(0, c), 9, 3), Some(c / 3));
        }
    }

    #[test]
    fn zero_block_is_clamped() {
        let m = ScheduleMode::BlockCyclic { block: 0 };
        assert_eq!(m.static_owner(GridPos::new(0, 3), 8, 2), Some(1));
    }

    #[test]
    fn every_tile_has_an_owner_in_range() {
        for mode in [
            ScheduleMode::BlockCyclic { block: 3 },
            ScheduleMode::ColumnWavefront,
        ] {
            for c in 0..50 {
                let o = mode.static_owner(GridPos::new(0, c), 50, 7).unwrap();
                assert!(o < 7);
            }
        }
    }
}
