//! Execution traces and ASCII Gantt rendering.
//!
//! Both the real runtime (`easyhps-runtime`, wall-clock spans) and the
//! cluster simulator (`easyhps-sim`, virtual-time spans) record one
//! [`Span`] per master occupancy chunk and per tile execution;
//! [`Trace::gantt`] renders the schedule as a text Gantt chart — enough to
//! *see* wavefront ramp-up, node idling under static policies, and
//! fault-tolerance gaps without leaving the terminal.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One contiguous busy interval on a lane (a node, a thread, the master).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Lane identifier (lanes sort lexicographically in the chart).
    pub lane: String,
    /// Short label (first character is drawn inside the bar).
    pub label: String,
    /// Start, virtual ns.
    pub start_ns: u64,
    /// End, virtual ns.
    pub end_ns: u64,
}

/// A recorded schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// All spans, in recording order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span.
    pub fn record(
        &mut self,
        lane: impl Into<String>,
        label: impl Into<String>,
        start_ns: u64,
        end_ns: u64,
    ) {
        debug_assert!(end_ns >= start_ns);
        self.spans.push(Span {
            lane: lane.into(),
            label: label.into(),
            start_ns,
            end_ns,
        });
    }

    /// Latest end time over all spans.
    pub fn horizon_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0)
    }

    /// Whether any two spans on the same lane overlap in time — for the
    /// cluster simulator this would mean one node executing two tiles at
    /// once, i.e. a scheduling bug.
    pub fn has_lane_overlaps(&self) -> bool {
        let mut by_lane: BTreeMap<&str, Vec<(u64, u64)>> = BTreeMap::new();
        for s in &self.spans {
            by_lane
                .entry(&s.lane)
                .or_default()
                .push((s.start_ns, s.end_ns));
        }
        for intervals in by_lane.values_mut() {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                if w[1].0 < w[0].1 {
                    return true;
                }
            }
        }
        false
    }

    /// Total busy time per lane, sorted by lane name.
    pub fn busy_by_lane(&self) -> Vec<(String, u64)> {
        let mut map: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.lane.clone()).or_default() += s.end_ns - s.start_ns;
        }
        map.into_iter().collect()
    }

    /// Render as an ASCII Gantt chart `width` characters wide. Busy cells
    /// draw the first character of the span label (`#` when empty); when
    /// several spans land on the same cell the earliest keeps it. True
    /// time overlaps (a scheduling bug in the cluster simulator) are
    /// detected by [`Trace::has_lane_overlaps`], not by the rendering.
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let horizon = self.horizon_ns();
        let mut out = String::new();
        if horizon == 0 {
            out.push_str("(empty trace)\n");
            return out;
        }
        let lane_names: Vec<String> = {
            let mut names: Vec<String> = self.spans.iter().map(|s| s.lane.clone()).collect();
            names.sort();
            names.dedup();
            names
        };
        let name_w = lane_names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);
        let scale = |t: u64| ((t as u128 * width as u128) / horizon as u128) as usize;

        for lane in &lane_names {
            let mut row = vec![b'.'; width];
            for s in self.spans.iter().filter(|s| &s.lane == lane) {
                let a = scale(s.start_ns).min(width - 1);
                // Every span paints at least one cell.
                let b = scale(s.end_ns).clamp(a + 1, width);
                let ch = s.label.bytes().next().unwrap_or(b'#');
                for cell in &mut row[a..b] {
                    if *cell == b'.' {
                        *cell = ch;
                    }
                }
            }
            let _ = writeln!(
                out,
                "{lane:>name_w$} |{}|",
                String::from_utf8(row).expect("ASCII row")
            );
        }
        let _ = writeln!(
            out,
            "{:>name_w$} 0{:>w$}",
            "",
            format!("{:.3}s", horizon as f64 / 1e9),
            w = width
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_accounting() {
        let mut t = Trace::new();
        t.record("node0", "a", 0, 100);
        t.record("node0", "b", 150, 250);
        t.record("node1", "c", 0, 50);
        assert_eq!(t.horizon_ns(), 250);
        assert_eq!(
            t.busy_by_lane(),
            vec![("node0".to_string(), 200), ("node1".to_string(), 50)]
        );
    }

    #[test]
    fn gantt_renders_lanes_and_gaps() {
        let mut t = Trace::new();
        t.record("master", "a", 0, 500);
        t.record("node0", "x", 500, 1000);
        let g = t.gantt(20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "two lanes + time axis");
        assert!(lines[0].starts_with("master"));
        assert!(lines[0].contains('a'));
        assert!(lines[1].contains('x'));
        assert!(lines[1].contains('.'), "idle first half");
    }

    #[test]
    fn overlap_detection() {
        let mut t = Trace::new();
        t.record("n", "a", 0, 100);
        t.record("n", "b", 50, 150);
        assert!(t.has_lane_overlaps());
        let mut t = Trace::new();
        t.record("n", "a", 0, 100);
        t.record("n", "b", 100, 150); // touching is not overlapping
        t.record("m", "c", 50, 80); // other lane
        assert!(!t.has_lane_overlaps());
    }

    #[test]
    fn empty_trace_renders() {
        assert!(Trace::new().gantt(40).contains("empty"));
    }

    #[test]
    fn tiny_spans_still_visible() {
        let mut t = Trace::new();
        t.record("n", "a", 0, 1);
        t.record("n", "b", 999_999, 1_000_000);
        let g = t.gantt(20);
        assert!(g.contains('a'));
        assert!(g.contains('b'));
    }
}
