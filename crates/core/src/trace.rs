//! Execution traces and ASCII Gantt rendering.
//!
//! Both the real runtime (`easyhps-runtime`, wall-clock spans) and the
//! cluster simulator (`easyhps-sim`, virtual-time spans) record one
//! [`Span`] per master occupancy chunk and per tile execution;
//! [`Trace::gantt`] renders the schedule as a text Gantt chart — enough to
//! *see* wavefront ramp-up, node idling under static policies, and
//! fault-tolerance gaps without leaving the terminal.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Compare lane names "naturally": runs of ASCII digits compare by
/// numeric value, everything else byte-wise — so `slave2` sorts before
/// `slave10` instead of after it.
pub fn natural_cmp(a: &str, b: &str) -> Ordering {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].is_ascii_digit() && b[j].is_ascii_digit() {
            let ai = i + a[i..].iter().take_while(|c| c.is_ascii_digit()).count();
            let bj = j + b[j..].iter().take_while(|c| c.is_ascii_digit()).count();
            // Compare the digit runs numerically without parsing into a
            // fixed-width integer: strip leading zeros, then longer run
            // wins, then byte-wise (equal lengths, so lexicographic =
            // numeric).
            let da = &a[i..ai];
            let db = &b[j..bj];
            let sa = &da[da.iter().take_while(|c| **c == b'0').count()..];
            let sb = &db[db.iter().take_while(|c| **c == b'0').count()..];
            let ord = sa.len().cmp(&sb.len()).then_with(|| sa.cmp(sb));
            if ord != Ordering::Equal {
                return ord;
            }
            // Equal values: fewer leading zeros first, for a total order.
            let ord = da.len().cmp(&db.len());
            if ord != Ordering::Equal {
                return ord;
            }
            (i, j) = (ai, bj);
        } else {
            let ord = a[i].cmp(&b[j]);
            if ord != Ordering::Equal {
                return ord;
            }
            (i, j) = (i + 1, j + 1);
        }
    }
    (a.len() - i).cmp(&(b.len() - j))
}

/// One contiguous busy interval on a lane (a node, a thread, the master).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Lane identifier (lanes sort in natural order in the chart:
    /// `slave2` before `slave10`).
    pub lane: String,
    /// Short label (first character is drawn inside the bar).
    pub label: String,
    /// Start, virtual ns.
    pub start_ns: u64,
    /// End, virtual ns.
    pub end_ns: u64,
}

/// A recorded schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// All spans, in recording order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span.
    pub fn record(
        &mut self,
        lane: impl Into<String>,
        label: impl Into<String>,
        start_ns: u64,
        end_ns: u64,
    ) {
        debug_assert!(end_ns >= start_ns);
        self.spans.push(Span {
            lane: lane.into(),
            label: label.into(),
            start_ns,
            end_ns,
        });
    }

    /// Latest end time over all spans.
    pub fn horizon_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0)
    }

    /// Whether any two spans on the same lane overlap in time — for the
    /// cluster simulator this would mean one node executing two tiles at
    /// once, i.e. a scheduling bug.
    pub fn has_lane_overlaps(&self) -> bool {
        let mut by_lane: BTreeMap<&str, Vec<(u64, u64)>> = BTreeMap::new();
        for s in &self.spans {
            by_lane
                .entry(&s.lane)
                .or_default()
                .push((s.start_ns, s.end_ns));
        }
        for intervals in by_lane.values_mut() {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                if w[1].0 < w[0].1 {
                    return true;
                }
            }
        }
        false
    }

    /// Total busy time per lane, in natural lane order.
    pub fn busy_by_lane(&self) -> Vec<(String, u64)> {
        let mut map: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.lane.clone()).or_default() += s.end_ns - s.start_ns;
        }
        let mut out: Vec<(String, u64)> = map.into_iter().collect();
        out.sort_by(|(a, _), (b, _)| natural_cmp(a, b));
        out
    }

    /// Distinct lane names in natural order (`slave2` before `slave10`) —
    /// the row order of [`Trace::gantt`] and of trace exports.
    pub fn lane_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.spans.iter().map(|s| s.lane.clone()).collect();
        names.sort_by(|a, b| natural_cmp(a, b));
        names.dedup();
        names
    }

    /// Render as an ASCII Gantt chart `width` characters wide. Busy cells
    /// draw the first character of the span label (`#` when empty); when
    /// several spans land on the same cell the earliest keeps it. True
    /// time overlaps (a scheduling bug in the cluster simulator) are
    /// detected by [`Trace::has_lane_overlaps`], not by the rendering.
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let horizon = self.horizon_ns();
        let mut out = String::new();
        if horizon == 0 {
            out.push_str("(empty trace)\n");
            return out;
        }
        let lane_names = self.lane_names();
        let name_w = lane_names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);
        let scale = |t: u64| ((t as u128 * width as u128) / horizon as u128) as usize;

        for lane in &lane_names {
            let mut row = vec![b'.'; width];
            for s in self.spans.iter().filter(|s| &s.lane == lane) {
                let a = scale(s.start_ns).min(width - 1);
                // Every span paints at least one cell.
                let b = scale(s.end_ns).clamp(a + 1, width);
                let ch = s.label.bytes().next().unwrap_or(b'#');
                for cell in &mut row[a..b] {
                    if *cell == b'.' {
                        *cell = ch;
                    }
                }
            }
            let _ = writeln!(
                out,
                "{lane:>name_w$} |{}|",
                String::from_utf8(row).expect("ASCII row")
            );
        }
        let _ = writeln!(
            out,
            "{:>name_w$} 0{:>w$}",
            "",
            format!("{:.3}s", horizon as f64 / 1e9),
            w = width
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_accounting() {
        let mut t = Trace::new();
        t.record("node0", "a", 0, 100);
        t.record("node0", "b", 150, 250);
        t.record("node1", "c", 0, 50);
        assert_eq!(t.horizon_ns(), 250);
        assert_eq!(
            t.busy_by_lane(),
            vec![("node0".to_string(), 200), ("node1".to_string(), 50)]
        );
    }

    #[test]
    fn gantt_renders_lanes_and_gaps() {
        let mut t = Trace::new();
        t.record("master", "a", 0, 500);
        t.record("node0", "x", 500, 1000);
        let g = t.gantt(20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "two lanes + time axis");
        assert!(lines[0].starts_with("master"));
        assert!(lines[0].contains('a'));
        assert!(lines[1].contains('x'));
        assert!(lines[1].contains('.'), "idle first half");
    }

    #[test]
    fn overlap_detection() {
        let mut t = Trace::new();
        t.record("n", "a", 0, 100);
        t.record("n", "b", 50, 150);
        assert!(t.has_lane_overlaps());
        let mut t = Trace::new();
        t.record("n", "a", 0, 100);
        t.record("n", "b", 100, 150); // touching is not overlapping
        t.record("m", "c", 50, 80); // other lane
        assert!(!t.has_lane_overlaps());
    }

    #[test]
    fn empty_trace_renders() {
        assert!(Trace::new().gantt(40).contains("empty"));
    }

    #[test]
    fn lanes_sort_naturally_not_lexicographically() {
        // Regression: `slave10` used to render before `slave2` because
        // lanes sorted lexicographically.
        let mut t = Trace::new();
        for w in [10u32, 2, 1, 0, 11] {
            t.record(
                format!("slave{w}"),
                "#",
                u64::from(w) * 10,
                u64::from(w) * 10 + 5,
            );
        }
        assert_eq!(
            t.lane_names(),
            vec!["slave0", "slave1", "slave2", "slave10", "slave11"]
        );
        let g = t.gantt(40);
        let rows: Vec<&str> = g.lines().collect();
        assert!(rows[2].trim_start().starts_with("slave2"), "{g}");
        assert!(rows[3].trim_start().starts_with("slave10"), "{g}");
        // busy_by_lane shares the order.
        let lanes: Vec<String> = t.busy_by_lane().into_iter().map(|(l, _)| l).collect();
        assert_eq!(lanes, t.lane_names());
    }

    #[test]
    fn natural_cmp_edge_cases() {
        use std::cmp::Ordering::*;
        assert_eq!(natural_cmp("slave2", "slave10"), Less);
        assert_eq!(natural_cmp("slave10", "slave10"), Equal);
        assert_eq!(natural_cmp("a2b10", "a2b9"), Greater);
        assert_eq!(natural_cmp("node", "node1"), Less);
        assert_eq!(natural_cmp("a2", "a02"), Less, "leading zeros break ties");
        assert_eq!(
            natural_cmp("a02", "a1"),
            Greater,
            "but compare by value first"
        );
        assert_eq!(natural_cmp("master", "slave0"), Less);
        // Digit runs longer than u64 still compare correctly.
        assert_eq!(
            natural_cmp("x99999999999999999999998", "x99999999999999999999999"),
            Less
        );
    }

    #[test]
    fn tiny_spans_still_visible() {
        let mut t = Trace::new();
        t.record("n", "a", 0, 1);
        t.record("n", "b", 999_999, 1_000_000);
        let g = t.gantt(20);
        assert!(g.contains('a'));
        assert!(g.contains('b'));
    }
}
