//! Materialized task DAGs built from a [`DagPattern`].
//!
//! A [`TaskDag`] is the concrete, indexed form of a pattern: vertices are
//! numbered densely (skipping absent grid positions), and each vertex stores
//! its predecessor, successor and data-dependency adjacency. This is the
//! structure the schedulers and the parser operate on; it corresponds to the
//! paper's `dag_pattern_element` linked list plus the derived `pos_cnt` /
//! `pre_cnt` fields (Table I).

use crate::error::PatternError;
use crate::geom::{GridDims, GridPos};
use crate::pattern::DagPattern;

/// Dense vertex identifier within one [`TaskDag`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One vertex of a task DAG: a sub-task after task partition. Mirrors the
/// paper's `DAGElement` (prefix degree, postfix list, data-dependency list).
#[derive(Clone, Debug)]
pub struct TaskVertex {
    /// Grid position of this vertex in the pattern.
    pub pos: GridPos,
    /// Topological predecessors (`pre_cnt` is their count).
    pub preds: Vec<VertexId>,
    /// Topological successors (`pos_cnt` is their count, `posfix_id` the
    /// list).
    pub succs: Vec<VertexId>,
    /// Data-communication-level dependencies (`data_prefix_id`); superset of
    /// nothing in particular but always transitively dominated by `preds`.
    pub data_deps: Vec<VertexId>,
}

/// A materialized DAG of sub-tasks.
#[derive(Clone, Debug)]
pub struct TaskDag {
    dims: GridDims,
    /// Dense vertex table.
    vertices: Vec<TaskVertex>,
    /// Grid position -> dense id (u32::MAX = absent).
    index: Vec<u32>,
}

impl TaskDag {
    /// Materialize `pattern` into an indexed DAG.
    ///
    /// Cost is `O(vertices x degree)`; for 2D/1D and 2D/2D patterns the
    /// data-dependency lists make this quadratic in the grid side, which is
    /// fine for tile-level DAGs (the only place the runtime materializes
    /// them).
    pub fn from_pattern(pattern: &(impl DagPattern + ?Sized)) -> Self {
        let dims = pattern.dims();
        let cells = dims.area() as usize;
        let mut index = vec![u32::MAX; cells];
        let mut vertices = Vec::new();

        for pos in dims.iter() {
            if pattern.contains(pos) {
                index[dims.linear(pos)] = vertices.len() as u32;
                vertices.push(TaskVertex {
                    pos,
                    preds: Vec::new(),
                    succs: Vec::new(),
                    data_deps: Vec::new(),
                });
            }
        }

        let mut buf = Vec::new();
        for vid in 0..vertices.len() {
            let pos = vertices[vid].pos;

            buf.clear();
            pattern.predecessors(pos, &mut buf);
            let mut preds = Vec::with_capacity(buf.len());
            for &dep in &buf {
                debug_assert!(
                    pattern.contains(dep),
                    "pattern emitted absent pred {dep} for {pos}"
                );
                let did = index[dims.linear(dep)];
                debug_assert_ne!(did, u32::MAX);
                if !preds.contains(&VertexId(did)) {
                    preds.push(VertexId(did));
                }
            }
            for p in &preds {
                vertices[p.index()].succs.push(VertexId(vid as u32));
            }

            buf.clear();
            pattern.data_dependencies(pos, &mut buf);
            let mut data = Vec::with_capacity(buf.len());
            for &dep in &buf {
                debug_assert!(
                    pattern.contains(dep),
                    "pattern emitted absent data dep {dep} for {pos}"
                );
                let did = index[dims.linear(dep)];
                debug_assert_ne!(did, u32::MAX);
                if !data.contains(&VertexId(did)) {
                    data.push(VertexId(did));
                }
            }

            vertices[vid].preds = preds;
            vertices[vid].data_deps = data;
        }

        Self {
            dims,
            vertices,
            index,
        }
    }

    /// Grid extent of the underlying pattern.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Number of vertices (present sub-tasks).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the DAG has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Dense id of the vertex at `pos`, if present.
    pub fn vertex_at(&self, pos: GridPos) -> Option<VertexId> {
        if !self.dims.contains(pos) {
            return None;
        }
        match self.index[self.dims.linear(pos)] {
            u32::MAX => None,
            id => Some(VertexId(id)),
        }
    }

    /// Vertex data by id. Panics on out-of-range ids.
    pub fn vertex(&self, id: VertexId) -> &TaskVertex {
        &self.vertices[id.index()]
    }

    /// Iterate all vertices with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &TaskVertex)> {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (VertexId(i as u32), v))
    }

    /// Ids of all source vertices (no predecessors).
    pub fn sources(&self) -> Vec<VertexId> {
        self.iter()
            .filter(|(_, v)| v.preds.is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// Total number of topological edges.
    pub fn edge_count(&self) -> usize {
        self.vertices.iter().map(|v| v.preds.len()).sum()
    }

    /// A topological order of all vertices (Kahn). Returns an error on
    /// cycles. Ties are broken by dense id, so the order is deterministic.
    pub fn topological_order(&self) -> Result<Vec<VertexId>, PatternError> {
        let mut indeg: Vec<u32> = self.vertices.iter().map(|v| v.preds.len() as u32).collect();
        let mut order = Vec::with_capacity(self.len());
        let mut frontier: Vec<VertexId> = self
            .iter()
            .filter(|(_, v)| v.preds.is_empty())
            .map(|(id, _)| id)
            .collect();
        // Pop smallest id first for determinism.
        frontier.sort_unstable_by(|a, b| b.cmp(a));

        while let Some(v) = frontier.pop() {
            order.push(v);
            for &s in &self.vertices[v.index()].succs {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    // Insert keeping the stack sorted descending (small ids
                    // pop first). Frontiers are small; linear insert is fine.
                    let at = frontier
                        .binary_search_by(|x| s.cmp(x))
                        .unwrap_or_else(|e| e);
                    frontier.insert(at, s);
                }
            }
        }

        if order.len() != self.len() {
            let stuck = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies a vertex with nonzero in-degree");
            return Err(PatternError::Cycle {
                pos: self.vertices[stuck].pos,
            });
        }
        Ok(order)
    }

    /// Validate structural invariants:
    /// 1. the topological relation is acyclic;
    /// 2. every data dependency is an ancestor in the topological relation
    ///    (so inputs are finished when a vertex becomes computable).
    pub fn validate(&self) -> Result<(), PatternError> {
        let order = self.topological_order()?;

        // Ancestor closure via per-vertex bitsets indexed by topological
        // rank (a predecessor always has a smaller rank, even when its dense
        // id is larger, as happens for triangular patterns).
        // O(V^2/64) — acceptable for tile-level DAG sizes.
        let n = self.len();
        let words = n.div_ceil(64);
        let mut rank = vec![0usize; n];
        for (r, v) in order.iter().enumerate() {
            rank[v.index()] = r;
        }
        let mut closure = vec![0u64; n * words];
        for (r, &v) in order.iter().enumerate() {
            for &p in &self.vertices[v.index()].preds {
                let pr = rank[p.index()];
                debug_assert!(pr < r);
                let (lo, hi) = closure.split_at_mut(r * words);
                let dst = &mut hi[..words];
                let src = &lo[pr * words..pr * words + words];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= s;
                }
                dst[pr / 64] |= 1 << (pr % 64);
            }
        }

        for (id, v) in self.iter() {
            let r = rank[id.index()];
            for &d in &v.data_deps {
                let dr = rank[d.index()];
                if closure[r * words + dr / 64] & (1 << (dr % 64)) == 0 {
                    return Err(PatternError::UnorderedDataDependency {
                        vertex: v.pos,
                        dep: self.vertices[d.index()].pos,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{CustomPattern, TriangularGap, Wavefront2D};

    #[test]
    fn wavefront_dag_counts() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(3)));
        assert_eq!(dag.len(), 9);
        // Edges: interior cells have 3 preds, edge cells 1, corner 0.
        // (1,1),(1,2),(2,1),(2,2) have 3; (0,1),(0,2),(1,0),(2,0) have 1.
        assert_eq!(dag.edge_count(), 4 * 3 + 4);
        assert_eq!(
            dag.sources(),
            vec![dag.vertex_at(GridPos::new(0, 0)).unwrap()]
        );
    }

    #[test]
    fn triangular_dag_skips_lower_triangle() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(4));
        assert_eq!(dag.len(), 10);
        assert!(dag.vertex_at(GridPos::new(3, 0)).is_none());
        assert!(dag.vertex_at(GridPos::new(0, 3)).is_some());
        // Sources are the main diagonal.
        assert_eq!(dag.sources().len(), 4);
    }

    #[test]
    fn topological_order_respects_edges() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(4, 5)));
        let order = dag.topological_order().unwrap();
        assert_eq!(order.len(), dag.len());
        let mut rank = vec![0usize; dag.len()];
        for (i, v) in order.iter().enumerate() {
            rank[v.index()] = i;
        }
        for (id, v) in dag.iter() {
            for p in &v.preds {
                assert!(rank[p.index()] < rank[id.index()]);
            }
        }
    }

    #[test]
    fn validate_accepts_builtin_patterns() {
        TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(6)))
            .validate()
            .unwrap();
        TaskDag::from_pattern(&TriangularGap::new(7))
            .validate()
            .unwrap();
        TaskDag::from_pattern(&crate::patterns::RowColumn2D1D::new(GridDims::new(5, 7)))
            .validate()
            .unwrap();
        TaskDag::from_pattern(&crate::patterns::Full2D2D::new(GridDims::new(4, 4)))
            .validate()
            .unwrap();
        TaskDag::from_pattern(&crate::patterns::Linear1D::new(9))
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_unordered_data_dep() {
        // (0,1) reads (0,2) but nothing orders them.
        let dims = GridDims::new(1, 3);
        let p = CustomPattern::builder(dims)
            .dependency(GridPos::new(0, 1), GridPos::new(0, 0))
            .unwrap()
            .data_dependency(GridPos::new(0, 1), GridPos::new(0, 2))
            .unwrap()
            .finish_unchecked();
        let err = TaskDag::from_pattern(&p).validate().unwrap_err();
        assert!(matches!(err, PatternError::UnorderedDataDependency { .. }));
    }

    #[test]
    fn cycle_detected() {
        let p = CustomPattern::builder(GridDims::new(1, 3))
            .dependency(GridPos::new(0, 1), GridPos::new(0, 0))
            .unwrap()
            .dependency(GridPos::new(0, 2), GridPos::new(0, 1))
            .unwrap()
            .dependency(GridPos::new(0, 0), GridPos::new(0, 2))
            .unwrap()
            .finish_unchecked();
        let err = TaskDag::from_pattern(&p).topological_order().unwrap_err();
        assert!(matches!(err, PatternError::Cycle { .. }));
    }

    #[test]
    fn succs_mirror_preds() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(5));
        for (id, v) in dag.iter() {
            for p in &v.preds {
                assert!(dag.vertex(*p).succs.contains(&id));
            }
            for s in &v.succs {
                assert!(dag.vertex(*s).preds.contains(&id));
            }
        }
    }
}

/// Structural analysis of a [`TaskDag`] for partition-size tuning.
#[derive(Clone, Debug, PartialEq)]
pub struct DagAnalysis {
    /// Vertices.
    pub vertices: usize,
    /// Topological edges.
    pub edges: usize,
    /// Length of the longest path, in vertices (the schedule's lower bound
    /// in "levels").
    pub critical_path: usize,
    /// Number of vertices per topological level (level = longest distance
    /// from a source); `max` bounds usable workers.
    pub width_profile: Vec<usize>,
    /// Maximum of the width profile.
    pub max_width: usize,
    /// `vertices / critical_path`: the average parallelism a perfectly
    /// balanced schedule could sustain.
    pub avg_parallelism: f64,
}

impl TaskDag {
    /// Compute structural statistics (fails on cyclic custom patterns).
    pub fn analyze(&self) -> Result<DagAnalysis, PatternError> {
        let order = self.topological_order()?;
        let mut level = vec![0usize; self.len()];
        let mut depth = 0usize;
        for &v in &order {
            let l = self
                .vertex(v)
                .preds
                .iter()
                .map(|p| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[v.index()] = l;
            depth = depth.max(l);
        }
        let mut width_profile = vec![0usize; depth + 1];
        for &l in &level {
            width_profile[l] += 1;
        }
        let critical_path = depth + 1;
        Ok(DagAnalysis {
            vertices: self.len(),
            edges: self.edge_count(),
            critical_path,
            max_width: width_profile.iter().copied().max().unwrap_or(0),
            avg_parallelism: if self.is_empty() {
                0.0
            } else {
                self.len() as f64 / critical_path as f64
            },
            width_profile,
        })
    }
}

#[cfg(test)]
mod analysis_tests {
    use super::*;
    use crate::patterns::{Linear1D, TriangularGap, Wavefront2D};
    use crate::GridDims;

    #[test]
    fn chain_analysis() {
        let dag = TaskDag::from_pattern(&Linear1D::new(7));
        let a = dag.analyze().unwrap();
        assert_eq!(a.critical_path, 7);
        assert_eq!(a.max_width, 1);
        assert!((a.avg_parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wavefront_analysis() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(4, 6)));
        let a = dag.analyze().unwrap();
        // Levels are anti-diagonals: 4 + 6 - 1 of them, widest = 4.
        assert_eq!(a.critical_path, 9);
        assert_eq!(a.max_width, 4);
        assert_eq!(a.width_profile.iter().sum::<usize>(), 24);
        assert_eq!(a.width_profile[0], 1);
    }

    #[test]
    fn triangular_analysis() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(5));
        let a = dag.analyze().unwrap();
        // Levels are span lengths: 5 levels, widest is the diagonal (5).
        assert_eq!(a.critical_path, 5);
        assert_eq!(a.max_width, 5);
        assert_eq!(a.vertices, 15);
    }
}
