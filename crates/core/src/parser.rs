//! Runtime DAG parsing (paper §IV-E, Fig. 8).
//!
//! Parsing is incremental topological sorting: the parser tracks each
//! sub-task's remaining prefix degree, exposes the set of currently
//! *computable* sub-tasks (no unfinished predecessors), and, when a sub-task
//! completes, "removes the vertex and its connecting edges", which may make
//! successors computable. It also supports *failing* a running sub-task back
//! to computable, which is what the fault-tolerance threads do on timeout.

use crate::dag::{TaskDag, VertexId};
use crate::error::ParseError;

/// Lifecycle of a sub-task during parsing (Fig. 8's white / grey / black
/// vertices, plus the running state in between).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Still has unfinished predecessors.
    Blocked,
    /// All predecessors finished; sitting in the computable sub-task stack.
    Computable,
    /// Handed to a worker; registered in the overtime queue.
    Running,
    /// Finished; vertex and edges removed from the DAG.
    Finished,
}

/// Incremental topological parser over a [`TaskDag`].
///
/// The *computable sub-task stack* is LIFO, like the paper's linked-list
/// stack: the most recently enabled sub-task is handed out first, which
/// keeps the working set warm along the active wavefront.
#[derive(Clone, Debug)]
pub struct DagParser {
    remaining_preds: Vec<u32>,
    state: Vec<TaskState>,
    computable: Vec<VertexId>,
    finished: usize,
    running: usize,
    total: usize,
}

impl DagParser {
    /// Initialize the parser: every source vertex becomes computable.
    pub fn new(dag: &TaskDag) -> Self {
        let total = dag.len();
        let mut remaining_preds = Vec::with_capacity(total);
        let mut state = Vec::with_capacity(total);
        let mut computable = Vec::new();
        for (id, v) in dag.iter() {
            remaining_preds.push(v.preds.len() as u32);
            if v.preds.is_empty() {
                state.push(TaskState::Computable);
                computable.push(id);
            } else {
                state.push(TaskState::Blocked);
            }
        }
        // Deterministic initial order: sources pop lowest-id first.
        computable.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            remaining_preds,
            state,
            computable,
            finished: 0,
            running: 0,
            total,
        }
    }

    /// Current state of a vertex.
    pub fn state(&self, v: VertexId) -> TaskState {
        self.state[v.index()]
    }

    /// Number of sub-tasks currently in the computable stack.
    pub fn computable_len(&self) -> usize {
        self.computable.len()
    }

    /// Number of finished sub-tasks.
    pub fn finished_len(&self) -> usize {
        self.finished
    }

    /// Number of sub-tasks currently running.
    pub fn running_len(&self) -> usize {
        self.running
    }

    /// True when every sub-task has finished — the parsing process has
    /// removed all vertices and edges.
    pub fn is_done(&self) -> bool {
        self.finished == self.total
    }

    /// Pop the next computable sub-task and mark it running. Returns `None`
    /// when the stack is empty (which does *not* imply [`Self::is_done`]:
    /// tasks may still be blocked or running).
    pub fn pop_computable(&mut self) -> Option<VertexId> {
        let v = self.computable.pop()?;
        debug_assert_eq!(self.state[v.index()], TaskState::Computable);
        self.state[v.index()] = TaskState::Running;
        self.running += 1;
        Some(v)
    }

    /// Peek at the next computable sub-task without claiming it.
    pub fn peek_computable(&self) -> Option<VertexId> {
        self.computable.last().copied()
    }

    /// Pop the most recently enabled computable sub-task satisfying `pred`
    /// and mark it running. Static schedulers (block-cyclic wavefront) use
    /// this to claim only the sub-tasks owned by a particular worker.
    pub fn pop_computable_matching(&mut self, pred: impl Fn(VertexId) -> bool) -> Option<VertexId> {
        let idx = self.computable.iter().rposition(|&v| pred(v))?;
        let v = self.computable.remove(idx);
        debug_assert_eq!(self.state[v.index()], TaskState::Computable);
        self.state[v.index()] = TaskState::Running;
        self.running += 1;
        Some(v)
    }

    /// Mark a running sub-task finished; newly computable successors are
    /// pushed onto the stack and also appended to `newly` if provided.
    pub fn complete(
        &mut self,
        dag: &TaskDag,
        v: VertexId,
        mut newly: Option<&mut Vec<VertexId>>,
    ) -> Result<(), ParseError> {
        self.check_id(v)?;
        if self.state[v.index()] != TaskState::Running {
            return Err(ParseError::NotRunning {
                vertex: dag.vertex(v).pos,
            });
        }
        self.state[v.index()] = TaskState::Finished;
        self.running -= 1;
        self.finished += 1;
        for &s in &dag.vertex(v).succs {
            let r = &mut self.remaining_preds[s.index()];
            debug_assert!(*r > 0);
            *r -= 1;
            if *r == 0 {
                debug_assert_eq!(self.state[s.index()], TaskState::Blocked);
                self.state[s.index()] = TaskState::Computable;
                self.computable.push(s);
                if let Some(out) = newly.as_deref_mut() {
                    out.push(s);
                }
            }
        }
        Ok(())
    }

    /// Return a running sub-task to the computable stack (fault tolerance:
    /// the worker timed out or died; the sub-task will be redistributed).
    pub fn fail(&mut self, dag: &TaskDag, v: VertexId) -> Result<(), ParseError> {
        self.check_id(v)?;
        if self.state[v.index()] != TaskState::Running {
            return Err(ParseError::NotRunning {
                vertex: dag.vertex(v).pos,
            });
        }
        self.state[v.index()] = TaskState::Computable;
        self.running -= 1;
        self.computable.push(v);
        Ok(())
    }

    fn check_id(&self, v: VertexId) -> Result<(), ParseError> {
        if v.index() >= self.total {
            return Err(ParseError::UnknownVertex { id: v.0 });
        }
        Ok(())
    }

    /// Drain the whole DAG in a single thread, calling `run` on each
    /// sub-task in a valid topological order. Convenience for sequential
    /// execution and tests.
    pub fn drain_sequential(dag: &TaskDag, mut run: impl FnMut(VertexId)) {
        let mut parser = DagParser::new(dag);
        while let Some(v) = parser.pop_computable() {
            run(v);
            parser
                .complete(dag, v, None)
                .expect("sequential drain completes what it popped");
        }
        assert!(
            parser.is_done(),
            "DAG with blocked tasks but empty frontier is cyclic"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::GridDims;
    use crate::patterns::{TriangularGap, Wavefront2D};

    #[test]
    fn initial_frontier_is_sources() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(3)));
        let parser = DagParser::new(&dag);
        assert_eq!(parser.computable_len(), 1);
        assert!(!parser.is_done());
    }

    #[test]
    fn drain_visits_every_vertex_once_in_topo_order() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(6));
        let mut seen = vec![false; dag.len()];
        let mut count = 0;
        DagParser::drain_sequential(&dag, |v| {
            assert!(!seen[v.index()], "vertex visited twice");
            // All preds must have been seen.
            for p in &dag.vertex(v).preds {
                assert!(seen[p.index()], "pred not finished before successor ran");
            }
            seen[v.index()] = true;
            count += 1;
        });
        assert_eq!(count, dag.len());
    }

    #[test]
    fn complete_unblocks_successors() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(2, 2)));
        let mut parser = DagParser::new(&dag);
        let v00 = parser.pop_computable().unwrap();
        assert_eq!(parser.pop_computable(), None, "only one source");
        let mut newly = Vec::new();
        parser.complete(&dag, v00, Some(&mut newly)).unwrap();
        assert_eq!(newly.len(), 2, "(0,1) and (1,0) become computable");
        assert_eq!(parser.computable_len(), 2);
    }

    #[test]
    fn completing_non_running_task_errors() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(2, 2)));
        let mut parser = DagParser::new(&dag);
        let v = parser.peek_computable().unwrap();
        // Not yet popped -> not running.
        assert!(parser.complete(&dag, v, None).is_err());
        let v = parser.pop_computable().unwrap();
        parser.complete(&dag, v, None).unwrap();
        // Double completion.
        assert!(parser.complete(&dag, v, None).is_err());
    }

    #[test]
    fn fail_requeues_task() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(2, 2)));
        let mut parser = DagParser::new(&dag);
        let v = parser.pop_computable().unwrap();
        assert_eq!(parser.running_len(), 1);
        parser.fail(&dag, v).unwrap();
        assert_eq!(parser.running_len(), 0);
        assert_eq!(parser.state(v), TaskState::Computable);
        // The task can be claimed and completed again.
        let v2 = parser.pop_computable().unwrap();
        assert_eq!(v, v2);
        parser.complete(&dag, v2, None).unwrap();
        assert_eq!(parser.finished_len(), 1);
    }

    #[test]
    fn fail_of_finished_task_errors() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(1, 2)));
        let mut parser = DagParser::new(&dag);
        let v = parser.pop_computable().unwrap();
        parser.complete(&dag, v, None).unwrap();
        assert!(parser.fail(&dag, v).is_err());
    }

    #[test]
    fn is_done_only_after_all_complete() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(2, 3)));
        let mut parser = DagParser::new(&dag);
        let mut done = 0;
        while let Some(v) = parser.pop_computable() {
            assert!(!parser.is_done());
            parser.complete(&dag, v, None).unwrap();
            done += 1;
        }
        assert_eq!(done, 6);
        assert!(parser.is_done());
    }

    #[test]
    fn pop_matching_claims_only_predicate_tasks() {
        let dag = TaskDag::from_pattern(&TriangularGap::new(4));
        let mut parser = DagParser::new(&dag);
        // Four diagonal sources; claim only even-column ones.
        let picked = parser.pop_computable_matching(|v| dag.vertex(v).pos.col.is_multiple_of(2));
        let v = picked.expect("even-column source exists");
        assert_eq!(dag.vertex(v).pos.col % 2, 0);
        assert_eq!(parser.state(v), TaskState::Running);
        // No matching task -> None, stack untouched.
        let before = parser.computable_len();
        assert!(parser.pop_computable_matching(|_| false).is_none());
        assert_eq!(parser.computable_len(), before);
        parser.complete(&dag, v, None).unwrap();
    }

    #[test]
    fn unknown_vertex_id_errors() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(1, 1)));
        let mut parser = DagParser::new(&dag);
        assert!(matches!(
            parser.fail(&dag, VertexId(99)),
            Err(ParseError::UnknownVertex { id: 99 })
        ));
    }
}
