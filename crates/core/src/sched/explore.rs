//! Deterministic schedule exploration for the master state machine.
//!
//! `easyhps stress` samples interleavings with real threads and seeds;
//! this module *enumerates* them. A run is fully cooperative: virtual
//! slaves compute instantly, every frame sits in a pending queue, and the
//! single source of nondeterminism is **which pending frame the master
//! sees next**. At each step where more than one frame is deliverable,
//! the explorer may deliver any of the first `reorder_window` of them —
//! one choice point. A depth-first search over choice vectors replays
//! runs with up to `depth` non-FIFO choices (the CHESS/Loom bounded
//! strategy: almost all scheduler bugs need only a few reorderings), and
//! the PR 4 schedule invariants are checked on every explored order —
//! every tile accepted exactly once, dispatch conservation, no spurious
//! exclusion or redistribution in a fault-free world.
//!
//! Runs are replayed from scratch for each choice vector: the machine is
//! cheap, and replay keeps the search stateless and deterministic — the
//! same config always explores the same schedules in the same order.

use super::{MasterAction, MasterEvent, MasterSched, SchedParams};
use crate::{ScheduleMode, TaskDag};
use std::collections::BTreeSet;

const STEP_NS: u64 = 1_000_000;

/// What to explore and how hard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Number of virtual slaves.
    pub slaves: usize,
    /// Scheduling mode under test.
    pub mode: ScheduleMode,
    /// Maximum number of non-FIFO delivery choices per run (the preemption
    /// bound). Depth 0 is the single FIFO baseline schedule.
    pub depth: usize,
    /// Stop after this many schedules (the DFS frontier is dropped).
    pub max_schedules: u64,
    /// How many pending frames are candidates at a choice point. Bounds
    /// the branching factor; FIFO order beyond the window.
    pub reorder_window: usize,
}

impl ExploreConfig {
    /// Defaults: bounded depth 2, window 4, at most 10 000 schedules.
    pub fn new(slaves: usize, mode: ScheduleMode) -> Self {
        Self {
            slaves,
            mode,
            depth: 2,
            max_schedules: 10_000,
            reorder_window: 4,
        }
    }
}

/// A scripted membership perturbation for [`explore_membership`]. Each
/// op fires once, after a fixed number of delivered frames, so a script
/// replays identically under every explored delivery order — the only
/// nondeterminism stays where it belongs, in frame delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipOp {
    /// A new incarnation of `slave` is admitted (a reconnect, or a
    /// mid-run join when `slave` equals the current fleet size). Any of
    /// the old incarnation's still-undelivered DONE frames turn into
    /// stale-epoch frames at the moment the rejoin is delivered — the
    /// link died, so whatever was in flight arrives fenced.
    Rejoin {
        /// Slave index to (re)admit.
        slave: usize,
        /// Fire after this many delivered frames.
        after: usize,
    },
    /// Operator asks `slave` to drain: finish in-flight work, take no
    /// more, release the rank.
    Drain {
        /// Slave index to drain.
        slave: usize,
        /// Fire after this many delivered frames.
        after: usize,
    },
}

/// Aggregate result of an exploration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExploreOutcome {
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct delivery orders among them (duplicates mean a choice did
    /// not change what the master observed).
    pub distinct_orders: u64,
    /// Choice points encountered across all runs.
    pub decisions: u64,
    /// High-water mark of simultaneously deliverable frames.
    pub max_pending: usize,
    /// Invariant violations, each tagged with the choice vector that
    /// reproduces it deterministically. Empty means every explored
    /// schedule satisfied the contract.
    pub violations: Vec<String>,
}

/// One replayed run under a fixed choice prefix.
struct Run {
    /// The choice actually taken at each delivery step (prefix choices
    /// clamped to the available range, FIFO `0` beyond the prefix).
    choices: Vec<usize>,
    /// How many candidates were available at each delivery step.
    avail: Vec<usize>,
    /// Encoded delivery order, for distinctness accounting.
    order: Vec<u64>,
    decisions: u64,
    max_pending: usize,
    violation: Option<String>,
}

fn encode(ev: &MasterEvent) -> u64 {
    match ev {
        MasterEvent::Idle { slave } => 1_000_000_000 + *slave as u64,
        MasterEvent::Done { slave, task } => {
            2_000_000_000 + (*slave as u64) * 1_000_000 + *task as u64
        }
        MasterEvent::Rejoined { slave, .. } => 3_000_000_000 + *slave as u64,
        MasterEvent::StaleEpoch { slave, task } => {
            4_000_000_000 + (*slave as u64) * 1_000_000 + *task as u64
        }
        MasterEvent::DrainSlave { slave } => 5_000_000_000 + *slave as u64,
        _ => 9_000_000_000,
    }
}

/// Execute one schedule. Virtual time advances one millisecond per step;
/// every slave is heard every step, so outside the scripted membership
/// ops any exclusion, re-admission, redistribution or stale completion
/// the machine produces is an invariant violation, not noise. With a
/// non-empty `script` the run additionally checks the membership
/// contract: a stale-epoch frame is fenced (never accepted), a draining
/// slave takes no new work and is eventually released, and a released
/// slave is never assigned again — under *every* explored delivery order
/// of the membership frames relative to the DONEs around them.
fn run_one(
    dag: &TaskDag,
    cfg: &ExploreConfig,
    params: &SchedParams,
    script: &[MembershipOp],
    prefix: &[usize],
) -> Run {
    let mut run = Run {
        choices: Vec::new(),
        avail: Vec::new(),
        order: Vec::new(),
        decisions: 0,
        max_pending: 0,
        violation: None,
    };
    let membership = !script.is_empty();
    let mut m = MasterSched::new(dag, cfg.slaves, cfg.mode, params, None);
    let mut pending: Vec<MasterEvent> = (0..cfg.slaves)
        .map(|slave| MasterEvent::Idle { slave })
        .collect();
    let mut busy: Vec<Option<u32>> = vec![None; cfg.slaves];
    let mut released: Vec<bool> = vec![false; cfg.slaves];
    let mut draining: Vec<bool> = vec![false; cfg.slaves];
    let mut fired: Vec<bool> = vec![false; script.len()];
    let mut accepted: Vec<u64> = vec![0; dag.len()];
    let mut delivered = 0usize;
    let mut stale_delivered = 0u64;
    let mut rejoins_delivered = 0u64;
    let mut drains_delivered: Vec<usize> = Vec::new();
    let window = cfg.reorder_window.max(1);
    let step_limit = 4 * dag.len() + 8 * cfg.slaves + 16 * script.len() + 64;
    let mut now = 0u64;
    let mut finished = false;

    macro_rules! fail {
        ($($t:tt)*) => {{
            run.violation = Some(format!($($t)*));
            return run;
        }};
    }

    for _ in 0..step_limit {
        now += STEP_NS;
        run.max_pending = run.max_pending.max(pending.len());

        for slave in 0..m.n_slaves() {
            if let Err(e) = m.on_event(dag, MasterEvent::Heard { slave, at_ns: now }) {
                fail!("{e}");
            }
        }

        // Fire due membership ops into the pending queue: from here on
        // their delivery order relative to surrounding frames is the
        // explorer's to choose.
        for (i, op) in script.iter().enumerate() {
            if fired[i] {
                continue;
            }
            match *op {
                MembershipOp::Rejoin { slave, after } if after <= delivered => {
                    fired[i] = true;
                    pending.push(MasterEvent::Rejoined { slave, now_ns: now });
                }
                MembershipOp::Drain { slave, after } if after <= delivered => {
                    fired[i] = true;
                    pending.push(MasterEvent::DrainSlave { slave });
                }
                _ => {}
            }
        }

        // Deliver one pending frame — the choice point.
        if !pending.is_empty() {
            let avail = pending.len().min(window);
            let step = run.avail.len();
            let c = prefix.get(step).copied().unwrap_or(0).min(avail - 1);
            if avail > 1 {
                run.decisions += 1;
            }
            run.avail.push(avail);
            run.choices.push(c);
            let ev = pending.remove(c);
            run.order.push(encode(&ev));
            delivered += 1;
            match ev {
                MasterEvent::Done { slave, .. } => busy[slave] = None,
                MasterEvent::Rejoined { slave, .. } => {
                    // The link to the old incarnation died: every DONE of
                    // its still in flight arrives under the old epoch and
                    // is classified StaleEpoch by the driver. The new
                    // incarnation starts idle.
                    rejoins_delivered += 1;
                    for p in pending.iter_mut() {
                        if let MasterEvent::Done { slave: s, task } = *p {
                            if s == slave {
                                *p = MasterEvent::StaleEpoch { slave, task };
                            }
                        }
                    }
                    if slave < busy.len() {
                        busy[slave] = None;
                        draining[slave] = false;
                        released[slave] = false;
                    } else {
                        // Mid-run join: the fleet grows by one slot.
                        busy.push(None);
                        draining.push(false);
                        released.push(false);
                    }
                }
                MasterEvent::StaleEpoch { .. } => stale_delivered += 1,
                MasterEvent::DrainSlave { slave } => {
                    draining[slave] = true;
                    drains_delivered.push(slave);
                }
                _ => {}
            }
            let acts = match m.on_event(dag, ev.clone()) {
                Ok(a) => a,
                Err(e) => fail!("{e}"),
            };
            for a in acts {
                match a {
                    MasterAction::Accept { task, .. } => {
                        if matches!(ev, MasterEvent::StaleEpoch { .. }) {
                            fail!(
                                "stale-epoch frame for task {task} was ACCEPTED — fencing broken"
                            );
                        }
                        accepted[task as usize] += 1;
                    }
                    MasterAction::Stale { slave, task } => {
                        fail!("stale completion of task {task} by slave {slave} in a timeout-free schedule")
                    }
                    MasterAction::Redispatch { .. }
                    | MasterAction::Refence { .. }
                    | MasterAction::Readmit { .. }
                        if matches!(ev, MasterEvent::Rejoined { .. }) => {}
                    MasterAction::Release { slave }
                        if membership
                            && matches!(
                                ev,
                                MasterEvent::DrainSlave { .. } | MasterEvent::Done { .. }
                            ) =>
                    {
                        released[slave] = true;
                    }
                    other => fail!("unexpected action {other:?} from delivering {ev:?}"),
                }
            }
        }

        // The scheduling pass: dispatches become instantly-computed Done
        // frames in the pending queue.
        let acts = match m.on_event(dag, MasterEvent::Tick { now_ns: now }) {
            Ok(a) => a,
            Err(e) => fail!("{e}"),
        };
        for a in acts {
            match a {
                MasterAction::Assign { slave, task } => {
                    if let Some(t) = busy[slave] {
                        fail!("assigned task {task} to slave {slave} already busy with {t}");
                    }
                    if released[slave] {
                        fail!("assigned task {task} to slave {slave} after its release");
                    }
                    if draining[slave] {
                        fail!("assigned task {task} to draining slave {slave}");
                    }
                    busy[slave] = Some(task);
                    pending.push(MasterEvent::Done { slave, task });
                }
                MasterAction::Finished => finished = true,
                other => fail!("unexpected action {other:?} from a fault-free tick"),
            }
        }

        // The FT sweep must be a no-op when every slave heartbeats and
        // nothing is overdue — wherever it lands in the order. (With a
        // drain in the script it may legitimately release the drained
        // slave.)
        match m.on_event(dag, MasterEvent::FtTick { now_ns: now }) {
            Ok(a) if a.is_empty() => {}
            Ok(a) if membership && a.iter().all(|x| matches!(x, MasterAction::Release { .. })) => {
                for x in a {
                    if let MasterAction::Release { slave } = x {
                        released[slave] = true;
                    }
                }
            }
            Ok(a) => fail!("fault-free FT sweep produced {a:?}"),
            Err(e) => fail!("{e}"),
        }

        if finished {
            break;
        }
    }

    // PR 4 schedule invariants, on every explored order.
    if !finished {
        fail!("schedule did not finish within {step_limit} steps");
    }
    if !m.is_done() {
        fail!("Finished emitted but the parser is not done");
    }
    let c = m.counters();
    if c.completed != dag.len() as u64 {
        fail!("completed {} of {} tiles", c.completed, dag.len());
    }
    if let Some(t) = accepted.iter().position(|n| *n != 1) {
        fail!(
            "tile {t} accepted {} times (want exactly once)",
            accepted[t]
        );
    }
    if c.dispatched != (c.completed - c.resumed) + c.redispatched {
        fail!("dispatch conservation broken: {c:?}");
    }
    if membership {
        // Membership invariants: the machine counted exactly the frames
        // we delivered, every delivered drain ended in a release, and
        // nothing leaked into the genuine fault paths (no timeouts or
        // silence exist in this virtual world).
        if c.stale_epoch != stale_delivered {
            fail!(
                "stale-epoch accounting: machine counted {} but {} frames were delivered",
                c.stale_epoch,
                stale_delivered
            );
        }
        if c.rejoins != rejoins_delivered {
            fail!(
                "rejoin accounting: machine counted {} but {} rejoins were delivered",
                c.rejoins,
                rejoins_delivered
            );
        }
        for &slave in &drains_delivered {
            if !released[slave] {
                fail!("drained slave {slave} was never released");
            }
        }
        if c.stale + c.send_failures + c.exclusions + c.readmissions != 0 {
            fail!("membership schedule took a genuine fault path: {c:?}");
        }
    } else if c.stale + c.send_failures + c.exclusions + c.readmissions + c.redispatched != 0 {
        fail!("fault-free schedule took a fault path: {c:?}");
    }
    run
}

/// Enumerate delivery schedules of `dag` on a fault-free virtual cluster
/// and check the scheduling invariants on each. Deterministic: the same
/// inputs explore the same schedules in the same order.
pub fn explore(dag: &TaskDag, cfg: &ExploreConfig) -> ExploreOutcome {
    explore_membership(dag, cfg, &[])
}

/// [`explore`], with a scripted membership schedule folded in: rejoins,
/// zombie stale-epoch frames and drains become pending frames whose
/// delivery order the explorer varies alongside the DONEs. Every order
/// must satisfy the fencing contract — a stale-epoch completion is
/// never accepted, a drained slave is released exactly when its last
/// in-flight sub-task lands, and the run still finishes bit-complete.
pub fn explore_membership(
    dag: &TaskDag,
    cfg: &ExploreConfig,
    script: &[MembershipOp],
) -> ExploreOutcome {
    let params = SchedParams::default();
    let mut out = ExploreOutcome::default();
    let mut orders: BTreeSet<Vec<u64>> = BTreeSet::new();
    // DFS over choice prefixes, seeded with the all-FIFO run.
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(prefix) = frontier.pop() {
        if out.schedules >= cfg.max_schedules {
            break;
        }
        let run = run_one(dag, cfg, &params, script, &prefix);
        out.schedules += 1;
        out.decisions += run.decisions;
        out.max_pending = out.max_pending.max(run.max_pending);
        orders.insert(run.order);
        if let Some(v) = run.violation {
            out.violations
                .push(format!("choices {:?}: {v}", run.choices));
        }
        // Branch only past the forced prefix (earlier alternatives were
        // queued when their own prefix ran), keeping non-FIFO choices
        // within the depth bound.
        let spent = prefix.iter().filter(|c| **c != 0).count();
        for step in prefix.len()..run.avail.len() {
            if spent >= cfg.depth {
                break;
            }
            for c in 1..run.avail[step] {
                let mut child = run.choices[..step].to_vec();
                child.push(c);
                frontier.push(child);
            }
        }
    }
    out.distinct_orders = orders.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Wavefront2D;
    use crate::GridDims;

    #[test]
    fn fifo_baseline_is_deterministic() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(4)));
        let mut cfg = ExploreConfig::new(2, ScheduleMode::Dynamic);
        cfg.max_schedules = 1; // the FIFO schedule alone
        let a = explore(&dag, &cfg);
        let b = explore(&dag, &cfg);
        assert_eq!(a, b, "same config must explore the same schedule");
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.schedules, 1);
    }

    #[test]
    fn depth_bounded_exploration_finds_many_distinct_orders() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(4)));
        let mut cfg = ExploreConfig::new(2, ScheduleMode::Dynamic);
        cfg.depth = 3;
        let out = explore(&dag, &cfg);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(
            out.distinct_orders >= 100,
            "want >= 100 distinct schedules, got {} over {} runs",
            out.distinct_orders,
            out.schedules
        );
        assert!(out.decisions > 0, "a 2-slave wavefront has choice points");
    }

    #[test]
    fn static_modes_survive_exploration_too() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(3)));
        for mode in [
            ScheduleMode::ColumnWavefront,
            ScheduleMode::BlockCyclic { block: 1 },
        ] {
            let mut cfg = ExploreConfig::new(2, mode);
            cfg.depth = 2;
            let out = explore(&dag, &cfg);
            assert!(out.violations.is_empty(), "{mode:?}: {:?}", out.violations);
            assert!(out.schedules > 1, "{mode:?} explored only FIFO");
        }
    }

    // Membership orders as pure schedules: a mid-run rejoin turns the
    // old incarnation's in-flight DONE into a stale-epoch frame, and
    // *every* explored placement of that frame — before the redispatch,
    // after it, after the fresh accept — must be fenced. The final check
    // asserts the machine's stale_epoch counter matches the frames
    // delivered and each tile is accepted exactly once.
    #[test]
    fn rejoin_orders_never_accept_a_stale_epoch_frame() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(4)));
        let mut cfg = ExploreConfig::new(2, ScheduleMode::Dynamic);
        cfg.depth = 2;
        for after in [1usize, 3, 6] {
            let script = [MembershipOp::Rejoin { slave: 1, after }];
            let out = explore_membership(&dag, &cfg, &script);
            assert!(
                out.violations.is_empty(),
                "rejoin after {after}: {:?}",
                out.violations
            );
            assert!(out.schedules > 1, "rejoin after {after} explored only FIFO");
        }
    }

    // A drain mid-run: the slave finishes its in-flight sub-task, is
    // released, and the remaining wavefront lands entirely on the
    // survivor — under every explored order of the drain frame.
    #[test]
    fn drain_orders_release_exactly_once_and_finish_on_the_survivor() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(4)));
        let mut cfg = ExploreConfig::new(2, ScheduleMode::Dynamic);
        cfg.depth = 2;
        let script = [MembershipOp::Drain { slave: 1, after: 2 }];
        let out = explore_membership(&dag, &cfg, &script);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.schedules > 1, "explored only FIFO");
    }

    // A join past the fleet size grows the machine mid-run; combined
    // with a later drain of the joiner the fleet shrinks back, and the
    // run still completes every tile exactly once in every order.
    #[test]
    fn join_then_drain_orders_all_complete() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(4)));
        let mut cfg = ExploreConfig::new(2, ScheduleMode::Dynamic);
        cfg.depth = 2;
        let script = [
            MembershipOp::Rejoin { slave: 2, after: 2 },
            MembershipOp::Drain { slave: 2, after: 6 },
        ];
        let out = explore_membership(&dag, &cfg, &script);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.schedules > 1, "explored only FIFO");
    }

    #[test]
    fn depth_zero_is_exactly_the_fifo_schedule() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(3)));
        let mut cfg = ExploreConfig::new(3, ScheduleMode::Dynamic);
        cfg.depth = 0;
        let out = explore(&dag, &cfg);
        assert_eq!(out.schedules, 1);
        assert_eq!(out.distinct_orders, 1);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
