//! The scheduler core: pure event-driven state machines for both levels
//! of the EasyHPS hierarchy.
//!
//! The paper's contribution is the multilevel scheduling policy, so the
//! policy must exist exactly once. This module holds it: the master-side
//! process scheduler ([`MasterSched`]) and the slave-side worker-pool
//! scheduler ([`PoolSched`]) as state machines of the form
//! `fn on_event(&mut self, &TaskDag, Event) -> Result<Vec<Action>, _>`
//! with **no clocks, channels, or threads inside** — time is a `u64`
//! nanosecond value carried *in* events, and every effect is returned as
//! an [`MasterAction`]/[`PoolAction`] for the caller to perform.
//!
//! Three drivers feed these machines:
//!
//! - the **threaded runtime** (`easyhps-runtime`'s `master.rs` and
//!   `slave.rs`, which re-export this module as `runtime::sched`):
//!   translates network frames and real timers into events, and actions
//!   into sends, matrix writes, and metrics;
//! - the **virtual-time simulator** (`easyhps-sim`'s `pool_sim`): feeds
//!   the same machine from a discrete-event heap;
//! - the **deterministic explorer** ([`explore`]): enumerates event
//!   delivery orderings at decision points with a bounded reordering
//!   depth and checks the schedule invariants on every explored order.
//!
//! The machines live in `easyhps-core` (not `easyhps-runtime`) because
//! the runtime depends on the simulator for its autotuner — the core is
//! the one crate below both executors.
//!
//! An impossible transition (e.g. a completion for a task the parser does
//! not consider running) is **not a panic**: it surfaces as a structured
//! [`SchedViolation`] naming the offending event, so an adversarial
//! schedule degrades into an error return instead of poisoning a thread.

mod explore;
mod master;
mod params;
mod pool;
mod register;

pub use explore::{explore, explore_membership, ExploreConfig, ExploreOutcome, MembershipOp};
pub use master::{MasterAction, MasterEvent, MasterSched, SchedCounters, SendFailKind};
pub use params::SchedParams;
pub use pool::{replay_pool, PoolAction, PoolEvent, PoolLog, PoolSched};
pub use register::RegisterTable;

use crate::{DagParser, ScheduleMode, TaskDag, VertexId};
use std::fmt;

/// A scheduler state-machine invariant was violated by an event.
///
/// Carried up as `RuntimeError::SchedulerInvariant` by the threaded
/// driver. Under a correct driver this is unreachable; under an
/// adversarial or replayed event log it is an error value, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedViolation {
    /// Which transition was attempted.
    pub context: &'static str,
    /// The offending event, rendered.
    pub event: String,
}

impl SchedViolation {
    pub(crate) fn new(context: &'static str, event: impl fmt::Debug) -> Self {
        Self {
            context,
            event: format!("{event:?}"),
        }
    }
}

impl fmt::Display for SchedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheduler invariant violated: {} (event {})",
            self.context, self.event
        )
    }
}

impl std::error::Error for SchedViolation {}

/// Pick the next computable task for `executor` under `mode` — the one
/// placement decision shared by every scheduler in the tree (master
/// dispatch, slave pool, simulators).
///
/// Dynamic mode pops the top of the computable stack. Static modes pop
/// the first computable task owned by `executor`; when `orphaned` is
/// given (process level, where executors can die), a task whose static
/// owner satisfies the predicate falls back to dynamic placement — a
/// statically-owned task of a dead executor would otherwise never be
/// dispatchable (the livelock `easyhps stress` found in PR 4, and the
/// runtime↔sim divergence this module's extraction flushed out of the
/// cluster DES).
pub fn pick_task(
    parser: &mut DagParser,
    dag: &TaskDag,
    mode: ScheduleMode,
    tile_cols: u32,
    executors: u32,
    executor: u32,
    orphaned: Option<&dyn Fn(u32) -> bool>,
) -> Option<VertexId> {
    if mode == ScheduleMode::Dynamic {
        return parser.pop_computable();
    }
    let owner = |v: VertexId| mode.static_owner(dag.vertex(v).pos, tile_cols, executors);
    parser
        .pop_computable_matching(|v| owner(v) == Some(executor))
        .or_else(|| {
            let dead = orphaned?;
            parser.pop_computable_matching(|v| owner(v).is_some_and(dead))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Wavefront2D;
    use crate::GridDims;

    #[test]
    fn pick_dynamic_ignores_ownership() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(2, 2)));
        let mut parser = DagParser::new(&dag);
        let v = pick_task(&mut parser, &dag, ScheduleMode::Dynamic, 2, 2, 1, None);
        assert!(v.is_some());
    }

    #[test]
    fn pick_static_respects_ownership_without_fallback() {
        // Column-wavefront over 2 columns, 2 executors: executor 1 owns
        // column 1, which is blocked until (0,0) completes — so executor 1
        // picks nothing even though (0,0) is computable.
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(2, 2)));
        let mut parser = DagParser::new(&dag);
        let v = pick_task(
            &mut parser,
            &dag,
            ScheduleMode::ColumnWavefront,
            2,
            2,
            1,
            None,
        );
        assert_eq!(v, None, "static executor must idle, not steal");
    }

    #[test]
    fn pick_static_orphan_falls_back_when_owner_dead() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(2, 2)));
        let mut parser = DagParser::new(&dag);
        let dead = |o: u32| o == 0;
        let v = pick_task(
            &mut parser,
            &dag,
            ScheduleMode::ColumnWavefront,
            2,
            2,
            1,
            Some(&dead),
        );
        let v = v.expect("orphaned task of the dead owner is adoptable");
        assert_eq!(dag.vertex(v).pos.col, 0, "adopted the dead owner's tile");
    }
}
