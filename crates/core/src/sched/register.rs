//! The sub-task register table (paper §V-A4).

/// Which executor each in-flight sub-task is registered to. A completion
/// from a different executor (a stale duplicate after redistribution) is
/// ignored by the scheduler — this is what makes at-least-once dispatch
/// safe.
#[derive(Clone, Debug)]
pub struct RegisterTable {
    owner: Vec<Option<u32>>,
}

impl RegisterTable {
    /// Table for `n_tasks` sub-tasks, all unregistered.
    pub fn new(n_tasks: usize) -> Self {
        Self {
            owner: vec![None; n_tasks],
        }
    }

    /// Register `task` to `executor`, replacing any previous registration.
    pub fn register(&mut self, task: u32, executor: u32) {
        self.owner[task as usize] = Some(executor);
    }

    /// Cancel the registration of `task`. A task id outside the table is
    /// a no-op: task ids arrive off the wire, so they are untrusted input
    /// here, not an internal invariant.
    pub fn cancel(&mut self, task: u32) {
        if let Some(o) = self.owner.get_mut(task as usize) {
            *o = None;
        }
    }

    /// Current executor of `task`, if registered (and in range).
    pub fn executor_of(&self, task: u32) -> Option<u32> {
        self.owner.get(task as usize).copied().flatten()
    }

    /// Whether a completion of `task` by `executor` should be accepted.
    /// An out-of-range task id is never accepted — a malformed or rogue
    /// DONE frame must not panic the master.
    pub fn accepts(&self, task: u32, executor: u32) -> bool {
        self.owner
            .get(task as usize)
            .is_some_and(|o| *o == Some(executor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_table_accepts_only_current_owner() {
        let mut t = RegisterTable::new(4);
        assert_eq!(t.executor_of(2), None);
        t.register(2, 7);
        assert!(t.accepts(2, 7));
        assert!(!t.accepts(2, 8));
        // Redistribution moves ownership.
        t.register(2, 8);
        assert!(
            !t.accepts(2, 7),
            "stale executor rejected after re-registration"
        );
        assert!(t.accepts(2, 8));
        t.cancel(2);
        assert!(!t.accepts(2, 8));
    }

    #[test]
    fn register_table_tolerates_out_of_range_task_ids() {
        // Task ids come off the wire; an out-of-range one (malformed or
        // rogue frame) must be rejected, not panic.
        let mut t = RegisterTable::new(4);
        assert!(!t.accepts(4, 0));
        assert!(!t.accepts(u32::MAX, 0));
        assert_eq!(t.executor_of(99), None);
        t.cancel(99); // no-op, must not panic
    }
}
