//! The master scheduler (paper §V-B, Figs. 9-10) as a pure state machine.
//!
//! Everything the old threaded master decided — dispatch and DONE
//! accounting, the overdue drain, slow-vs-dead exclusion and re-admission,
//! speculative dispatch when every slave looks dead, static→dynamic
//! orphan fallback, budget stop, teardown drain — lives here, keyed only
//! by the event stream. Time is a `u64` of nanoseconds since run start,
//! carried in events; the machine never reads a clock. The fault-tolerance
//! sweep that used to be a separate thread racing the scheduling loop is
//! now the [`MasterEvent::FtTick`] event, fired by the driver at
//! `SchedParams::ft_poll` cadence — the FT-vs-main-loop interleaving class
//! is gone by construction, and the explorer can place an `FtTick`
//! anywhere it likes.

use super::{pick_task, RegisterTable, SchedParams, SchedViolation};
use crate::{DagParser, ScheduleMode, TaskDag, VertexId};

/// How a reliable send was lost (mirror of the transport's failure
/// reasons, kept transport-free so the machine does not depend on the
/// network crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendFailKind {
    /// The peer's endpoint is gone for good; it can never ack again.
    Unreachable,
    /// The retry budget ran out without an ack; the peer may still live.
    NoAck,
}

/// Input to the master scheduler. All times are nanoseconds since run
/// start (the driver's epoch).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MasterEvent {
    /// One scheduling pass: sync liveness, re-admit, dispatch to idle
    /// slaves, check for termination.
    Tick {
        /// Now, in ns since run start.
        now_ns: u64,
    },
    /// One fault-tolerance sweep: drain overdue sub-tasks, judge liveness
    /// of every slave.
    FtTick {
        /// Now, in ns since run start.
        now_ns: u64,
    },
    /// A frame of any kind was heard from `slave` at `at_ns` (the
    /// driver's liveness observation — heartbeats, acks, anything).
    Heard {
        /// Slave index (rank - 1).
        slave: usize,
        /// Observation time, ns since run start.
        at_ns: u64,
    },
    /// The slave announced idleness.
    Idle {
        /// Slave index.
        slave: usize,
    },
    /// The slave reported a completed sub-task.
    Done {
        /// Slave index.
        slave: usize,
        /// Dense id of the completed master-DAG vertex.
        task: u32,
    },
    /// An [`MasterAction::Assign`] could not even be handed to the
    /// transport (the slave's channel is gone). Rolls the dispatch back:
    /// the task returns to the computable stack untouched and the slave
    /// is permanently out.
    AssignRejected {
        /// Slave index.
        slave: usize,
        /// The task of the rejected assignment.
        task: u32,
    },
    /// A previously accepted reliable send was abandoned by the transport
    /// (retry budget exhausted or peer unreachable). `assign_task` names
    /// the in-flight assignment if the lost send was an ASSIGN.
    SendFailed {
        /// Slave index.
        slave: usize,
        /// Task of the lost ASSIGN, if the send was one.
        assign_task: Option<u32>,
        /// Why the transport gave up.
        reason: SendFailKind,
        /// Now, in ns since run start.
        now_ns: u64,
    },
    /// The driver enters teardown: stop dispatching, keep accepting
    /// completions still in flight.
    Drain,
    /// A *new incarnation* of `slave` was admitted under a new fleet
    /// epoch (or, when `slave` is past the current fleet, a brand-new
    /// slave joined mid-run and the machine must grow). The old
    /// incarnation's in-flight work is rolled back for redistribution —
    /// whatever it computes now will arrive stamped with a stale epoch
    /// and be fenced.
    Rejoined {
        /// Slave index (>= the current fleet size for a mid-run joiner).
        slave: usize,
        /// Admission time, ns since run start.
        now_ns: u64,
    },
    /// A DONE stamped with an out-of-date epoch arrived from `slave`:
    /// the computing incarnation was already fenced. Counted and
    /// dropped; the register table is never consulted, so a stale-epoch
    /// completion can never be accepted.
    StaleEpoch {
        /// Slave index.
        slave: usize,
        /// Task of the fenced completion.
        task: u32,
    },
    /// Operator request: stop assigning work to `slave`, let its
    /// in-flight sub-tasks finish, then release it from the fleet
    /// ([`MasterAction::Release`]).
    DrainSlave {
        /// Slave index.
        slave: usize,
    },
}

/// Effect the driver must perform, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterAction {
    /// Send an ASSIGN for `task` to `slave` (build the payload, record
    /// the dispatch instant). If the transport refuses outright, feed
    /// [`MasterEvent::AssignRejected`] back.
    Assign {
        /// Slave index.
        slave: usize,
        /// Dense id of the assigned master-DAG vertex.
        task: u32,
    },
    /// The completion of `task` by `slave` is authentic: decode the
    /// result into the matrix, close the trace span.
    Accept {
        /// Slave index.
        slave: usize,
        /// Completed task.
        task: u32,
    },
    /// The completion was a stale duplicate (redistributed task): count
    /// it, touch nothing.
    Stale {
        /// Slave index.
        slave: usize,
        /// Task of the stale completion.
        task: u32,
    },
    /// `task` timed out and was taken back for redistribution.
    Redispatch {
        /// The overdue task.
        task: u32,
    },
    /// The ASSIGN of `task` was abandoned in flight; the dispatch was
    /// rolled back — clear any driver-side start record.
    CancelAssign {
        /// The rolled-back task.
        task: u32,
    },
    /// `slave` was excluded from scheduling.
    Exclude {
        /// Slave index.
        slave: usize,
    },
    /// A dead-marked `slave` proved alive and rejoined the schedule.
    Readmit {
        /// Slave index.
        slave: usize,
    },
    /// Every task has completed; the run is done.
    Finished,
    /// The tile budget is reached; stop dispatching and drain.
    BudgetStop,
    /// Every slave is permanently unreachable; the run cannot finish.
    AllSlavesDead,
    /// A new incarnation of `slave` was admitted: reset the transport's
    /// per-peer reliability state (its sequence numbers restarted) and
    /// stamp every future ASSIGN to it with the new fleet epoch.
    Refence {
        /// Slave index.
        slave: usize,
    },
    /// The drained `slave` has nothing left in flight: release its rank
    /// back to the fleet's free-list.
    Release {
        /// Slave index.
        slave: usize,
    },
}

/// The machine's own counters, mirroring `MasterStats` semantics. The
/// conservation invariant `dispatched == (completed - resumed) +
/// redispatched` holds at quiescence by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Sub-tasks dispatched (including re-dispatches).
    pub dispatched: u64,
    /// Sub-tasks taken back for redistribution (timeout or lost ASSIGN).
    pub redispatched: u64,
    /// Completions accepted (excluding resumed).
    pub completed: u64,
    /// Sub-tasks preloaded from a checkpoint.
    pub resumed: u64,
    /// Stale duplicate completions ignored.
    pub stale: u64,
    /// Reliable sends the transport abandoned or rejected.
    pub send_failures: u64,
    /// Slaves declared dead.
    pub exclusions: u64,
    /// Dead-marked slaves re-admitted.
    pub readmissions: u64,
    /// New incarnations admitted (reconnect with a fresh session, or a
    /// mid-run joiner growing the fleet).
    pub rejoins: u64,
    /// Completions fenced because they were stamped with a stale epoch.
    pub stale_epoch: u64,
}

/// An in-flight dispatch: virtual-time twin of the runtime's overtime
/// queue entry.
#[derive(Clone, Copy, Debug)]
struct Overtime {
    task: u32,
    slave: u32,
    started_ns: u64,
}

/// The master-side scheduling state machine. See the module docs for the
/// event/action contract; the threaded runtime, the simulator and the
/// explorer all drive this same struct.
#[derive(Clone, Debug)]
pub struct MasterSched {
    parser: DagParser,
    register: RegisterTable,
    overtime: Vec<Overtime>,
    mode: ScheduleMode,
    tile_cols: u32,
    n_slaves: usize,
    task_timeout_ns: u64,
    heartbeat_timeout_ns: u64,
    budget: Option<u64>,
    /// Presumed-alive flag per slave (re-admittable).
    alive: Vec<bool>,
    /// Permanently gone: the slave's endpoint was dropped. Never
    /// re-admitted.
    unreachable: Vec<bool>,
    /// Idle flag per slave (set by IDLE/DONE, cleared by dispatch).
    idle: Vec<bool>,
    /// When each slave was last heard from, ns since run start. Seeded
    /// with 0 (the run start) so a not-yet-heard slave gets a startup
    /// grace of one `heartbeat_timeout` instead of counting as silent.
    last_seen: Vec<Option<u64>>,
    /// Per-slave graceful drain: no new dispatch, release when the last
    /// in-flight sub-task lands.
    slave_draining: Vec<bool>,
    draining: bool,
    counters: SchedCounters,
}

impl MasterSched {
    /// Machine for `n_slaves` slaves draining `dag` under `mode`, with an
    /// optional tile budget (resumed tiles count toward it).
    pub fn new(
        dag: &TaskDag,
        n_slaves: usize,
        mode: ScheduleMode,
        params: &SchedParams,
        budget: Option<u64>,
    ) -> Self {
        assert!(n_slaves > 0, "need at least one slave");
        Self {
            parser: DagParser::new(dag),
            register: RegisterTable::new(dag.len()),
            overtime: Vec::new(),
            mode,
            tile_cols: dag.dims().cols,
            n_slaves,
            task_timeout_ns: params.task_timeout_ns(),
            heartbeat_timeout_ns: params.heartbeat_timeout_ns(),
            budget,
            alive: vec![true; n_slaves],
            unreachable: vec![false; n_slaves],
            idle: vec![false; n_slaves],
            last_seen: vec![Some(0); n_slaves],
            slave_draining: vec![false; n_slaves],
            draining: false,
            counters: SchedCounters::default(),
        }
    }

    /// Grow the machine to `n` slaves — called when a mid-run joiner
    /// extends the fleet past its initial size. New slots start alive,
    /// busy (they announce IDLE themselves) and just-heard.
    pub fn grow_to(&mut self, n: usize) {
        while self.n_slaves < n {
            self.alive.push(true);
            self.unreachable.push(false);
            self.idle.push(false);
            self.last_seen.push(Some(0));
            self.slave_draining.push(false);
            self.n_slaves += 1;
        }
    }

    /// Current number of slave slots (grows with mid-run joins).
    pub fn n_slaves(&self) -> usize {
        self.n_slaves
    }

    /// Counters so far.
    pub fn counters(&self) -> SchedCounters {
        self.counters
    }

    /// Whether every task has completed.
    pub fn is_done(&self) -> bool {
        self.parser.is_done()
    }

    /// Per-slave liveness view (true = presumed alive).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Fast-forward one checkpointed task. The driver walks a topological
    /// order restricted to the checkpoint's finished set; a set that is
    /// not ancestor-closed surfaces here as a violation.
    pub fn preload_finished(&mut self, dag: &TaskDag, v: VertexId) -> Result<(), SchedViolation> {
        let claimed = self
            .parser
            .pop_computable_matching(|x| x == v)
            .ok_or_else(|| SchedViolation::new("checkpointed set must be ancestor-closed", v))?;
        self.parser
            .complete(dag, claimed, None)
            .map_err(|_| SchedViolation::new("claimed preload task completes", v))?;
        self.counters.resumed += 1;
        Ok(())
    }

    /// Whether `slave` has been silent past the heartbeat timeout
    /// (measured from run start when it was never heard from).
    fn silent(&self, slave: usize, now_ns: u64) -> bool {
        self.last_seen[slave].is_none_or(|t| now_ns.saturating_sub(t) > self.heartbeat_timeout_ns)
    }

    /// Exclude `slave` from scheduling; true if this call excluded it.
    fn exclude(&mut self, slave: usize, out: &mut Vec<MasterAction>) {
        if self.alive[slave] {
            self.alive[slave] = false;
            self.counters.exclusions += 1;
            out.push(MasterAction::Exclude { slave });
        }
    }

    fn budget_reached(&self) -> bool {
        self.budget
            .is_some_and(|b| self.counters.completed + self.counters.resumed >= b)
    }

    /// Feed one event; returns the actions the driver must perform, in
    /// order.
    pub fn on_event(
        &mut self,
        dag: &TaskDag,
        ev: MasterEvent,
    ) -> Result<Vec<MasterAction>, SchedViolation> {
        let mut out = Vec::new();
        match ev {
            MasterEvent::Tick { now_ns } => self.tick(dag, now_ns, &mut out),
            MasterEvent::FtTick { now_ns } => self.ft_tick(dag, now_ns, &mut out)?,
            MasterEvent::Heard { slave, at_ns } => {
                if slave < self.n_slaves {
                    self.last_seen[slave] = Some(at_ns);
                }
            }
            MasterEvent::Idle { slave } => {
                if slave < self.n_slaves {
                    self.idle[slave] = true;
                }
            }
            MasterEvent::Done { slave, task } => {
                if slave < self.n_slaves {
                    self.done(dag, slave, task, &ev, &mut out)?;
                }
            }
            MasterEvent::AssignRejected { slave, task } => {
                if slave >= self.n_slaves {
                    return Err(SchedViolation::new(
                        "rejected assign names unknown slave",
                        ev,
                    ));
                }
                // The task was never dispatched: back onto the computable
                // stack untouched, and the dispatch un-counted. The slave's
                // channel is gone for good.
                self.register.cancel(task);
                self.overtime.retain(|e| e.task != task);
                self.parser
                    .fail(dag, VertexId(task))
                    .map_err(|_| SchedViolation::new("rejected assignment was not running", ev))?;
                self.counters.dispatched -= 1;
                self.counters.send_failures += 1;
                self.idle[slave] = true;
                self.unreachable[slave] = true;
                self.exclude(slave, &mut out);
            }
            MasterEvent::SendFailed {
                slave,
                assign_task,
                reason,
                now_ns,
            } => {
                if slave < self.n_slaves {
                    self.send_failed(dag, slave, assign_task, reason, now_ns, &mut out)?;
                }
            }
            MasterEvent::Drain => self.draining = true,
            MasterEvent::Rejoined { slave, now_ns } => {
                self.rejoined(dag, slave, now_ns, &mut out)?
            }
            MasterEvent::StaleEpoch { slave, task } => {
                // The fenced incarnation's work never touches the
                // register: a stale-epoch DONE cannot be accepted even
                // if the task happens to be registered to this rank
                // (the *new* incarnation may legitimately be running it).
                if slave < self.n_slaves {
                    let _ = task;
                    self.counters.stale_epoch += 1;
                }
            }
            MasterEvent::DrainSlave { slave } => {
                if slave < self.n_slaves && !self.slave_draining[slave] {
                    self.slave_draining[slave] = true;
                    self.maybe_release(slave, &mut out);
                }
            }
        }
        Ok(out)
    }

    /// A new incarnation of `slave` was admitted (or a brand-new slave
    /// joined past the fleet's current size): roll the old incarnation's
    /// in-flight work back for redistribution, restore the slot to
    /// scheduling, and tell the driver to re-fence the transport.
    fn rejoined(
        &mut self,
        dag: &TaskDag,
        slave: usize,
        now_ns: u64,
        out: &mut Vec<MasterAction>,
    ) -> Result<(), SchedViolation> {
        if slave >= self.n_slaves {
            // Mid-run joiner: fresh slot, nothing to roll back.
            self.grow_to(slave + 1);
            self.last_seen[slave] = Some(now_ns);
            self.counters.rejoins += 1;
            out.push(MasterAction::Refence { slave });
            return Ok(());
        }
        // Roll back whatever the dead incarnation still held: its DONEs
        // will arrive (if at all) under a stale epoch and be fenced, so
        // the work must be redistributable *now*, not after the task
        // timeout.
        let mut mine = Vec::new();
        self.overtime.retain(|e| {
            if e.slave == slave as u32 {
                mine.push(*e);
                false
            } else {
                true
            }
        });
        for e in mine {
            if self.register.accepts(e.task, e.slave) {
                self.register.cancel(e.task);
                self.parser.fail(dag, VertexId(e.task)).map_err(|_| {
                    SchedViolation::new(
                        "rejoined slave's in-flight task was not running",
                        MasterEvent::Rejoined { slave, now_ns },
                    )
                })?;
                self.counters.redispatched += 1;
                out.push(MasterAction::Redispatch { task: e.task });
            }
        }
        // The new incarnation is reachable and idle by construction; a
        // pending drain applied to the old incarnation, not this one.
        self.unreachable[slave] = false;
        self.last_seen[slave] = Some(now_ns);
        self.idle[slave] = true;
        self.slave_draining[slave] = false;
        self.counters.rejoins += 1;
        if !self.alive[slave] {
            self.alive[slave] = true;
            self.counters.readmissions += 1;
            out.push(MasterAction::Readmit { slave });
        }
        out.push(MasterAction::Refence { slave });
        Ok(())
    }

    /// If `slave` is draining and holds nothing in flight, release it:
    /// out of scheduling for good, rank returned to the fleet.
    fn maybe_release(&mut self, slave: usize, out: &mut Vec<MasterAction>) {
        if !self.slave_draining[slave] || self.unreachable[slave] {
            return;
        }
        if self.overtime.iter().any(|e| e.slave == slave as u32) {
            return;
        }
        // Released, not excluded: the departure is voluntary, so it is
        // not counted as a death and never re-admitted.
        self.alive[slave] = false;
        self.unreachable[slave] = true;
        out.push(MasterAction::Release { slave });
    }

    /// One scheduling pass (the body the old threaded loop ran under its
    /// lock): re-admit wrongly excluded slaves, stop on done/budget,
    /// dispatch to idle live slaves, give up only when every channel is
    /// permanently gone.
    fn tick(&mut self, dag: &TaskDag, now_ns: u64, out: &mut Vec<MasterAction>) {
        // Re-admission: a dead-marked slave that was heard from recently
        // (and whose channel still exists) was slow or unlucky, not dead.
        for w in 0..self.n_slaves {
            if !self.alive[w] && !self.unreachable[w] && !self.silent(w, now_ns) {
                self.alive[w] = true;
                self.counters.readmissions += 1;
                out.push(MasterAction::Readmit { slave: w });
            }
        }

        // Stop *before* dispatching: once the budget is reached no new
        // work may start, so every in-flight completion can be drained
        // into the checkpoint during teardown.
        if self.parser.is_done() {
            out.push(MasterAction::Finished);
            return;
        }
        if self.budget_reached() {
            out.push(MasterAction::BudgetStop);
            return;
        }
        if self.draining {
            return;
        }

        // Dispatch computable sub-tasks to idle live slaves. When *every*
        // slave is presumed dead but some channels are still open,
        // dispatch speculatively to the silent-but-reachable ones: a slave
        // whose heartbeats are lost will ACK the ASSIGN and be re-admitted,
        // while a truly hung one exhausts the retry budget, turns
        // unreachable, and the run fails fast below.
        let alive_now = self.alive.clone();
        let none_alive = alive_now.iter().all(|a| !a);
        for w in 0..self.n_slaves {
            if self.slave_draining[w] {
                continue; // draining: finish in-flight work, take no more
            }
            let speculative = none_alive && !self.unreachable[w];
            if !self.idle[w] || !(alive_now[w] || speculative) {
                continue;
            }
            let picked = if speculative {
                self.parser.pop_computable()
            } else {
                // Orphan fallback: a statically-owned task whose owner is
                // excluded would otherwise never be dispatchable.
                pick_task(
                    &mut self.parser,
                    dag,
                    self.mode,
                    self.tile_cols,
                    self.n_slaves as u32,
                    w as u32,
                    Some(&|o| !alive_now[o as usize]),
                )
            };
            if let Some(v) = picked {
                self.register.register(v.0, w as u32);
                self.overtime.push(Overtime {
                    task: v.0,
                    slave: w as u32,
                    started_ns: now_ns,
                });
                self.idle[w] = false;
                self.counters.dispatched += 1;
                out.push(MasterAction::Assign {
                    slave: w,
                    task: v.0,
                });
            }
        }

        // Give up only when every slave is *unreachable* — its channel is
        // gone for good. Merely-silent slaves can be heard again and
        // re-admitted (and the speculative dispatch above actively probes
        // them), so presumed-dead is not a terminal state on its own.
        if self.unreachable.iter().all(|u| *u) {
            out.push(MasterAction::AllSlavesDead);
        }
    }

    /// One fault-tolerance sweep (step g of the paper's workflow):
    /// redistribute overdue sub-tasks; exclude a slave only when the
    /// heartbeat record says it is dead, not merely slow.
    fn ft_tick(
        &mut self,
        dag: &TaskDag,
        now_ns: u64,
        out: &mut Vec<MasterAction>,
    ) -> Result<(), SchedViolation> {
        let mut overdue = Vec::new();
        self.overtime.retain(|e| {
            if now_ns.saturating_sub(e.started_ns) >= self.task_timeout_ns {
                overdue.push(*e);
                false
            } else {
                true
            }
        });
        for e in overdue {
            if self.register.accepts(e.task, e.slave) {
                self.register.cancel(e.task);
                self.parser.fail(dag, VertexId(e.task)).map_err(|_| {
                    SchedViolation::new(
                        "overdue task was not running",
                        MasterEvent::FtTick { now_ns },
                    )
                })?;
                self.counters.redispatched += 1;
                out.push(MasterAction::Redispatch { task: e.task });
            }
        }
        // Liveness is judged for every slave, not only owners of overdue
        // work: a slave that crashes while holding nothing overdue (its
        // task already redispatched while it was merely slow) would
        // otherwise never be excluded — and in static modes its owned
        // tiles would never fall back to the survivors (deadlock, found
        // by `easyhps stress`).
        for w in 0..self.n_slaves {
            if self.unreachable[w] || self.silent(w, now_ns) {
                self.exclude(w, out);
            }
        }
        // The overdue drain may have taken back a draining slave's last
        // in-flight sub-task: it can be released now.
        for w in 0..self.n_slaves {
            self.maybe_release(w, out);
        }
        Ok(())
    }

    /// A DONE frame: authenticate against the register table; accept or
    /// count stale. Identical in the running and draining phases — a
    /// budget stop keeps accepting completions still in flight so they
    /// land in the checkpoint instead of being recomputed after resume.
    fn done(
        &mut self,
        dag: &TaskDag,
        slave: usize,
        task: u32,
        ev: &MasterEvent,
        out: &mut Vec<MasterAction>,
    ) -> Result<(), SchedViolation> {
        self.idle[slave] = true;
        if self.register.accepts(task, slave as u32) {
            self.register.cancel(task);
            self.overtime.retain(|e| e.task != task);
            self.parser
                .complete(dag, VertexId(task), None)
                .map_err(|_| {
                    SchedViolation::new("registered completion was not running", ev.clone())
                })?;
            self.counters.completed += 1;
            out.push(MasterAction::Accept { slave, task });
        } else {
            self.counters.stale += 1;
            out.push(MasterAction::Stale { slave, task });
        }
        self.maybe_release(slave, out);
        Ok(())
    }

    /// An abandoned reliable send: roll back the in-flight assignment (if
    /// it was one) so the task is redistributable, and judge the slave by
    /// its heartbeat — an unreachable peer is dead, a silent one presumed
    /// dead (re-admitted later if it turns out merely slow).
    fn send_failed(
        &mut self,
        dag: &TaskDag,
        slave: usize,
        assign_task: Option<u32>,
        reason: SendFailKind,
        now_ns: u64,
        out: &mut Vec<MasterAction>,
    ) -> Result<(), SchedViolation> {
        self.counters.send_failures += 1;
        if let Some(task) = assign_task {
            if self.register.accepts(task, slave as u32) {
                self.register.cancel(task);
                self.overtime.retain(|e| e.task != task);
                self.parser.fail(dag, VertexId(task)).map_err(|_| {
                    SchedViolation::new(
                        "undelivered task was not running",
                        MasterEvent::SendFailed {
                            slave,
                            assign_task,
                            reason,
                            now_ns,
                        },
                    )
                })?;
                self.counters.redispatched += 1;
                // The slave never saw the ASSIGN; it is not busy with it,
                // whatever its health.
                self.idle[slave] = true;
                out.push(MasterAction::CancelAssign { task });
            }
        }
        match reason {
            SendFailKind::Unreachable => {
                self.unreachable[slave] = true;
                self.exclude(slave, out);
            }
            SendFailKind::NoAck => {
                if self.silent(slave, now_ns) {
                    self.exclude(slave, out);
                }
            }
        }
        self.maybe_release(slave, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Wavefront2D;
    use crate::{GridDims, TaskDag};

    const MS: u64 = 1_000_000;

    fn dag4() -> TaskDag {
        // 2x2 wavefront: 0 -> {1, 2} -> 3.
        TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(2, 2)))
    }

    fn machine(dag: &TaskDag, slaves: usize, mode: ScheduleMode) -> MasterSched {
        MasterSched::new(dag, slaves, mode, &SchedParams::default(), None)
    }

    fn assigns(acts: &[MasterAction]) -> Vec<(usize, u32)> {
        acts.iter()
            .filter_map(|a| match a {
                MasterAction::Assign { slave, task } => Some((*slave, *task)),
                _ => None,
            })
            .collect()
    }

    /// Run a whole event sequence, collecting every action batch.
    fn feed(
        m: &mut MasterSched,
        dag: &TaskDag,
        evs: impl IntoIterator<Item = MasterEvent>,
    ) -> Vec<MasterAction> {
        evs.into_iter()
            .flat_map(|e| m.on_event(dag, e).expect("legal event sequence"))
            .collect()
    }

    /// Regression (startup-exclusion bug): a slave nobody has heard from
    /// yet is within the heartbeat grace window right after startup, not
    /// "silent since forever" — the FT sweep excluded healthy
    /// slow-starting slaves otherwise.
    #[test]
    fn never_heard_slave_gets_startup_grace() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        // Within the 250 ms default timeout: nobody is excluded.
        let acts = feed(&mut m, &dag, [MasterEvent::FtTick { now_ns: 100 * MS }]);
        assert!(acts.is_empty(), "{acts:?}");
        assert_eq!(m.alive(), &[true, true]);
    }

    /// The grace window still expires: a slave quiet past the heartbeat
    /// timeout measured from run start is silent.
    #[test]
    fn startup_grace_expires_after_heartbeat_timeout() {
        let dag = dag4();
        let mut m = machine(&dag, 1, ScheduleMode::Dynamic);
        let acts = feed(&mut m, &dag, [MasterEvent::FtTick { now_ns: 300 * MS }]);
        assert_eq!(acts, vec![MasterAction::Exclude { slave: 0 }]);
    }

    /// Table-driven transition coverage for the PR 2/PR 4 bug classes:
    /// each case is a pure event sequence and the actions it must end on.
    #[test]
    fn transition_table() {
        struct Case {
            name: &'static str,
            mode: ScheduleMode,
            events: Vec<MasterEvent>,
            last_actions: Vec<MasterAction>,
        }
        let idle = |slave| MasterEvent::Idle { slave };
        let heard = |slave, at_ns| MasterEvent::Heard { slave, at_ns };
        let cases = [
            Case {
                name: "dispatch goes to the idle slave only",
                mode: ScheduleMode::Dynamic,
                events: vec![idle(1)],
                // Idle itself emits nothing; the probe tick dispatches to
                // the one idle slave.
                last_actions: vec![MasterAction::Assign { slave: 1, task: 0 }],
            },
            Case {
                name: "tick assigns the one computable source",
                mode: ScheduleMode::Dynamic,
                events: vec![idle(0), idle(1)],
                last_actions: vec![MasterAction::Assign { slave: 0, task: 0 }],
            },
            Case {
                name: "silent slave is excluded, heartbeat re-admits it",
                mode: ScheduleMode::Dynamic,
                events: vec![
                    heard(0, 400 * MS),
                    MasterEvent::FtTick { now_ns: 400 * MS }, // slave 1 silent since 0
                    heard(1, 401 * MS),
                ],
                last_actions: vec![MasterAction::Readmit { slave: 1 }],
            },
            Case {
                name: "unreachable slave is never re-admitted",
                mode: ScheduleMode::Dynamic,
                events: vec![
                    MasterEvent::SendFailed {
                        slave: 1,
                        assign_task: None,
                        reason: SendFailKind::Unreachable,
                        now_ns: MS,
                    },
                    heard(1, 2 * MS),
                ],
                last_actions: vec![],
            },
        ];
        for c in cases {
            let dag = dag4();
            let mut m = machine(&dag, 2, c.mode);
            let mut last = Vec::new();
            for e in c.events {
                last = m.on_event(&dag, e).unwrap();
            }
            // The final probe tick surfaces re-admissions / dispatches.
            let probe = m
                .on_event(&dag, MasterEvent::Tick { now_ns: 402 * MS })
                .unwrap();
            let got: Vec<_> = last
                .iter()
                .chain(probe.iter())
                .filter(|a| {
                    matches!(
                        a,
                        MasterAction::Readmit { .. } | MasterAction::Assign { .. }
                    )
                })
                .cloned()
                .collect();
            match c.name {
                "tick assigns the one computable source" => {
                    assert_eq!(assigns(&got), vec![(0, 0)], "{}", c.name)
                }
                "silent slave is excluded, heartbeat re-admits it" => {
                    assert!(
                        got.contains(&MasterAction::Readmit { slave: 1 }),
                        "{}: {got:?}",
                        c.name
                    )
                }
                "unreachable slave is never re-admitted" => {
                    assert!(
                        !got.iter()
                            .any(|a| matches!(a, MasterAction::Readmit { .. })),
                        "{}: {got:?}",
                        c.name
                    )
                }
                _ => assert_eq!(got, c.last_actions, "{}", c.name),
            }
        }
    }

    /// Exclusion and re-admission round trip, with the dispatch shape
    /// checked at each step.
    #[test]
    fn exclusion_and_readmission() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        // Both idle; slave 0 takes the single source.
        feed(
            &mut m,
            &dag,
            [
                MasterEvent::Idle { slave: 0 },
                MasterEvent::Idle { slave: 1 },
            ],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: MS }]);
        assert_eq!(assigns(&acts), vec![(0, 0)]);
        // Slave 1 goes silent past the timeout; slave 0 keeps heartbeating.
        let now = 300 * MS;
        feed(
            &mut m,
            &dag,
            [MasterEvent::Heard {
                slave: 0,
                at_ns: now,
            }],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::FtTick { now_ns: now }]);
        assert!(
            acts.contains(&MasterAction::Exclude { slave: 1 }),
            "{acts:?}"
        );
        assert_eq!(m.alive(), &[true, false]);
        assert_eq!(m.counters().exclusions, 1);
        // It speaks again: the next tick re-admits it.
        feed(
            &mut m,
            &dag,
            [MasterEvent::Heard {
                slave: 1,
                at_ns: now + MS,
            }],
        );
        let acts = feed(
            &mut m,
            &dag,
            [MasterEvent::Tick {
                now_ns: now + 2 * MS,
            }],
        );
        assert!(
            acts.contains(&MasterAction::Readmit { slave: 1 }),
            "{acts:?}"
        );
        assert_eq!(m.counters().readmissions, 1);
        assert_eq!(m.alive(), &[true, true]);
    }

    /// Static-mode orphan fallback: the excluded owner's tiles go to a
    /// survivor instead of livelocking the wavefront.
    #[test]
    fn static_orphan_falls_back_to_survivor() {
        let dag = dag4(); // columns 0,1 -> owners 0,1 under ColumnWavefront
        let mut m = machine(&dag, 2, ScheduleMode::ColumnWavefront);
        // Exclude slave 0 (owner of the source column) via silence while
        // slave 1 stays heard.
        let now = 300 * MS;
        feed(
            &mut m,
            &dag,
            [MasterEvent::Heard {
                slave: 1,
                at_ns: now,
            }],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::FtTick { now_ns: now }]);
        assert!(acts.contains(&MasterAction::Exclude { slave: 0 }));
        // Slave 1 idle: it must adopt task 0 (owned by dead slave 0).
        feed(&mut m, &dag, [MasterEvent::Idle { slave: 1 }]);
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: now + MS }]);
        assert_eq!(assigns(&acts), vec![(1, 0)], "orphan adopted: {acts:?}");
    }

    /// Budget stop happens *before* dispatch, and completions still in
    /// flight are accepted during the drain.
    #[test]
    fn budget_stop_then_drain_accepts_inflight() {
        let dag = dag4();
        let mut m = MasterSched::new(
            &dag,
            2,
            ScheduleMode::Dynamic,
            &SchedParams::default(),
            Some(1),
        );
        feed(
            &mut m,
            &dag,
            [
                MasterEvent::Idle { slave: 0 },
                MasterEvent::Idle { slave: 1 },
            ],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: MS }]);
        assert_eq!(assigns(&acts), vec![(0, 0)]);
        // Completing task 0 reaches the budget of 1.
        let acts = feed(&mut m, &dag, [MasterEvent::Done { slave: 0, task: 0 }]);
        assert_eq!(acts, vec![MasterAction::Accept { slave: 0, task: 0 }]);
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: 2 * MS }]);
        assert_eq!(
            acts,
            vec![MasterAction::BudgetStop],
            "no dispatch after the budget"
        );
        assert_eq!(m.counters().dispatched, 1, "budget stop precedes dispatch");
        // Teardown: draining still authenticates and accepts completions
        // (here a stale one, since nothing else is in flight).
        feed(&mut m, &dag, [MasterEvent::Drain]);
        let acts = feed(&mut m, &dag, [MasterEvent::Done { slave: 1, task: 0 }]);
        assert_eq!(acts, vec![MasterAction::Stale { slave: 1, task: 0 }]);
        assert_eq!(m.counters().stale, 1);
    }

    /// Overdue drain redistributes and the stale duplicate from the slow
    /// slave is rejected — at-least-once dispatch stays safe.
    #[test]
    fn overdue_redispatch_then_stale_duplicate() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        feed(
            &mut m,
            &dag,
            [
                MasterEvent::Idle { slave: 0 },
                MasterEvent::Idle { slave: 1 },
            ],
        );
        feed(&mut m, &dag, [MasterEvent::Tick { now_ns: 0 }]);
        // 31 s later the task is overdue; both slaves still heartbeat so
        // neither is excluded — slow, not dead.
        let late = 31_000 * MS;
        feed(
            &mut m,
            &dag,
            [
                MasterEvent::Heard {
                    slave: 0,
                    at_ns: late,
                },
                MasterEvent::Heard {
                    slave: 1,
                    at_ns: late,
                },
            ],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::FtTick { now_ns: late }]);
        assert_eq!(acts, vec![MasterAction::Redispatch { task: 0 }]);
        assert_eq!(m.counters().redispatched, 1);
        // Redispatched to slave 1 (slave 0 is still presumed busy).
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: late + MS }]);
        assert_eq!(assigns(&acts), vec![(1, 0)]);
        // The slow original completes first... as a stale duplicate.
        let acts = feed(&mut m, &dag, [MasterEvent::Done { slave: 0, task: 0 }]);
        assert_eq!(acts, vec![MasterAction::Stale { slave: 0, task: 0 }]);
        // The registered copy lands.
        let acts = feed(&mut m, &dag, [MasterEvent::Done { slave: 1, task: 0 }]);
        assert_eq!(acts, vec![MasterAction::Accept { slave: 1, task: 0 }]);
        let c = m.counters();
        assert_eq!(
            c.dispatched,
            (c.completed - c.resumed) + c.redispatched,
            "conservation: {c:?}"
        );
    }

    /// A completion for a task that is not running is a structured error,
    /// not a panic (the old `expect("registered completion is running")`).
    #[test]
    fn impossible_completion_is_a_violation_not_a_panic() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        feed(&mut m, &dag, [MasterEvent::Idle { slave: 0 }]);
        feed(&mut m, &dag, [MasterEvent::Tick { now_ns: MS }]);
        // Forge the register into an inconsistent state to model a driver
        // bug: complete the task twice by replaying the same Done.
        m.on_event(&dag, MasterEvent::Done { slave: 0, task: 0 })
            .unwrap();
        m.register.register(0, 0); // adversarial: re-register a finished task
        let err = m
            .on_event(&dag, MasterEvent::Done { slave: 0, task: 0 })
            .unwrap_err();
        assert!(err.context.contains("not running"), "{err}");
        assert!(err.event.contains("task: 0"), "{err}");
    }

    /// All channels permanently gone -> AllSlavesDead, but merely-silent
    /// slaves keep the run alive (speculative dispatch probes them).
    #[test]
    fn all_unreachable_aborts_but_silence_does_not() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        // Both silent past timeout: excluded, but not aborted; an idle
        // silent slave still gets speculative work.
        let now = 300 * MS;
        feed(&mut m, &dag, [MasterEvent::FtTick { now_ns: now }]);
        assert_eq!(m.alive(), &[false, false]);
        feed(&mut m, &dag, [MasterEvent::Idle { slave: 0 }]);
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: now }]);
        assert_eq!(
            assigns(&acts),
            vec![(0, 0)],
            "speculative dispatch: {acts:?}"
        );
        assert!(!acts.contains(&MasterAction::AllSlavesDead));
        // Both channels actually gone: abort.
        feed(
            &mut m,
            &dag,
            [
                MasterEvent::SendFailed {
                    slave: 0,
                    assign_task: Some(0),
                    reason: SendFailKind::Unreachable,
                    now_ns: now,
                },
                MasterEvent::SendFailed {
                    slave: 1,
                    assign_task: None,
                    reason: SendFailKind::Unreachable,
                    now_ns: now,
                },
            ],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: now + MS }]);
        assert!(acts.contains(&MasterAction::AllSlavesDead), "{acts:?}");
    }

    /// A rejected ASSIGN rolls back completely: counters conserve and the
    /// task is immediately redispatchable elsewhere.
    #[test]
    fn rejected_assign_rolls_back() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        feed(
            &mut m,
            &dag,
            [
                MasterEvent::Idle { slave: 0 },
                MasterEvent::Idle { slave: 1 },
            ],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: MS }]);
        assert_eq!(assigns(&acts), vec![(0, 0)]);
        let acts = feed(
            &mut m,
            &dag,
            [MasterEvent::AssignRejected { slave: 0, task: 0 }],
        );
        assert!(acts.contains(&MasterAction::Exclude { slave: 0 }));
        assert_eq!(m.counters().dispatched, 0, "rolled back");
        assert_eq!(m.counters().send_failures, 1);
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: 2 * MS }]);
        assert_eq!(assigns(&acts), vec![(1, 0)], "survivor takes it over");
    }

    /// The two-incarnation zombie scenario: incarnation 1 takes a task,
    /// its link dies, it reconnects as incarnation 2 (Rejoined), and the
    /// delayed DONE of incarnation 1 then arrives as a stale-epoch frame.
    /// It must be counted and fenced — never accepted — and the task,
    /// rolled back at rejoin, is recomputed and accepted exactly once.
    #[test]
    fn stale_epoch_done_is_fenced_never_accepted() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        feed(
            &mut m,
            &dag,
            [
                MasterEvent::Idle { slave: 0 },
                MasterEvent::Idle { slave: 1 },
            ],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: MS }]);
        assert_eq!(assigns(&acts), vec![(0, 0)]);
        // Incarnation 1 of slave 0 dies; incarnation 2 is admitted.
        let acts = feed(
            &mut m,
            &dag,
            [MasterEvent::Rejoined {
                slave: 0,
                now_ns: 2 * MS,
            }],
        );
        assert!(
            acts.contains(&MasterAction::Redispatch { task: 0 }),
            "in-flight work rolled back at rejoin: {acts:?}"
        );
        assert!(
            acts.contains(&MasterAction::Refence { slave: 0 }),
            "{acts:?}"
        );
        assert_eq!(m.counters().rejoins, 1);
        // The zombie's delayed DONE arrives under the old epoch: the
        // driver classifies it as StaleEpoch. Nothing is accepted.
        let acts = feed(
            &mut m,
            &dag,
            [MasterEvent::StaleEpoch { slave: 0, task: 0 }],
        );
        assert!(acts.is_empty(), "fenced DONE produces no actions: {acts:?}");
        assert_eq!(m.counters().stale_epoch, 1);
        assert_eq!(m.counters().completed, 0, "never accepted");
        // The rolled-back task is redispatched (to the rejoined slave,
        // which came back idle) and its fresh completion is accepted —
        // exactly once.
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: 3 * MS }]);
        assert_eq!(assigns(&acts), vec![(0, 0)]);
        let acts = feed(&mut m, &dag, [MasterEvent::Done { slave: 0, task: 0 }]);
        assert_eq!(acts, vec![MasterAction::Accept { slave: 0, task: 0 }]);
        // A replay of the same stale frame is still fenced.
        feed(
            &mut m,
            &dag,
            [MasterEvent::StaleEpoch { slave: 0, task: 0 }],
        );
        let c = m.counters();
        assert_eq!(c.stale_epoch, 2);
        assert_eq!(c.completed, 1, "double-accept is impossible");
        assert_eq!(
            c.dispatched,
            (c.completed - c.resumed) + c.redispatched,
            "conservation: {c:?}"
        );
    }

    /// A rejoin of an *excluded* slave re-admits it, and a rejoin past
    /// the fleet size grows the machine (mid-run join).
    #[test]
    fn rejoin_readmits_and_join_grows() {
        let dag = dag4();
        let mut m = machine(&dag, 1, ScheduleMode::Dynamic);
        // Excluded by silence.
        feed(&mut m, &dag, [MasterEvent::FtTick { now_ns: 300 * MS }]);
        assert_eq!(m.alive(), &[false]);
        // A new incarnation readmits the slot without waiting for ticks.
        let acts = feed(
            &mut m,
            &dag,
            [MasterEvent::Rejoined {
                slave: 0,
                now_ns: 301 * MS,
            }],
        );
        assert!(
            acts.contains(&MasterAction::Readmit { slave: 0 }),
            "{acts:?}"
        );
        assert_eq!(m.alive(), &[true]);
        // A joiner past the fleet: the machine grows and dispatches to it.
        let acts = feed(
            &mut m,
            &dag,
            [MasterEvent::Rejoined {
                slave: 1,
                now_ns: 302 * MS,
            }],
        );
        assert!(
            acts.contains(&MasterAction::Refence { slave: 1 }),
            "{acts:?}"
        );
        assert_eq!(m.n_slaves(), 2);
        // Once the wavefront widens past the source, the joiner is
        // scheduled alongside the original slave.
        feed(&mut m, &dag, [MasterEvent::Idle { slave: 1 }]);
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: 303 * MS }]);
        assert_eq!(assigns(&acts), vec![(0, 0)], "source to first idle slave");
        feed(&mut m, &dag, [MasterEvent::Done { slave: 0, task: 0 }]);
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: 304 * MS }]);
        let got = assigns(&acts);
        assert!(
            got.iter().any(|(w, _)| *w == 1),
            "joiner gets work once the frontier widens: {got:?}"
        );
        assert_eq!(got.len(), 2, "both slaves busy: {got:?}");
    }

    /// Graceful drain: a draining slave takes no new work, its in-flight
    /// sub-task still lands, and the Release fires exactly when the last
    /// one drains. Released slaves never come back.
    #[test]
    fn drain_waits_for_inflight_then_releases() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        feed(
            &mut m,
            &dag,
            [
                MasterEvent::Idle { slave: 0 },
                MasterEvent::Idle { slave: 1 },
            ],
        );
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: MS }]);
        assert_eq!(assigns(&acts), vec![(0, 0)]);
        // Drain slave 0 while task 0 is in flight: no release yet.
        let acts = feed(&mut m, &dag, [MasterEvent::DrainSlave { slave: 0 }]);
        assert!(acts.is_empty(), "{acts:?}");
        // No new dispatch to the draining slave even though it turns idle.
        feed(&mut m, &dag, [MasterEvent::Idle { slave: 0 }]);
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: 2 * MS }]);
        assert!(assigns(&acts).is_empty(), "{acts:?}");
        // Its in-flight DONE is still accepted, and the release follows.
        let acts = feed(&mut m, &dag, [MasterEvent::Done { slave: 0, task: 0 }]);
        assert!(acts.contains(&MasterAction::Accept { slave: 0, task: 0 }));
        assert!(
            acts.contains(&MasterAction::Release { slave: 0 }),
            "{acts:?}"
        );
        // The released slot takes no more work; the survivor drains the DAG.
        feed(&mut m, &dag, [MasterEvent::Idle { slave: 0 }]);
        let acts = feed(&mut m, &dag, [MasterEvent::Tick { now_ns: 3 * MS }]);
        assert!(
            assigns(&acts).iter().all(|(w, _)| *w == 1),
            "released slave must not be scheduled: {acts:?}"
        );
        assert_eq!(m.counters().exclusions, 0, "voluntary exit is not a death");
    }

    /// Draining an idle slave releases it immediately.
    #[test]
    fn drain_of_idle_slave_releases_at_once() {
        let dag = dag4();
        let mut m = machine(&dag, 2, ScheduleMode::Dynamic);
        let acts = feed(&mut m, &dag, [MasterEvent::DrainSlave { slave: 1 }]);
        assert_eq!(acts, vec![MasterAction::Release { slave: 1 }]);
        // Idempotent: a second drain of the same slave does nothing.
        let acts = feed(&mut m, &dag, [MasterEvent::DrainSlave { slave: 1 }]);
        assert!(acts.is_empty(), "{acts:?}");
    }

    /// Checkpoint preload fast-forwards the parser and counts resumed.
    #[test]
    fn preload_fast_forwards() {
        let dag = dag4();
        let mut m = machine(&dag, 1, ScheduleMode::Dynamic);
        m.preload_finished(&dag, VertexId(0)).unwrap();
        assert_eq!(m.counters().resumed, 1);
        // A non-ancestor-closed set errors instead of panicking.
        let err = m.preload_finished(&dag, VertexId(3)).unwrap_err();
        assert!(err.context.contains("ancestor-closed"), "{err}");
    }
}
