//! Shared scheduling-policy constants.

use std::time::Duration;

/// Every duration the scheduling policy depends on, in one place.
///
/// Both executors consume this struct — the threaded runtime builds one
/// from its `Deployment` and the deterministic drivers use the defaults —
/// so a policy constant cannot drift between the real master loop and a
/// simulation of it. No driver may hard-code a literal duration of its
/// own: if a new knob is needed, it goes here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedParams {
    /// How long a dispatched sub-task may run before the fault-tolerance
    /// sweep presumes its executor failed and redistributes it.
    pub task_timeout: Duration,
    /// Cadence of the fault-tolerance sweep (overdue drain + liveness
    /// judgement).
    pub ft_poll: Duration,
    /// How often slaves emit a HEARTBEAT (also while computing a tile).
    pub heartbeat_interval: Duration,
    /// How long the master tolerates silence from a slave before treating
    /// it as dead rather than slow.
    pub heartbeat_timeout: Duration,
    /// Main-loop receive poll: how long the master blocks on its endpoint
    /// per scheduling iteration.
    pub recv_poll: Duration,
    /// Teardown-loop receive poll while draining final STATS/DONE frames.
    pub teardown_recv: Duration,
    /// Floor of the teardown drain deadline — the historical grace a fast
    /// retry policy still gets.
    pub drain_floor: Duration,
    /// Margin added to the drain deadline for slave-side compute of the
    /// stats reply itself.
    pub drain_margin: Duration,
    /// How long a slave lingers after replying STATS so the reply (and
    /// any late DONE) gets acked before the endpoint drops.
    pub slave_linger: Duration,
}

impl Default for SchedParams {
    fn default() -> Self {
        Self {
            task_timeout: Duration::from_secs(30),
            ft_poll: Duration::from_millis(20),
            heartbeat_interval: Duration::from_millis(25),
            heartbeat_timeout: Duration::from_millis(250),
            recv_poll: Duration::from_millis(2),
            teardown_recv: Duration::from_millis(50),
            drain_floor: Duration::from_secs(2),
            drain_margin: Duration::from_millis(500),
            slave_linger: Duration::from_secs(1),
        }
    }
}

impl SchedParams {
    /// Teardown drain deadline for a retry policy whose pending sends can
    /// spend `retry_drain_budget` in flight: the drain must outlive the
    /// slowest legitimate reply, floored and margined by the shared
    /// constants.
    pub fn drain_deadline(&self, retry_drain_budget: Duration) -> Duration {
        retry_drain_budget
            .max(self.drain_floor)
            .saturating_add(self.drain_margin)
    }

    /// `task_timeout` in nanoseconds (virtual-time drivers).
    pub fn task_timeout_ns(&self) -> u64 {
        self.task_timeout.as_nanos() as u64
    }

    /// `heartbeat_timeout` in nanoseconds (virtual-time drivers).
    pub fn heartbeat_timeout_ns(&self) -> u64 {
        self.heartbeat_timeout.as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_deadline_scales_with_retry_budget_but_is_floored() {
        let p = SchedParams::default();
        // Fast retry policies keep the historical 2 s + 500 ms grace.
        assert_eq!(
            p.drain_deadline(Duration::from_millis(100)),
            Duration::from_millis(2500)
        );
        // Slow ones scale: a 10 s retransmit cycle is not truncated.
        assert_eq!(
            p.drain_deadline(Duration::from_secs(10)),
            Duration::from_millis(10_500)
        );
    }

    #[test]
    fn ns_views_match_durations() {
        let p = SchedParams::default();
        assert_eq!(p.task_timeout_ns(), 30_000_000_000);
        assert_eq!(p.heartbeat_timeout_ns(), 250_000_000);
    }
}
