//! The worker-pool scheduler (paper §V-C): the slave's thread-level state
//! machine, also used single-level by the EasyPDP mode and under virtual
//! time by `easyhps-sim`.

use super::{pick_task, SchedViolation};
use crate::{DagParser, ScheduleMode, TaskDag, VertexId};

/// Input to the pool scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolEvent {
    /// The pool starts draining its DAG: fill every idle worker.
    Start,
    /// A worker reported the outcome of a sub-sub-task. `ok == false`
    /// means the kernel panicked and was caught — the task is re-queued
    /// (the paper's "restart the corresponding computing thread").
    WorkerDone {
        /// Worker index.
        worker: usize,
        /// Dense id in the pool's DAG.
        sub: u32,
        /// Whether the kernel completed.
        ok: bool,
    },
}

/// Effect the driver must perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolAction {
    /// Hand `sub` to `worker` for execution.
    Run {
        /// Worker index.
        worker: usize,
        /// Dense id in the pool's DAG.
        sub: u32,
    },
    /// Every task in the DAG has completed; the drive loop may stop.
    Done,
}

/// One driver-recorded `(event, actions)` exchange, for differential
/// replay across drivers.
pub type PoolLog = Vec<(PoolEvent, Vec<PoolAction>)>;

/// The slave worker-pool state machine: a [`DagParser`] over the pool's
/// DAG plus per-worker idle flags. Pure — no threads, channels or clocks;
/// the driver owns those and feeds [`PoolEvent`]s.
///
/// There is no orphan fallback at this level: workers are threads of one
/// process and do not die independently (a panicking kernel is caught and
/// its task re-queued via `ok: false`, which is a retry, not an
/// exclusion).
#[derive(Clone, Debug)]
pub struct PoolSched {
    parser: DagParser,
    mode: ScheduleMode,
    tile_cols: u32,
    idle: Vec<bool>,
}

impl PoolSched {
    /// Machine for `workers` identical executors draining `dag` under
    /// `mode`.
    pub fn new(dag: &TaskDag, workers: usize, mode: ScheduleMode) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        Self {
            parser: DagParser::new(dag),
            mode,
            tile_cols: dag.dims().cols,
            idle: vec![true; workers],
        }
    }

    /// Whether every task has completed.
    pub fn is_done(&self) -> bool {
        self.parser.is_done()
    }

    /// Feed one event; returns the actions the driver must perform, in
    /// order. Workers are filled in ascending index order — the dispatch
    /// order every driver observes is the machine's, not its own.
    pub fn on_event(
        &mut self,
        dag: &TaskDag,
        ev: PoolEvent,
    ) -> Result<Vec<PoolAction>, SchedViolation> {
        let mut out = Vec::new();
        match ev {
            PoolEvent::Start => {}
            PoolEvent::WorkerDone { worker, sub, ok } => {
                if worker >= self.idle.len() {
                    return Err(SchedViolation::new("result from unknown worker", ev));
                }
                self.idle[worker] = true;
                let v = VertexId(sub);
                if ok {
                    self.parser.complete(dag, v, None).map_err(|_| {
                        SchedViolation::new("worker completed a task that was not running", ev)
                    })?;
                } else {
                    // Thread-level fault tolerance: the panic was caught
                    // (the worker effectively restarted); re-queue the
                    // sub-sub-task for any worker.
                    self.parser.fail(dag, v).map_err(|_| {
                        SchedViolation::new("worker failed a task that was not running", ev)
                    })?;
                }
            }
        }
        self.dispatch(dag, &mut out);
        if self.parser.is_done() {
            out.push(PoolAction::Done);
        }
        Ok(out)
    }

    /// Fill every idle worker the scheduling mode allows.
    fn dispatch(&mut self, dag: &TaskDag, out: &mut Vec<PoolAction>) {
        let workers = self.idle.len();
        #[allow(clippy::needless_range_loop)] // w doubles as the worker id
        for w in 0..workers {
            if !self.idle[w] {
                continue;
            }
            let picked = pick_task(
                &mut self.parser,
                dag,
                self.mode,
                self.tile_cols,
                workers as u32,
                w as u32,
                None,
            );
            if let Some(v) = picked {
                self.idle[w] = false;
                out.push(PoolAction::Run {
                    worker: w,
                    sub: v.0,
                });
            }
        }
    }
}

/// Replay a recorded event log into a fresh machine, returning the action
/// batches it produces. The differential test asserts these are
/// action-for-action identical to what the recording driver observed —
/// the machine's behaviour is a function of the event sequence alone,
/// whichever executor delivered it.
pub fn replay_pool(
    dag: &TaskDag,
    workers: usize,
    mode: ScheduleMode,
    events: impl IntoIterator<Item = PoolEvent>,
) -> Result<Vec<Vec<PoolAction>>, SchedViolation> {
    let mut m = PoolSched::new(dag, workers, mode);
    events.into_iter().map(|ev| m.on_event(dag, ev)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{Linear1D, Wavefront2D};
    use crate::GridDims;

    fn drain(dag: &TaskDag, workers: usize, mode: ScheduleMode) -> (u64, PoolLog) {
        let mut m = PoolSched::new(dag, workers, mode);
        let mut log = PoolLog::new();
        let mut acts = m.on_event(dag, PoolEvent::Start).unwrap();
        log.push((PoolEvent::Start, acts.clone()));
        let mut completed = 0u64;
        let mut running: Vec<(usize, u32)> = Vec::new();
        loop {
            let mut done = false;
            for a in acts.drain(..) {
                match a {
                    PoolAction::Run { worker, sub } => running.push((worker, sub)),
                    PoolAction::Done => done = true,
                }
            }
            if done {
                break;
            }
            let (worker, sub) = running.remove(0);
            completed += 1;
            let ev = PoolEvent::WorkerDone {
                worker,
                sub,
                ok: true,
            };
            acts = m.on_event(dag, ev).unwrap();
            log.push((ev, acts.clone()));
        }
        assert!(m.is_done());
        (completed, log)
    }

    #[test]
    fn drains_whole_dag_exactly_once() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(4)));
        let (completed, _) = drain(&dag, 3, ScheduleMode::Dynamic);
        assert_eq!(completed, dag.len() as u64);
    }

    #[test]
    fn chain_runs_one_at_a_time() {
        let dag = TaskDag::from_pattern(&Linear1D::new(6));
        let mut m = PoolSched::new(&dag, 4, ScheduleMode::Dynamic);
        let acts = m.on_event(&dag, PoolEvent::Start).unwrap();
        let runs = acts
            .iter()
            .filter(|a| matches!(a, PoolAction::Run { .. }))
            .count();
        assert_eq!(runs, 1, "a chain admits one runnable task at a time");
    }

    #[test]
    fn failed_subtask_is_requeued_not_lost() {
        let dag = TaskDag::from_pattern(&Linear1D::new(2));
        let mut m = PoolSched::new(&dag, 1, ScheduleMode::Dynamic);
        let acts = m.on_event(&dag, PoolEvent::Start).unwrap();
        let PoolAction::Run { worker, sub } = acts[0] else {
            panic!("expected a dispatch")
        };
        // Kernel panic: the same sub comes straight back.
        let acts = m
            .on_event(
                &dag,
                PoolEvent::WorkerDone {
                    worker,
                    sub,
                    ok: false,
                },
            )
            .unwrap();
        assert_eq!(acts, vec![PoolAction::Run { worker: 0, sub }]);
    }

    #[test]
    fn bogus_completion_is_an_error_not_a_panic() {
        let dag = TaskDag::from_pattern(&Linear1D::new(3));
        let mut m = PoolSched::new(&dag, 2, ScheduleMode::Dynamic);
        m.on_event(&dag, PoolEvent::Start).unwrap();
        // Task 2 was never dispatched (blocked behind 0 and 1).
        let err = m
            .on_event(
                &dag,
                PoolEvent::WorkerDone {
                    worker: 0,
                    sub: 2,
                    ok: true,
                },
            )
            .unwrap_err();
        assert!(err.context.contains("not running"), "{err}");
        // Out-of-range worker likewise.
        let err = m
            .on_event(
                &dag,
                PoolEvent::WorkerDone {
                    worker: 9,
                    sub: 0,
                    ok: true,
                },
            )
            .unwrap_err();
        assert!(err.context.contains("unknown worker"), "{err}");
    }

    #[test]
    fn replay_reproduces_the_recorded_actions() {
        let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::new(3, 3)));
        let (_, log) = drain(&dag, 2, ScheduleMode::ColumnWavefront);
        let replayed = replay_pool(
            &dag,
            2,
            ScheduleMode::ColumnWavefront,
            log.iter().map(|(e, _)| *e),
        )
        .unwrap();
        let recorded: Vec<_> = log.into_iter().map(|(_, a)| a).collect();
        assert_eq!(replayed, recorded);
    }
}
