//! # easyhps-core — the DAG Data Driven Model
//!
//! Core data model of the EasyHPS runtime (Du, Yu, Sun, Sun, Tang, Yin,
//! *EasyHPS: A Multilevel Hybrid Parallel System for Dynamic Programming*,
//! IPDPS Workshops 2013): dependency **patterns** for DP recurrences, task
//! **partitioning** into abstract DAGs at process and thread granularity,
//! and the incremental **parser** that drives dynamic scheduling.
//!
//! ## Concepts
//!
//! * [`DagPattern`] — the shape of a recurrence's dependencies over a grid,
//!   with two levels: topological (what gates scheduling) and
//!   data-communication (what bytes must move). Library shapes live in
//!   [`patterns`]; anything else is a [`patterns::CustomPattern`].
//! * [`DagDataDrivenModel`] — a pattern plus `process_partition_size` /
//!   `thread_partition_size` and the data-mapping function (paper Table I).
//!   It produces the master DAG over tiles and, per tile, the slave DAG over
//!   sub-tiles.
//! * [`TaskDag`] / [`DagParser`] — the materialized DAG and its incremental
//!   topological parser: pop computable sub-tasks, complete (or fail) them,
//!   watch successors unblock.
//!
//! ## Quick example
//!
//! ```
//! use easyhps_core::{DagDataDrivenModel, DagParser, GridDims, PatternKind};
//!
//! // A 100x100 edit-distance style wavefront, split into 20x20 tiles at
//! // process level and 5x5 sub-tiles at thread level.
//! let model = DagDataDrivenModel::from_library(
//!     PatternKind::Wavefront2D,
//!     GridDims::square(100),
//!     GridDims::square(20),
//!     GridDims::square(5),
//! );
//! let master = model.master_dag();
//! assert_eq!(master.len(), 25);
//!
//! // Drain the master DAG the way a scheduler would.
//! let mut order = Vec::new();
//! DagParser::drain_sequential(&master, |v| order.push(v));
//! assert_eq!(order.len(), 25);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dag;
mod error;
mod geom;
mod model;
mod parser;
mod pattern;
pub mod patterns;
pub mod sched;
mod schedule;
mod trace;

pub use dag::{DagAnalysis, TaskDag, TaskVertex, VertexId};
pub use error::{ParseError, PatternError};
pub use geom::{GridDims, GridPos, TileRegion};
pub use model::{DagDataDrivenModel, DataMappingFn, ModelBuilder};
pub use parser::{DagParser, TaskState};
pub use pattern::{tile_region, DagPattern, PatternKind};
pub use schedule::ScheduleMode;
pub use trace::{natural_cmp, Span, Trace};
