//! Error types for DAG model construction and parsing.

use crate::geom::{GridDims, GridPos};
use std::fmt;

/// Errors raised while building or validating a DAG Pattern Model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// A position lies outside the pattern grid.
    OutOfBounds {
        /// The offending position.
        pos: GridPos,
        /// The pattern grid extent.
        dims: GridDims,
    },
    /// An edge references a vertex marked absent.
    EdgeToAbsentVertex {
        /// The absent vertex referenced by the edge.
        pos: GridPos,
    },
    /// A vertex was marked absent after edges were attached to it.
    AbsentVertexWithEdges {
        /// The vertex that already has edges attached.
        pos: GridPos,
    },
    /// A vertex depends on itself.
    SelfDependency {
        /// The self-referencing vertex.
        pos: GridPos,
    },
    /// The dependency relation contains a cycle through `pos`.
    Cycle {
        /// A vertex on the cycle.
        pos: GridPos,
    },
    /// A data dependency is not dominated by the topological predecessors,
    /// i.e. the vertex could start computing before data it reads is ready.
    UnorderedDataDependency {
        /// The reading vertex.
        vertex: GridPos,
        /// The data dependency not ordered before it.
        dep: GridPos,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::OutOfBounds { pos, dims } => {
                write!(f, "position {pos} outside pattern grid {dims}")
            }
            PatternError::EdgeToAbsentVertex { pos } => {
                write!(f, "edge references absent vertex {pos}")
            }
            PatternError::AbsentVertexWithEdges { pos } => {
                write!(f, "vertex {pos} has edges and cannot be marked absent")
            }
            PatternError::SelfDependency { pos } => {
                write!(f, "vertex {pos} depends on itself")
            }
            PatternError::Cycle { pos } => {
                write!(f, "dependency cycle through vertex {pos}")
            }
            PatternError::UnorderedDataDependency { vertex, dep } => {
                write!(
                    f,
                    "vertex {vertex} reads {dep}, which its predecessors do not guarantee finished"
                )
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// Errors raised by the runtime DAG parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Completion/failure reported for a vertex not currently running.
    NotRunning {
        /// Grid position of the sub-task.
        vertex: GridPos,
    },
    /// A vertex id out of range for the DAG.
    UnknownVertex {
        /// The out-of-range dense id.
        id: u32,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotRunning { vertex } => {
                write!(f, "vertex {vertex} is not currently running")
            }
            ParseError::UnknownVertex { id } => write!(f, "vertex id {id} out of range"),
        }
    }
}

impl std::error::Error for ParseError {}
