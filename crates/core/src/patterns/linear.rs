//! 1D chain pattern.

use crate::geom::{GridDims, GridPos};
use crate::pattern::{DagPattern, PatternKind};
use std::sync::Arc;

/// A 1D chain of `n` stages: stage `i` depends on stage `i-1`. Useful for
/// staged reductions and as the degenerate pattern in tests; also the shape
/// of 1D DP recurrences with `O(1)` lookback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Linear1D {
    n: u32,
}

impl Linear1D {
    /// Chain of `n` stages.
    pub fn new(n: u32) -> Self {
        Self { n }
    }

    /// Number of stages.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// True when the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl DagPattern for Linear1D {
    fn dims(&self) -> GridDims {
        GridDims::new(1, self.n)
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.col > 0 {
            out.push(GridPos::new(0, p.col - 1));
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Linear1D
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        Arc::new(Linear1D::new(self.n.div_ceil(tile.cols)))
    }

    fn vertex_count(&self) -> u64 {
        self.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_dependencies() {
        let p = Linear1D::new(5);
        let mut v = Vec::new();
        p.predecessors(GridPos::new(0, 0), &mut v);
        assert!(v.is_empty());
        p.predecessors(GridPos::new(0, 3), &mut v);
        assert_eq!(v, vec![GridPos::new(0, 2)]);
    }

    #[test]
    fn coarsen_shortens_chain() {
        let p = Linear1D::new(10);
        let c = p.coarsen(GridDims::new(1, 4));
        assert_eq!(c.dims(), GridDims::new(1, 3));
        assert_eq!(c.kind(), PatternKind::Linear1D);
    }
}
