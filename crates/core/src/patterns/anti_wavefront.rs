//! Bottom-left-origin wavefront pattern.

use crate::geom::{GridDims, GridPos};
use crate::pattern::{DagPattern, PatternKind};
use std::sync::Arc;

/// A wavefront that sweeps from the bottom-left corner: cell `(i, j)`
/// depends on `(i+1, j)` (below) and `(i, j-1)` (left).
///
/// This is the intra-tile shape of an *off-diagonal* tile of a triangular
/// 2D/1D problem: inside such a tile every cell is valid and the Nussinov
/// recurrence's `(i, j-1)` / `(i+1, j)` dependencies make the lower-left
/// corner the unique source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AntiWavefront2D {
    dims: GridDims,
}

impl AntiWavefront2D {
    /// Anti-wavefront over a `dims` grid.
    pub fn new(dims: GridDims) -> Self {
        Self { dims }
    }
}

impl DagPattern for AntiWavefront2D {
    fn dims(&self) -> GridDims {
        self.dims
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row + 1 < self.dims.rows {
            out.push(GridPos::new(p.row + 1, p.col));
        }
        if p.col > 0 {
            out.push(GridPos::new(p.row, p.col - 1));
        }
    }

    fn kind(&self) -> PatternKind {
        // Structurally a 2D/0D wavefront, only mirrored; report Custom so
        // callers don't assume the top-left orientation.
        PatternKind::Custom
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        Arc::new(AntiWavefront2D::new(self.dims.tiled_by(tile)))
    }

    fn vertex_count(&self) -> u64 {
        self.dims.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_is_bottom_left() {
        let p = AntiWavefront2D::new(GridDims::new(3, 4));
        let mut v = Vec::new();
        p.predecessors(GridPos::new(2, 0), &mut v);
        assert!(v.is_empty());
        p.predecessors(GridPos::new(0, 3), &mut v);
        assert_eq!(v, vec![GridPos::new(1, 3), GridPos::new(0, 2)]);
    }

    #[test]
    fn is_acyclic() {
        let dag = crate::dag::TaskDag::from_pattern(&AntiWavefront2D::new(GridDims::new(4, 5)));
        dag.validate().unwrap();
        // Unique source, unique sink.
        assert_eq!(dag.sources().len(), 1);
    }

    #[test]
    fn coarsen_preserves_orientation() {
        let p = AntiWavefront2D::new(GridDims::new(6, 6));
        let c = p.coarsen(GridDims::square(2));
        assert_eq!(c.dims(), GridDims::square(3));
        let mut v = Vec::new();
        c.predecessors(GridPos::new(1, 1), &mut v);
        assert_eq!(v, vec![GridPos::new(2, 1), GridPos::new(1, 0)]);
    }
}
