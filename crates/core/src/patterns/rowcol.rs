//! 2D/1D rectangular pattern: full row/column prefix data dependencies.

use crate::geom::{GridDims, GridPos};
use crate::pattern::{DagPattern, PatternKind};
use std::sync::Arc;

/// Smith-Waterman with a *general* gap function `w(k)` reads, for cell
/// `(i, j)`, the whole row prefix `(i, 0..j)`, the whole column prefix
/// `(0..i, j)` and the match cell `(i-1, j-1)` — a 2D/1D recurrence in the
/// Galil-Park taxonomy. The cell is *unblocked* as soon as `(i-1, j)` and
/// `(i, j-1)` finish, because those transitively dominate every data
/// dependency, so the topological level is still a wavefront while the data
/// communication level carries `O(n)` edges per vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowColumn2D1D {
    dims: GridDims,
}

impl RowColumn2D1D {
    /// Row/column-prefix pattern over a `dims` grid.
    pub fn new(dims: GridDims) -> Self {
        Self { dims }
    }
}

impl DagPattern for RowColumn2D1D {
    fn dims(&self) -> GridDims {
        self.dims
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row > 0 {
            out.push(GridPos::new(p.row - 1, p.col));
        }
        if p.col > 0 {
            out.push(GridPos::new(p.row, p.col - 1));
        }
    }

    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        for c in 0..p.col {
            out.push(GridPos::new(p.row, c));
        }
        for r in 0..p.row {
            out.push(GridPos::new(r, p.col));
        }
        if p.row > 0 && p.col > 0 {
            out.push(GridPos::new(p.row - 1, p.col - 1));
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::RowColumn2D1D
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        // Row/column prefixes of tiles are again row/column prefixes, and the
        // cell-level diagonal dependency maps to the diagonal tile.
        Arc::new(RowColumn2D1D::new(self.dims.tiled_by(tile)))
    }

    fn vertex_count(&self) -> u64 {
        self.dims.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_deps_are_row_and_column_prefixes() {
        let p = RowColumn2D1D::new(GridDims::square(5));
        let mut v = Vec::new();
        p.data_dependencies(GridPos::new(2, 3), &mut v);
        // row prefix (2,0..3), column prefix (0..2,3), diagonal (1,2)
        assert_eq!(v.len(), 3 + 2 + 1);
        assert!(v.contains(&GridPos::new(2, 0)));
        assert!(v.contains(&GridPos::new(1, 3)));
        assert!(v.contains(&GridPos::new(1, 2)));
        assert!(!v.contains(&GridPos::new(2, 3)));
    }

    #[test]
    fn topological_preds_are_wavefront_without_diagonal() {
        let p = RowColumn2D1D::new(GridDims::square(5));
        let mut v = Vec::new();
        p.predecessors(GridPos::new(2, 3), &mut v);
        assert_eq!(v, vec![GridPos::new(1, 3), GridPos::new(2, 2)]);
    }

    #[test]
    fn preds_transitively_dominate_data_deps() {
        // Every data dependency must be finished once the topological
        // predecessors are: check by explicit reachability on a small grid.
        let p = RowColumn2D1D::new(GridDims::square(4));
        let dag = crate::dag::TaskDag::from_pattern(&p);
        dag.validate().unwrap();
    }

    #[test]
    fn coarsen_matches_generic_scan() {
        let p = RowColumn2D1D::new(GridDims::new(6, 8));
        let tile = GridDims::new(2, 2);
        let fast = p.coarsen(tile);
        let slow = crate::pattern::coarsen_by_scan(&p, tile);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tp in fast.dims().iter() {
            a.clear();
            b.clear();
            fast.data_dependencies(tp, &mut a);
            slow.data_dependencies(tp, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "data deps of tile {tp}");
            a.clear();
            b.clear();
            fast.predecessors(tp, &mut a);
            slow.predecessors(tp, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "preds of tile {tp}");
        }
    }
}
