//! 2D/1D upper-triangular pattern (Nussinov, matrix-chain, optimal BST).

use crate::geom::{GridDims, GridPos};
use crate::pattern::{coarsen_by_scan, DagPattern, PatternKind};
use std::sync::Arc;

/// Upper-triangular 2D/1D pattern over an `n x n` grid: only cells with
/// `col >= row` exist. Cell `(i, j)` is unblocked by `(i, j-1)` and
/// `(i+1, j)` and reads the row segment `(i, i..j)`, the column segment
/// `(i+1..=j, j)` and the pairing cell `(i+1, j-1)`.
///
/// This is the shape of the Nussinov recurrence (paper Fig. 5):
///
/// ```text
/// F[i,j] = max( F[i,j-1],
///               F[i,k-1] + F[k+1,j-1] + 1 )   for i <= k <= j-2
/// ```
///
/// and likewise of matrix-chain multiplication and optimal BST construction.
/// Work grows along the main diagonal toward the upper-right corner, which
/// is exactly the load imbalance that motivates dynamic scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TriangularGap {
    n: u32,
}

impl TriangularGap {
    /// Triangular pattern over an `n x n` grid.
    pub fn new(n: u32) -> Self {
        Self { n }
    }

    /// Side length of the (square) grid.
    pub fn side(&self) -> u32 {
        self.n
    }
}

impl DagPattern for TriangularGap {
    fn dims(&self) -> GridDims {
        GridDims::square(self.n)
    }

    fn contains(&self, p: GridPos) -> bool {
        p.row < self.n && p.col < self.n && p.col >= p.row
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        // (i, j-1): left neighbour, valid while j-1 >= i.
        if p.col > 0 && p.col > p.row {
            out.push(GridPos::new(p.row, p.col - 1));
        }
        // (i+1, j): lower neighbour, valid while i+1 <= j.
        if p.row < p.col {
            out.push(GridPos::new(p.row + 1, p.col));
        }
    }

    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        // Row segment F[i, i..j].
        for c in p.row..p.col {
            out.push(GridPos::new(p.row, c));
        }
        // Column segment F[i+1..=j, j].
        for r in (p.row + 1)..=p.col {
            out.push(GridPos::new(r, p.col));
        }
        // Pairing cell F[i+1, j-1].
        if p.row < p.col.saturating_sub(1) && p.col >= 1 {
            let q = GridPos::new(p.row + 1, p.col - 1);
            if !out.contains(&q) {
                out.push(q);
            }
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::TriangularGap
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        if tile.rows == tile.cols {
            // Square blocking preserves the triangle: tile (R, C) exists iff
            // C >= R, and the segment dependencies map to tile segments.
            Arc::new(TriangularGap::new(self.n.div_ceil(tile.rows)))
        } else {
            Arc::new(coarsen_by_scan(self, tile))
        }
    }

    fn vertex_count(&self) -> u64 {
        let n = self.n as u64;
        n * (n + 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_upper_triangle_exists() {
        let p = TriangularGap::new(4);
        assert!(p.contains(GridPos::new(0, 3)));
        assert!(p.contains(GridPos::new(2, 2)));
        assert!(!p.contains(GridPos::new(3, 1)));
        assert!(!p.contains(GridPos::new(0, 4)));
        assert_eq!(p.vertex_count(), 10);
    }

    #[test]
    fn diagonal_cells_are_sources() {
        let p = TriangularGap::new(5);
        let mut v = Vec::new();
        p.predecessors(GridPos::new(3, 3), &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn interior_preds_are_left_and_below() {
        let p = TriangularGap::new(5);
        let mut v = Vec::new();
        p.predecessors(GridPos::new(1, 3), &mut v);
        assert_eq!(v, vec![GridPos::new(1, 2), GridPos::new(2, 3)]);
    }

    #[test]
    fn data_deps_cover_row_and_column_segments() {
        let p = TriangularGap::new(6);
        let mut v = Vec::new();
        p.data_dependencies(GridPos::new(1, 4), &mut v);
        // row (1,1),(1,2),(1,3); col (2,4),(3,4),(4,4); pair (2,3)
        assert_eq!(v.len(), 7);
        for d in &v {
            assert!(p.contains(*d), "dep {d} must be a valid vertex");
        }
        assert!(v.contains(&GridPos::new(2, 3)));
    }

    #[test]
    fn all_deps_inside_triangle() {
        let p = TriangularGap::new(8);
        let mut v = Vec::new();
        for pos in p.dims().iter().filter(|&q| p.contains(q)) {
            v.clear();
            p.data_dependencies(pos, &mut v);
            for d in &v {
                assert!(p.contains(*d), "cell {pos}: dep {d} outside triangle");
            }
            v.clear();
            p.predecessors(pos, &mut v);
            for d in &v {
                assert!(p.contains(*d), "cell {pos}: pred {d} outside triangle");
            }
        }
    }

    #[test]
    fn square_coarsen_matches_generic_scan() {
        let p = TriangularGap::new(9);
        let tile = GridDims::square(2);
        let fast = p.coarsen(tile);
        let slow = coarsen_by_scan(&p, tile);
        assert_eq!(fast.dims(), GridDims::square(5));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tp in fast.dims().iter() {
            assert_eq!(fast.contains(tp), slow.contains(tp), "presence of {tp}");
            if !fast.contains(tp) {
                continue;
            }
            a.clear();
            b.clear();
            fast.predecessors(tp, &mut a);
            slow.predecessors(tp, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "preds of tile {tp}");
        }
    }

    #[test]
    fn rectangular_tile_falls_back_to_scan() {
        let p = TriangularGap::new(6);
        let c = p.coarsen(GridDims::new(2, 3));
        assert_eq!(c.kind(), PatternKind::Custom);
        crate::dag::TaskDag::from_pattern(c.as_ref())
            .validate()
            .unwrap();
    }
}
