//! User-defined DAG Pattern Models (paper §IV-C "user-defined patterns").

use crate::geom::{GridDims, GridPos};
use crate::pattern::{DagPattern, PatternKind};
use crate::PatternError;

/// An explicit pattern over a grid: per-vertex presence, predecessor lists
/// and data-dependency lists. This is what a programmer builds when no
/// library pattern fits their recurrence, and also what generic coarsening
/// produces.
///
/// Construct with [`CustomPattern::builder`] (closure-driven) or
/// [`CustomPattern::from_edges`]; both validate that edges stay in-grid and
/// point at present vertices. Acyclicity is checked by
/// [`CustomPattern::validate`] (and by [`crate::dag::TaskDag::validate`]).
#[derive(Clone, Debug)]
pub struct CustomPattern {
    dims: GridDims,
    present: Vec<bool>,
    preds: Vec<Vec<GridPos>>,
    /// `None` = data deps default to the topological predecessors;
    /// `Some(v)` = explicit list, authoritative even when empty.
    data: Vec<Option<Vec<GridPos>>>,
}

impl CustomPattern {
    /// Build from raw parts. Used by generic coarsening; panics on length
    /// mismatches.
    pub(crate) fn from_parts(
        dims: GridDims,
        present: Vec<bool>,
        preds: Vec<Vec<GridPos>>,
        data: Vec<Vec<GridPos>>,
    ) -> Self {
        let n = dims.area() as usize;
        assert_eq!(present.len(), n);
        assert_eq!(preds.len(), n);
        assert_eq!(data.len(), n);
        Self {
            dims,
            present,
            preds,
            data: data.into_iter().map(Some).collect(),
        }
    }

    /// Start a builder for a fully-present grid of `dims`.
    pub fn builder(dims: GridDims) -> CustomPatternBuilder {
        let n = dims.area() as usize;
        CustomPatternBuilder {
            pattern: Self {
                dims,
                present: vec![true; n],
                preds: vec![Vec::new(); n],
                data: vec![None; n],
            },
        }
    }

    /// Build a pattern from an explicit edge list `(from, to)` meaning *to
    /// depends on from*. Data dependencies equal topological predecessors.
    pub fn from_edges(
        dims: GridDims,
        edges: impl IntoIterator<Item = (GridPos, GridPos)>,
    ) -> Result<Self, PatternError> {
        let mut b = Self::builder(dims);
        for (from, to) in edges {
            b = b.dependency(to, from)?;
        }
        b.finish()
    }

    /// Check the pattern is a DAG (no dependency cycles among present
    /// vertices).
    pub fn validate(&self) -> Result<(), PatternError> {
        crate::dag::TaskDag::from_pattern(self).validate()
    }
}

impl DagPattern for CustomPattern {
    fn dims(&self) -> GridDims {
        self.dims
    }

    fn contains(&self, p: GridPos) -> bool {
        self.dims.contains(p) && self.present[self.dims.linear(p)]
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        out.extend_from_slice(&self.preds[self.dims.linear(p)]);
    }

    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        match &self.data[self.dims.linear(p)] {
            // Data deps default to the topological predecessors.
            None => out.extend_from_slice(&self.preds[self.dims.linear(p)]),
            Some(d) => out.extend_from_slice(d),
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Custom
    }
}

/// Incremental builder for [`CustomPattern`].
#[derive(Debug)]
pub struct CustomPatternBuilder {
    pattern: CustomPattern,
}

impl CustomPatternBuilder {
    /// Mark `p` as absent (not a vertex). Fails if `p` is out of bounds or
    /// already referenced by an edge.
    pub fn absent(mut self, p: GridPos) -> Result<Self, PatternError> {
        let dims = self.pattern.dims;
        if !dims.contains(p) {
            return Err(PatternError::OutOfBounds { pos: p, dims });
        }
        let idx = dims.linear(p);
        if !self.pattern.preds[idx].is_empty() || self.pattern.data[idx].is_some() {
            return Err(PatternError::AbsentVertexWithEdges { pos: p });
        }
        self.pattern.present[idx] = false;
        Ok(self)
    }

    /// Declare that `vertex` topologically depends on `on` (also recorded as
    /// a data dependency unless data deps are set explicitly).
    pub fn dependency(mut self, vertex: GridPos, on: GridPos) -> Result<Self, PatternError> {
        self.check_edge(vertex, on)?;
        let idx = self.pattern.dims.linear(vertex);
        if !self.pattern.preds[idx].contains(&on) {
            self.pattern.preds[idx].push(on);
        }
        Ok(self)
    }

    /// Declare a data-communication dependency of `vertex` on `on` without
    /// adding a topological edge (use when a transitive predecessor already
    /// guarantees ordering).
    pub fn data_dependency(mut self, vertex: GridPos, on: GridPos) -> Result<Self, PatternError> {
        self.check_edge(vertex, on)?;
        let idx = self.pattern.dims.linear(vertex);
        let list = self.pattern.data[idx].get_or_insert_with(Vec::new);
        if !list.contains(&on) {
            list.push(on);
        }
        Ok(self)
    }

    fn check_edge(&self, vertex: GridPos, on: GridPos) -> Result<(), PatternError> {
        let dims = self.pattern.dims;
        for p in [vertex, on] {
            if !dims.contains(p) {
                return Err(PatternError::OutOfBounds { pos: p, dims });
            }
            if !self.pattern.present[dims.linear(p)] {
                return Err(PatternError::EdgeToAbsentVertex { pos: p });
            }
        }
        if vertex == on {
            return Err(PatternError::SelfDependency { pos: vertex });
        }
        Ok(())
    }

    /// Finish building; verifies acyclicity.
    pub fn finish(self) -> Result<CustomPattern, PatternError> {
        self.pattern.validate()?;
        Ok(self.pattern)
    }

    /// Finish without the acyclicity check (for very large patterns where
    /// the caller guarantees the property).
    pub fn finish_unchecked(self) -> CustomPattern {
        self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_and_validates() {
        let dims = GridDims::new(1, 3);
        let p = CustomPattern::from_edges(
            dims,
            [
                (GridPos::new(0, 0), GridPos::new(0, 1)),
                (GridPos::new(0, 1), GridPos::new(0, 2)),
            ],
        )
        .unwrap();
        let mut v = Vec::new();
        p.predecessors(GridPos::new(0, 2), &mut v);
        assert_eq!(v, vec![GridPos::new(0, 1)]);
    }

    #[test]
    fn cycle_is_rejected() {
        let dims = GridDims::new(1, 2);
        let err = CustomPattern::from_edges(
            dims,
            [
                (GridPos::new(0, 0), GridPos::new(0, 1)),
                (GridPos::new(0, 1), GridPos::new(0, 0)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, PatternError::Cycle { .. }));
    }

    #[test]
    fn self_dependency_is_rejected() {
        let b = CustomPattern::builder(GridDims::new(2, 2));
        let err = b
            .dependency(GridPos::new(0, 0), GridPos::new(0, 0))
            .unwrap_err();
        assert!(matches!(err, PatternError::SelfDependency { .. }));
    }

    #[test]
    fn out_of_bounds_edge_is_rejected() {
        let b = CustomPattern::builder(GridDims::new(2, 2));
        let err = b
            .dependency(GridPos::new(0, 0), GridPos::new(5, 5))
            .unwrap_err();
        assert!(matches!(err, PatternError::OutOfBounds { .. }));
    }

    #[test]
    fn absent_vertices_are_skipped() {
        let p = CustomPattern::builder(GridDims::new(2, 2))
            .absent(GridPos::new(1, 1))
            .unwrap()
            .dependency(GridPos::new(0, 1), GridPos::new(0, 0))
            .unwrap()
            .finish()
            .unwrap();
        assert!(!p.contains(GridPos::new(1, 1)));
        assert_eq!(p.vertex_count(), 3);
    }

    #[test]
    fn edges_to_absent_vertices_rejected() {
        let b = CustomPattern::builder(GridDims::new(2, 2))
            .absent(GridPos::new(1, 1))
            .unwrap();
        let err = b
            .dependency(GridPos::new(1, 1), GridPos::new(0, 0))
            .unwrap_err();
        assert!(matches!(err, PatternError::EdgeToAbsentVertex { .. }));
    }

    #[test]
    fn data_deps_default_to_preds() {
        let p = CustomPattern::builder(GridDims::new(1, 2))
            .dependency(GridPos::new(0, 1), GridPos::new(0, 0))
            .unwrap()
            .finish()
            .unwrap();
        let mut v = Vec::new();
        p.data_dependencies(GridPos::new(0, 1), &mut v);
        assert_eq!(v, vec![GridPos::new(0, 0)]);
    }

    #[test]
    fn explicit_data_deps_override_default() {
        let dims = GridDims::new(1, 3);
        let p = CustomPattern::builder(dims)
            .dependency(GridPos::new(0, 1), GridPos::new(0, 0))
            .unwrap()
            .dependency(GridPos::new(0, 2), GridPos::new(0, 1))
            .unwrap()
            .data_dependency(GridPos::new(0, 2), GridPos::new(0, 0))
            .unwrap()
            .finish()
            .unwrap();
        let mut v = Vec::new();
        p.data_dependencies(GridPos::new(0, 2), &mut v);
        assert_eq!(v, vec![GridPos::new(0, 0)]);
    }
}
