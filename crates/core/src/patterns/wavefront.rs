//! 2D/0D rectangular wavefront pattern.

use crate::geom::{GridDims, GridPos};
use crate::pattern::{DagPattern, PatternKind};
use std::sync::Arc;

/// The classic anti-diagonal wavefront: cell `(i, j)` depends on `(i-1, j)`,
/// `(i, j-1)` and `(i-1, j-1)`. Edit distance, LCS and affine-gap
/// Smith-Waterman (Gotoh) all have this shape; it is the paper's running
/// example for task partition (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wavefront2D {
    dims: GridDims,
}

impl Wavefront2D {
    /// Wavefront over a `dims` grid.
    pub fn new(dims: GridDims) -> Self {
        Self { dims }
    }
}

impl DagPattern for Wavefront2D {
    fn dims(&self) -> GridDims {
        self.dims
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row > 0 {
            out.push(GridPos::new(p.row - 1, p.col));
        }
        if p.col > 0 {
            out.push(GridPos::new(p.row, p.col - 1));
        }
        if p.row > 0 && p.col > 0 {
            out.push(GridPos::new(p.row - 1, p.col - 1));
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Wavefront2D
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        // A wavefront of tiles is again a wavefront: tile (R, C) needs its
        // west, north and north-west neighbour tiles.
        Arc::new(Wavefront2D::new(self.dims.tiled_by(tile)))
    }

    fn vertex_count(&self) -> u64 {
        self.dims.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preds(p: &Wavefront2D, pos: (u32, u32)) -> Vec<GridPos> {
        let mut v = Vec::new();
        p.predecessors(pos.into(), &mut v);
        v
    }

    #[test]
    fn corner_has_no_predecessors() {
        let p = Wavefront2D::new(GridDims::square(4));
        assert!(preds(&p, (0, 0)).is_empty());
    }

    #[test]
    fn edges_have_one_predecessor() {
        let p = Wavefront2D::new(GridDims::square(4));
        assert_eq!(preds(&p, (0, 2)), vec![GridPos::new(0, 1)]);
        assert_eq!(preds(&p, (2, 0)), vec![GridPos::new(1, 0)]);
    }

    #[test]
    fn interior_has_three_predecessors() {
        let p = Wavefront2D::new(GridDims::square(4));
        let got = preds(&p, (2, 3));
        assert_eq!(
            got,
            vec![GridPos::new(1, 3), GridPos::new(2, 2), GridPos::new(1, 2)]
        );
    }

    #[test]
    fn coarsen_preserves_shape() {
        let p = Wavefront2D::new(GridDims::new(10, 8));
        let c = p.coarsen(GridDims::new(3, 3));
        assert_eq!(c.dims(), GridDims::new(4, 3));
        assert_eq!(c.kind(), PatternKind::Wavefront2D);
    }

    #[test]
    fn coarsen_matches_generic_scan() {
        let p = Wavefront2D::new(GridDims::new(7, 9));
        let tile = GridDims::new(2, 3);
        let fast = p.coarsen(tile);
        let slow = crate::pattern::coarsen_by_scan(&p, tile);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tp in fast.dims().iter() {
            a.clear();
            b.clear();
            fast.predecessors(tp, &mut a);
            slow.predecessors(tp, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "tile {tp}");
        }
    }
}
