//! Banded 2D/0D wavefront: the Ukkonen-style diagonal band.

use crate::geom::{GridDims, GridPos};
use crate::pattern::{coarsen_by_scan, DagPattern, PatternKind};
use std::sync::Arc;

/// A wavefront restricted to the diagonal band `|row - col| <= band` —
/// the shape of banded alignment, where cells far from the main diagonal
/// are provably irrelevant and never computed. Cuts an `n x n` problem to
/// `O(n * band)` work while keeping the wavefront schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Banded2D {
    dims: GridDims,
    band: u32,
}

impl Banded2D {
    /// Banded wavefront over `dims` keeping cells with
    /// `|row - col| <= band`.
    pub fn new(dims: GridDims, band: u32) -> Self {
        Self { dims, band }
    }

    /// The band half-width.
    pub fn band(&self) -> u32 {
        self.band
    }

    #[inline]
    fn in_band(&self, p: GridPos) -> bool {
        p.row.abs_diff(p.col) <= self.band
    }
}

impl DagPattern for Banded2D {
    fn dims(&self) -> GridDims {
        self.dims
    }

    fn contains(&self, p: GridPos) -> bool {
        self.dims.contains(p) && self.in_band(p)
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        for q in [
            (p.row > 0).then(|| GridPos::new(p.row - 1, p.col)),
            (p.col > 0).then(|| GridPos::new(p.row, p.col - 1)),
            (p.row > 0 && p.col > 0).then(|| GridPos::new(p.row - 1, p.col - 1)),
        ]
        .into_iter()
        .flatten()
        {
            if self.in_band(q) {
                out.push(q);
            }
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Custom
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        if tile.rows == tile.cols {
            // Square blocking keeps the band shape: tile (R, C) intersects
            // the band iff |R - C| * t <= band + t - 1. The coarse band's
            // diagonal edges are a (sound) superset of the exact tile
            // edges: at band corners a NW tile pair can both touch the
            // band without sharing a cell-level dependency; the extra edge
            // only makes scheduling marginally more conservative.
            let t = tile.rows;
            Arc::new(Banded2D::new(
                self.dims.tiled_by(tile),
                self.band.div_ceil(t),
            ))
        } else {
            Arc::new(coarsen_by_scan(self, tile))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_membership() {
        let p = Banded2D::new(GridDims::square(10), 2);
        assert!(p.contains(GridPos::new(5, 5)));
        assert!(p.contains(GridPos::new(5, 7)));
        assert!(!p.contains(GridPos::new(5, 8)));
        assert!(!p.contains(GridPos::new(9, 0)));
    }

    #[test]
    fn predecessors_stay_in_band() {
        let p = Banded2D::new(GridDims::square(10), 1);
        let mut v = Vec::new();
        // (3, 4) is on the upper band edge: its north neighbour (2, 4) is
        // outside the band.
        p.predecessors(GridPos::new(3, 4), &mut v);
        assert_eq!(v, vec![GridPos::new(3, 3), GridPos::new(2, 3)]);
    }

    #[test]
    fn validates_as_dag() {
        for band in [0, 1, 3, 20] {
            let p = Banded2D::new(GridDims::square(12), band);
            crate::dag::TaskDag::from_pattern(&p).validate().unwrap();
        }
    }

    #[test]
    fn zero_band_is_the_diagonal_chain() {
        let p = Banded2D::new(GridDims::square(6), 0);
        let dag = crate::dag::TaskDag::from_pattern(&p);
        assert_eq!(dag.len(), 6);
        assert_eq!(dag.sources().len(), 1);
        // Pure diagonal: each vertex has exactly one predecessor.
        assert_eq!(dag.edge_count(), 5);
    }

    #[test]
    fn vertex_count_is_linear_in_band() {
        let wide = Banded2D::new(GridDims::square(100), 50).vertex_count();
        let narrow = Banded2D::new(GridDims::square(100), 5).vertex_count();
        assert!(narrow < wide / 4);
        assert_eq!(
            narrow,
            (0..100u64)
                .map(|i| {
                    let lo = i.saturating_sub(5);
                    let hi = (i + 5).min(99);
                    hi - lo + 1
                })
                .sum::<u64>()
        );
    }

    #[test]
    fn square_coarsen_presence_exact_and_edges_superset() {
        let p = Banded2D::new(GridDims::square(20), 4);
        let tile = GridDims::square(3);
        let fast = p.coarsen(tile);
        let scan = coarsen_by_scan(&p, tile);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tp in fast.dims().iter() {
            assert_eq!(fast.contains(tp), scan.contains(tp), "presence of {tp}");
            if !fast.contains(tp) {
                continue;
            }
            a.clear();
            b.clear();
            fast.predecessors(tp, &mut a);
            scan.predecessors(tp, &mut b);
            for q in &b {
                assert!(a.contains(q), "fast coarse must keep scan edge {q} of {tp}");
            }
        }
        crate::dag::TaskDag::from_pattern(fast.as_ref())
            .validate()
            .unwrap();
    }

    #[test]
    fn rectangular_tiles_fall_back_to_scan() {
        let p = Banded2D::new(GridDims::square(12), 3);
        let c = p.coarsen(GridDims::new(2, 3));
        crate::dag::TaskDag::from_pattern(c.as_ref())
            .validate()
            .unwrap();
    }
}
