//! Row-above-prefix lookback pattern ("1.5D" recurrences like knapsack).

use crate::geom::{GridDims, GridPos};
use crate::pattern::{DagPattern, PatternKind};
use std::sync::Arc;

/// A recurrence where cell `(i, j)` reads only cells of the *previous row*
/// at arbitrary columns up to `j` — the 0/1-knapsack shape
/// `V[i,w] = max(V[i-1,w], V[i-1, w - w_i] + v_i)`.
///
/// Topologically a wavefront suffices (the west edge chains make the whole
/// previous-row prefix an ancestor), but the data-communication level must
/// carry the full prefix of the row above, because the lookback distance
/// `w_i` is data-dependent and unbounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowLookback2D {
    dims: GridDims,
}

impl RowLookback2D {
    /// Pattern over a `dims` grid.
    pub fn new(dims: GridDims) -> Self {
        Self { dims }
    }
}

impl DagPattern for RowLookback2D {
    fn dims(&self) -> GridDims {
        self.dims
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row > 0 {
            out.push(GridPos::new(p.row - 1, p.col));
        }
        if p.col > 0 {
            out.push(GridPos::new(p.row, p.col - 1));
        }
    }

    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        // Full prefix of the previous row, inclusive of the same column.
        if p.row > 0 {
            for c in 0..=p.col {
                out.push(GridPos::new(p.row - 1, c));
            }
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Custom
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        Arc::new(CoarseRowLookback2D {
            grid: self.dims,
            tile,
        })
    }

    fn vertex_count(&self) -> u64 {
        self.dims.area()
    }
}

/// Tile-level shape of [`RowLookback2D`]: a tile reads the whole previous
/// row band up to its own column, plus (when its own band is taller than
/// one row) its own row band strictly to the left.
#[derive(Clone, Copy, Debug)]
struct CoarseRowLookback2D {
    grid: GridDims,
    tile: GridDims,
}

impl CoarseRowLookback2D {
    fn band_rows(&self, band: u32) -> u32 {
        let start = band * self.tile.rows;
        (start + self.tile.rows).min(self.grid.rows) - start
    }
}

impl DagPattern for CoarseRowLookback2D {
    fn dims(&self) -> GridDims {
        self.grid.tiled_by(self.tile)
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row > 0 {
            out.push(GridPos::new(p.row - 1, p.col));
        }
        if p.col > 0 {
            out.push(GridPos::new(p.row, p.col - 1));
        }
    }

    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row > 0 {
            for c in 0..=p.col {
                out.push(GridPos::new(p.row - 1, c));
            }
        }
        if self.band_rows(p.row) >= 2 {
            for c in 0..p.col {
                out.push(GridPos::new(p.row, c));
            }
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Custom
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        Arc::new(CoarseRowLookback2D {
            grid: self.grid,
            tile: GridDims::new(self.tile.rows * tile.rows, self.tile.cols * tile.cols),
        })
    }

    fn vertex_count(&self) -> u64 {
        self.dims().area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::coarsen_by_scan;

    #[test]
    fn cell_data_deps_are_previous_row_prefix() {
        let p = RowLookback2D::new(GridDims::new(3, 5));
        let mut v = Vec::new();
        p.data_dependencies(GridPos::new(2, 3), &mut v);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|q| q.row == 1 && q.col <= 3));
        v.clear();
        p.data_dependencies(GridPos::new(0, 4), &mut v);
        assert!(v.is_empty(), "first row has no lookback");
    }

    #[test]
    fn validates_as_dag() {
        crate::dag::TaskDag::from_pattern(&RowLookback2D::new(GridDims::new(6, 8)))
            .validate()
            .unwrap();
    }

    fn assert_coarsen_matches_scan(grid: GridDims, tile: GridDims) {
        let p = RowLookback2D::new(grid);
        let fast = p.coarsen(tile);
        let scan = coarsen_by_scan(&p, tile);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tp in fast.dims().iter() {
            a.clear();
            b.clear();
            fast.data_dependencies(tp, &mut a);
            scan.data_dependencies(tp, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "grid {grid} tile {tile}: data deps of tile {tp}");
        }
    }

    #[test]
    fn coarse_matches_scan() {
        assert_coarsen_matches_scan(GridDims::new(8, 8), GridDims::new(2, 2));
        assert_coarsen_matches_scan(GridDims::new(9, 7), GridDims::new(2, 3));
        assert_coarsen_matches_scan(GridDims::new(6, 5), GridDims::new(1, 2));
        assert_coarsen_matches_scan(GridDims::new(5, 6), GridDims::new(5, 2));
    }

    #[test]
    fn coarse_dag_validates() {
        let p = RowLookback2D::new(GridDims::new(40, 60));
        let c = p.coarsen(GridDims::new(7, 9));
        crate::dag::TaskDag::from_pattern(c.as_ref())
            .validate()
            .unwrap();
    }
}
