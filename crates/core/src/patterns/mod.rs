//! The DAG Pattern Model library (paper §IV-C).
//!
//! Frequently used dependency shapes ship with the system; anything else can
//! be expressed as a [`CustomPattern`]. Every built-in pattern is closed
//! under square blocking, so the abstract DAG after task partition has the
//! same shape at a coarser granularity.

mod anti_wavefront;
mod banded;
mod custom;
mod full;
mod linear;
mod prev_row;
mod restricted;
mod row_lookback;
mod rowcol;
mod triangular;
mod wavefront;

pub use anti_wavefront::AntiWavefront2D;
pub use banded::Banded2D;
pub use custom::CustomPattern;
pub use full::Full2D2D;
pub use linear::Linear1D;
pub use prev_row::PrevRow2D;
pub use restricted::RestrictedPattern;
pub use row_lookback::RowLookback2D;
pub use rowcol::RowColumn2D1D;
pub use triangular::TriangularGap;
pub use wavefront::Wavefront2D;

use crate::pattern::{DagPattern, PatternKind};
use crate::GridDims;
use std::sync::Arc;

/// Look up a built-in pattern by kind. Returns `None` for
/// [`PatternKind::Custom`], which has no canonical instance.
pub fn builtin(kind: PatternKind, dims: GridDims) -> Option<Arc<dyn DagPattern>> {
    Some(match kind {
        PatternKind::Wavefront2D => Arc::new(Wavefront2D::new(dims)),
        PatternKind::RowColumn2D1D => Arc::new(RowColumn2D1D::new(dims)),
        PatternKind::TriangularGap => {
            assert_eq!(
                dims.rows, dims.cols,
                "triangular pattern requires a square grid"
            );
            Arc::new(TriangularGap::new(dims.rows))
        }
        PatternKind::Full2D2D => Arc::new(Full2D2D::new(dims)),
        PatternKind::Linear1D => Arc::new(Linear1D::new(dims.cols.max(dims.rows))),
        PatternKind::Custom => return None,
    })
}
