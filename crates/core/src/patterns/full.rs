//! 2D/2D rectangular pattern.

use crate::geom::{GridDims, GridPos};
use crate::pattern::{DagPattern, PatternKind};
use std::sync::Arc;

/// A 2D/2D recurrence (paper Algorithm 4.3): cell `(i, j)` reads every cell
/// `(i', j')` with `i' < i` and `j' < j`. Topologically the west and north
/// neighbours dominate everything, so the scheduling frontier is still a
/// wavefront, but the data communication level is dense: at the tile level a
/// tile needs every tile in the dominated quadrant, including (when a band
/// holds more than one row or column) tiles in its own row and column bands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Full2D2D {
    dims: GridDims,
}

impl Full2D2D {
    /// 2D/2D pattern over a `dims` grid.
    pub fn new(dims: GridDims) -> Self {
        Self { dims }
    }
}

impl DagPattern for Full2D2D {
    fn dims(&self) -> GridDims {
        self.dims
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row > 0 {
            out.push(GridPos::new(p.row - 1, p.col));
        }
        if p.col > 0 {
            out.push(GridPos::new(p.row, p.col - 1));
        }
    }

    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        for r in 0..p.row {
            for c in 0..p.col {
                out.push(GridPos::new(r, c));
            }
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Full2D2D
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        Arc::new(CoarseFull2D2D {
            grid: self.dims,
            tile,
        })
    }

    fn vertex_count(&self) -> u64 {
        self.dims.area()
    }
}

/// Tile-level shape of [`Full2D2D`].
///
/// A tile `(R, C)` always reads every tile strictly north-west of it. It
/// additionally reads tiles in its own row band `(R, C' < C)` when the band
/// spans at least two rows (an inner cell then dominates a cell above it in
/// the same band), and symmetrically for its column band.
#[derive(Clone, Copy, Debug)]
struct CoarseFull2D2D {
    grid: GridDims,
    tile: GridDims,
}

impl CoarseFull2D2D {
    fn band_rows(&self, band: u32) -> u32 {
        let start = band * self.tile.rows;
        (start + self.tile.rows).min(self.grid.rows) - start
    }

    fn band_cols(&self, band: u32) -> u32 {
        let start = band * self.tile.cols;
        (start + self.tile.cols).min(self.grid.cols) - start
    }
}

impl DagPattern for CoarseFull2D2D {
    fn dims(&self) -> GridDims {
        self.grid.tiled_by(self.tile)
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row > 0 {
            out.push(GridPos::new(p.row - 1, p.col));
        }
        if p.col > 0 {
            out.push(GridPos::new(p.row, p.col - 1));
        }
    }

    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        // Strict north-west quadrant.
        for r in 0..p.row {
            for c in 0..p.col {
                out.push(GridPos::new(r, c));
            }
        }
        // Own row band, when it is more than one row tall.
        if self.band_rows(p.row) >= 2 {
            for c in 0..p.col {
                out.push(GridPos::new(p.row, c));
            }
        }
        // Own column band, when it is more than one column wide.
        if self.band_cols(p.col) >= 2 {
            for r in 0..p.row {
                out.push(GridPos::new(r, p.col));
            }
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Full2D2D
    }

    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        // Coarsening a coarse pattern re-derives from the effective cell
        // grid with a combined tile size.
        Arc::new(CoarseFull2D2D {
            grid: self.grid,
            tile: GridDims::new(self.tile.rows * tile.rows, self.tile.cols * tile.cols),
        })
    }

    fn vertex_count(&self) -> u64 {
        self.dims().area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::coarsen_by_scan;

    #[test]
    fn data_deps_are_dominated_quadrant() {
        let p = Full2D2D::new(GridDims::square(4));
        let mut v = Vec::new();
        p.data_dependencies(GridPos::new(2, 3), &mut v);
        assert_eq!(v.len(), 6);
        assert!(v.contains(&GridPos::new(0, 0)));
        assert!(v.contains(&GridPos::new(1, 2)));
        assert!(
            !v.contains(&GridPos::new(2, 2)),
            "same row is not dominated at cell level"
        );
    }

    fn assert_coarsen_matches_scan(grid: GridDims, tile: GridDims) {
        let p = Full2D2D::new(grid);
        let fast = p.coarsen(tile);
        let scan = coarsen_by_scan(&p, tile);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tp in fast.dims().iter() {
            a.clear();
            b.clear();
            fast.data_dependencies(tp, &mut a);
            scan.data_dependencies(tp, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "grid {grid} tile {tile}: data deps of tile {tp}");
            a.clear();
            b.clear();
            fast.predecessors(tp, &mut a);
            scan.predecessors(tp, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "grid {grid} tile {tile}: preds of tile {tp}");
        }
    }

    #[test]
    fn coarse_matches_scan_even_blocks() {
        assert_coarsen_matches_scan(GridDims::square(8), GridDims::square(2));
    }

    #[test]
    fn coarse_matches_scan_ragged_blocks() {
        // 9x9 with 2x2 tiles leaves a one-row and one-column last band.
        assert_coarsen_matches_scan(GridDims::square(9), GridDims::square(2));
    }

    #[test]
    fn coarse_matches_scan_degenerate_bands() {
        // 1-wide tiles: the coarse grid *is* the cell grid column-wise.
        assert_coarsen_matches_scan(GridDims::new(6, 5), GridDims::new(2, 1));
        assert_coarsen_matches_scan(GridDims::new(5, 6), GridDims::new(1, 2));
    }

    #[test]
    fn validates_as_dag() {
        let p = Full2D2D::new(GridDims::new(5, 6));
        crate::dag::TaskDag::from_pattern(&p).validate().unwrap();
    }
}
