//! Full-previous-row pattern (Viterbi-style row barriers).

use crate::geom::{GridDims, GridPos};
use crate::pattern::{DagPattern, PatternKind};

/// A recurrence where every cell of row `t` reads the *entire* row `t-1`
/// (Viterbi trellises, power-iteration-style sweeps). Rows are barriers:
/// cells within a row are mutually independent, but no cell of row `t`
/// may start before all of row `t-1` finished.
///
/// Partitioning caveat: splitting both rows *and* columns makes sibling
/// column tiles of one band depend on each other (each holds part of the
/// previous row the other needs), which is a cycle. The generic coarsening
/// faithfully produces that cycle, and
/// [`crate::TaskDag::validate`]/[`crate::TaskDag::topological_order`]
/// reject it — partition this pattern by rows only (tile `cols >= grid
/// cols`), or with single-row bands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrevRow2D {
    dims: GridDims,
}

impl PrevRow2D {
    /// Pattern over a `dims` grid.
    pub fn new(dims: GridDims) -> Self {
        Self { dims }
    }
}

impl DagPattern for PrevRow2D {
    fn dims(&self) -> GridDims {
        self.dims
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        if p.row > 0 {
            for c in 0..self.dims.cols {
                out.push(GridPos::new(p.row - 1, c));
            }
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Custom
    }

    fn vertex_count(&self) -> u64 {
        self.dims.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskDag;

    #[test]
    fn rows_are_barriers() {
        let p = PrevRow2D::new(GridDims::new(3, 4));
        let dag = TaskDag::from_pattern(&p);
        dag.validate().unwrap();
        // Row 0 cells are sources; every row-1 cell has 4 preds.
        assert_eq!(dag.sources().len(), 4);
        let v = dag.vertex_at(GridPos::new(1, 2)).unwrap();
        assert_eq!(dag.vertex(v).preds.len(), 4);
    }

    #[test]
    fn row_partition_coarsens_to_a_chain() {
        let p = PrevRow2D::new(GridDims::new(12, 6));
        let c = p.coarsen(GridDims::new(3, 6)); // full-row tiles
        let dag = TaskDag::from_pattern(c.as_ref());
        dag.validate().unwrap();
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.edge_count(), 3, "a pure chain of row bands");
    }

    #[test]
    fn single_row_bands_with_column_splits_are_fine() {
        let p = PrevRow2D::new(GridDims::new(6, 8));
        let c = p.coarsen(GridDims::new(1, 3));
        TaskDag::from_pattern(c.as_ref()).validate().unwrap();
    }

    #[test]
    fn column_splitting_multi_row_bands_is_rejected_as_cyclic() {
        let p = PrevRow2D::new(GridDims::new(6, 8));
        let c = p.coarsen(GridDims::new(2, 4));
        let dag = TaskDag::from_pattern(c.as_ref());
        assert!(
            dag.topological_order().is_err(),
            "sibling column tiles must form a detectable cycle"
        );
    }
}
