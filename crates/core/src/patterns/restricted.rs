//! Restriction of a pattern to a rectangular cell region.

use crate::geom::{GridDims, GridPos, TileRegion};
use crate::pattern::{DagPattern, PatternKind};
use std::sync::Arc;

/// The sub-DAG a pattern induces on a region, in region-local coordinates.
///
/// Dependencies that leave the region are dropped: from the region's point
/// of view they are boundary *inputs*, guaranteed finished before the region
/// is scheduled (the master DAG orders whole tiles). This is the generic,
/// always-correct way to obtain the slave-level DAG of one master tile; the
/// built-in patterns have analytic fast paths in
/// [`crate::model::DagDataDrivenModel::slave_pattern`].
#[derive(Clone, Debug)]
pub struct RestrictedPattern {
    base: Arc<dyn DagPattern>,
    region: TileRegion,
}

impl RestrictedPattern {
    /// Restrict `base` to `region`; panics if the region leaves the base grid.
    pub fn new(base: Arc<dyn DagPattern>, region: TileRegion) -> Self {
        let dims = base.dims();
        assert!(
            region.row_end <= dims.rows && region.col_end <= dims.cols,
            "region {region:?} outside base grid {dims}"
        );
        Self { base, region }
    }

    /// The restricted-to region in base-grid coordinates.
    pub fn region(&self) -> TileRegion {
        self.region
    }

    #[inline]
    fn to_global(&self, p: GridPos) -> GridPos {
        GridPos::new(p.row + self.region.row_start, p.col + self.region.col_start)
    }

    #[inline]
    fn to_local(&self, p: GridPos) -> GridPos {
        GridPos::new(p.row - self.region.row_start, p.col - self.region.col_start)
    }
}

impl DagPattern for RestrictedPattern {
    fn dims(&self) -> GridDims {
        GridDims::new(self.region.rows(), self.region.cols())
    }

    fn contains(&self, p: GridPos) -> bool {
        self.dims().contains(p) && self.base.contains(self.to_global(p))
    }

    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>) {
        let mut tmp = Vec::new();
        self.base.predecessors(self.to_global(p), &mut tmp);
        for g in tmp {
            if self.region.contains(g) {
                out.push(self.to_local(g));
            }
        }
    }

    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        let mut tmp = Vec::new();
        self.base.data_dependencies(self.to_global(p), &mut tmp);
        for g in tmp {
            if self.region.contains(g) {
                out.push(self.to_local(g));
            }
        }
    }

    fn kind(&self) -> PatternKind {
        PatternKind::Custom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{TriangularGap, Wavefront2D};

    #[test]
    fn restriction_localizes_coordinates() {
        let base: Arc<dyn DagPattern> = Arc::new(Wavefront2D::new(GridDims::square(10)));
        let r = RestrictedPattern::new(base, TileRegion::new(4, 8, 2, 6));
        assert_eq!(r.dims(), GridDims::square(4));
        let mut v = Vec::new();
        // Local (0,0) is global (4,2): its preds (3,2),(4,1),(3,1) are all
        // outside the region -> boundary inputs, dropped.
        r.predecessors(GridPos::new(0, 0), &mut v);
        assert!(v.is_empty());
        v.clear();
        r.predecessors(GridPos::new(1, 1), &mut v);
        assert_eq!(
            v,
            vec![GridPos::new(0, 1), GridPos::new(1, 0), GridPos::new(0, 0)]
        );
    }

    #[test]
    fn off_diagonal_triangular_restriction_is_anti_wavefront() {
        let base: Arc<dyn DagPattern> = Arc::new(TriangularGap::new(12));
        // Region rows 0..4, cols 8..12 — fully above the diagonal.
        let r = RestrictedPattern::new(base, TileRegion::new(0, 4, 8, 12));
        let dag = crate::dag::TaskDag::from_pattern(&r);
        assert_eq!(dag.len(), 16, "all cells valid off-diagonal");
        dag.validate().unwrap();
        // Unique source at local bottom-left.
        let sources = dag.sources();
        assert_eq!(sources.len(), 1);
        assert_eq!(dag.vertex(sources[0]).pos, GridPos::new(3, 0));
    }

    #[test]
    fn diagonal_triangular_restriction_is_triangle() {
        let base: Arc<dyn DagPattern> = Arc::new(TriangularGap::new(12));
        let r = RestrictedPattern::new(base, TileRegion::new(4, 8, 4, 8));
        assert_eq!(r.vertex_count(), 10);
        crate::dag::TaskDag::from_pattern(&r).validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "outside base grid")]
    fn out_of_grid_region_panics() {
        let base: Arc<dyn DagPattern> = Arc::new(Wavefront2D::new(GridDims::square(4)));
        RestrictedPattern::new(base, TileRegion::new(0, 5, 0, 4));
    }
}
