//! Grid geometry for DP matrices and their tilings.
//!
//! The paper's Table I describes sizes and positions with `SizeT(row,col)`
//! and `PosT(x,y)`; we mirror those as [`GridDims`] and [`GridPos`].

use std::fmt;

/// Position of a cell (or tile) in a DP grid. `(row, col)` with `(0, 0)` the
/// upper-left corner, matching the paper's `dag_pos`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridPos {
    /// Row index (0-based from the top).
    pub row: u32,
    /// Column index (0-based from the left).
    pub col: u32,
}

impl GridPos {
    /// Create a position from row and column indices.
    #[inline]
    pub const fn new(row: u32, col: u32) -> Self {
        Self { row, col }
    }

    /// Manhattan anti-diagonal index (`row + col`), the wavefront number.
    #[inline]
    pub const fn diagonal(self) -> u32 {
        self.row + self.col
    }
}

impl fmt::Debug for GridPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

impl fmt::Display for GridPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

impl From<(u32, u32)> for GridPos {
    fn from((row, col): (u32, u32)) -> Self {
        Self { row, col }
    }
}

/// Rectangular extent of a grid, the paper's `SizeT(row, col)` (`dag_size`,
/// `partition_size`, `rect_size`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDims {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
}

impl GridDims {
    /// Create an extent from row and column counts.
    #[inline]
    pub const fn new(rows: u32, cols: u32) -> Self {
        Self { rows, cols }
    }

    /// Square grid `n x n`.
    #[inline]
    pub const fn square(n: u32) -> Self {
        Self { rows: n, cols: n }
    }

    /// Total number of cells in the full rectangle.
    #[inline]
    pub const fn area(self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Whether `p` lies inside the rectangle.
    #[inline]
    pub const fn contains(self, p: GridPos) -> bool {
        p.row < self.rows && p.col < self.cols
    }

    /// Row-major linear index of `p`; caller must ensure `self.contains(p)`.
    #[inline]
    pub const fn linear(self, p: GridPos) -> usize {
        p.row as usize * self.cols as usize + p.col as usize
    }

    /// Inverse of [`Self::linear`].
    #[inline]
    pub const fn from_linear(self, idx: usize) -> GridPos {
        GridPos {
            row: (idx / self.cols as usize) as u32,
            col: (idx % self.cols as usize) as u32,
        }
    }

    /// Iterate all positions in row-major order.
    pub fn iter(self) -> impl Iterator<Item = GridPos> {
        (0..self.rows).flat_map(move |r| (0..self.cols).map(move |c| GridPos::new(r, c)))
    }

    /// Number of tiles of size `tile` needed to cover this grid in each
    /// dimension (ceiling division). Panics if `tile` has a zero dimension.
    pub fn tiled_by(self, tile: GridDims) -> GridDims {
        assert!(tile.rows > 0 && tile.cols > 0, "tile dims must be nonzero");
        GridDims {
            rows: self.rows.div_ceil(tile.rows),
            cols: self.cols.div_ceil(tile.cols),
        }
    }
}

impl fmt::Debug for GridDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl fmt::Display for GridDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl From<(u32, u32)> for GridDims {
    fn from((rows, cols): (u32, u32)) -> Self {
        Self { rows, cols }
    }
}

/// A half-open rectangular region of cells: rows `row_start..row_end`,
/// columns `col_start..col_end`. This is the cell extent a tile covers after
/// task partition.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRegion {
    /// First row (inclusive).
    pub row_start: u32,
    /// Past-the-end row (exclusive).
    pub row_end: u32,
    /// First column (inclusive).
    pub col_start: u32,
    /// Past-the-end column (exclusive).
    pub col_end: u32,
}

impl TileRegion {
    /// Create a region from half-open row and column ranges.
    pub const fn new(row_start: u32, row_end: u32, col_start: u32, col_end: u32) -> Self {
        Self {
            row_start,
            row_end,
            col_start,
            col_end,
        }
    }

    /// The region covered by tile `tile_pos` when `grid` is partitioned into
    /// `tile`-sized blocks (the last row/column of tiles may be ragged).
    pub fn of_tile(grid: GridDims, tile: GridDims, tile_pos: GridPos) -> Self {
        let row_start = tile_pos.row * tile.rows;
        let col_start = tile_pos.col * tile.cols;
        Self {
            row_start,
            row_end: (row_start + tile.rows).min(grid.rows),
            col_start,
            col_end: (col_start + tile.cols).min(grid.cols),
        }
    }

    /// Height of the region in cells.
    #[inline]
    pub const fn rows(&self) -> u32 {
        self.row_end - self.row_start
    }

    /// Width of the region in cells.
    #[inline]
    pub const fn cols(&self) -> u32 {
        self.col_end - self.col_start
    }

    /// Number of cells in the region.
    #[inline]
    pub const fn area(&self) -> u64 {
        self.rows() as u64 * self.cols() as u64
    }

    /// Whether `p` lies inside the region.
    #[inline]
    pub const fn contains(&self, p: GridPos) -> bool {
        p.row >= self.row_start
            && p.row < self.row_end
            && p.col >= self.col_start
            && p.col < self.col_end
    }

    /// Whether the region contains no cells.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.row_start >= self.row_end || self.col_start >= self.col_end
    }

    /// Iterate the cells of the region in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = GridPos> + '_ {
        (self.row_start..self.row_end)
            .flat_map(move |r| (self.col_start..self.col_end).map(move |c| GridPos::new(r, c)))
    }

    /// Intersection with another region (may be empty).
    pub fn intersect(&self, other: &TileRegion) -> TileRegion {
        TileRegion {
            row_start: self.row_start.max(other.row_start),
            row_end: self.row_end.min(other.row_end),
            col_start: self.col_start.max(other.col_start),
            col_end: self.col_end.min(other.col_end),
        }
    }
}

impl fmt::Debug for TileRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{})x[{}..{})",
            self.row_start, self.row_end, self.col_start, self.col_end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_roundtrip() {
        let d = GridDims::new(7, 5);
        for p in d.iter() {
            assert_eq!(d.from_linear(d.linear(p)), p);
        }
        assert_eq!(d.area(), 35);
    }

    #[test]
    fn diagonal_is_wavefront_index() {
        assert_eq!(GridPos::new(0, 0).diagonal(), 0);
        assert_eq!(GridPos::new(2, 3).diagonal(), 5);
    }

    #[test]
    fn tiled_by_rounds_up() {
        let g = GridDims::new(10, 10);
        assert_eq!(g.tiled_by(GridDims::new(3, 3)), GridDims::new(4, 4));
        assert_eq!(g.tiled_by(GridDims::new(5, 2)), GridDims::new(2, 5));
        assert_eq!(g.tiled_by(GridDims::new(10, 10)), GridDims::new(1, 1));
        assert_eq!(g.tiled_by(GridDims::new(20, 20)), GridDims::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn tiled_by_zero_panics() {
        GridDims::new(4, 4).tiled_by(GridDims::new(0, 1));
    }

    #[test]
    fn ragged_tile_regions_cover_grid_exactly() {
        let grid = GridDims::new(10, 7);
        let tile = GridDims::new(4, 3);
        let tiles = grid.tiled_by(tile);
        let mut seen = vec![0u8; grid.area() as usize];
        for tp in tiles.iter() {
            let region = TileRegion::of_tile(grid, tile, tp);
            assert!(!region.is_empty());
            for cell in region.iter() {
                seen[grid.linear(cell)] += 1;
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "each cell covered exactly once"
        );
    }

    #[test]
    fn region_intersection() {
        let a = TileRegion::new(0, 5, 0, 5);
        let b = TileRegion::new(3, 8, 2, 4);
        let i = a.intersect(&b);
        assert_eq!(i, TileRegion::new(3, 5, 2, 4));
        let disjoint = TileRegion::new(6, 9, 0, 5);
        assert!(a.intersect(&disjoint).is_empty());
    }

    #[test]
    fn region_contains_and_iter_agree() {
        let r = TileRegion::new(2, 4, 1, 4);
        let cells: Vec<_> = r.iter().collect();
        assert_eq!(cells.len(), r.area() as usize);
        for c in &cells {
            assert!(r.contains(*c));
        }
        assert!(!r.contains(GridPos::new(4, 1)));
        assert!(!r.contains(GridPos::new(2, 0)));
    }
}
