//! The DAG Pattern Model: reusable dependency shapes for DP recurrences.
//!
//! A pattern describes, for every cell of a grid, which other cells must be
//! finished first (*topological level*) and which cells' values it reads
//! (*data communication level*). Section IV of the paper defines these two
//! levels; for many recurrences the topological predecessors are a small
//! subset of the data dependencies (e.g. a 2D/1D recurrence reads a whole
//! row prefix but is unblocked as soon as its left and upper neighbours are
//! done, because those transitively dominate the rest).
//!
//! Patterns are *scale free*: the same shape describes the cell-level DAG and
//! the tile-level "abstract DAG" obtained by task partition (paper Fig. 6).
//! [`DagPattern::coarsen`] produces the abstract pattern.

use crate::geom::{GridDims, GridPos, TileRegion};
use std::fmt;
use std::sync::Arc;

/// Classification of a pattern following Galil & Park's `tD/eD` taxonomy
/// (paper §IV-C): a problem is `tD/eD` when its matrix has `O(n^t)` cells and
/// each cell depends on `O(n^e)` others.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PatternKind {
    /// 2D/0D rectangular wavefront: each cell depends on its west, north and
    /// north-west neighbours (edit distance, LCS, affine-gap Smith-Waterman).
    Wavefront2D,
    /// 2D/1D rectangular: unblocked by west/north neighbours, but reads the
    /// full row and column prefixes (Smith-Waterman with a general gap
    /// function).
    RowColumn2D1D,
    /// 2D/1D upper-triangular: cell `(i, j)` with `i <= j` depends on
    /// `(i, j-1)` and `(i+1, j)` and reads the row segment `(i, i..j)` plus
    /// the column segment `(i+1..=j, j)` (Nussinov, matrix-chain
    /// multiplication, optimal BST).
    TriangularGap,
    /// 2D/2D rectangular: each cell reads every cell strictly north-west of
    /// it.
    Full2D2D,
    /// 1D chain: cell `i` depends on cell `i-1`.
    Linear1D,
    /// User-defined pattern with explicit dependency closures or edge lists.
    Custom,
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PatternKind::Wavefront2D => "wavefront-2D/0D",
            PatternKind::RowColumn2D1D => "rowcol-2D/1D",
            PatternKind::TriangularGap => "triangular-2D/1D",
            PatternKind::Full2D2D => "full-2D/2D",
            PatternKind::Linear1D => "linear-1D",
            PatternKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A DAG Pattern Model (paper §IV-A): the dependency shape of a DP
/// recurrence over a grid of cells or tiles.
///
/// Implementations must be consistent:
/// * every position returned by [`predecessors`](Self::predecessors) or
///   [`data_dependencies`](Self::data_dependencies) must satisfy
///   [`contains`](Self::contains);
/// * the predecessor relation must be acyclic;
/// * the transitive closure of the predecessor relation must include every
///   data dependency (a cell may only read values that are guaranteed
///   finished when it becomes computable).
pub trait DagPattern: Send + Sync + fmt::Debug {
    /// Grid extent (the paper's `dag_size`, or `rect_size` for an abstract
    /// pattern).
    fn dims(&self) -> GridDims;

    /// Whether `p` is a real vertex of the DAG. Rectangular patterns contain
    /// every in-bounds position; triangular ones only `col >= row`.
    fn contains(&self, p: GridPos) -> bool {
        self.dims().contains(p)
    }

    /// Topological-level predecessors of `p` (pushed into `out`, which the
    /// caller has cleared). These gate when `p` becomes computable.
    fn predecessors(&self, p: GridPos, out: &mut Vec<GridPos>);

    /// Data-communication-level dependencies of `p`: every vertex whose
    /// output `p` reads. Defaults to the topological predecessors, which is
    /// exact for 2D/0D patterns.
    fn data_dependencies(&self, p: GridPos, out: &mut Vec<GridPos>) {
        self.predecessors(p, out);
    }

    /// The tD/eD classification of this pattern.
    fn kind(&self) -> PatternKind;

    /// Build the abstract pattern over `tile`-sized blocks (paper Fig. 6c).
    ///
    /// Built-in patterns are closed under square blocking and return the same
    /// shape at the coarser granularity; the default implementation derives
    /// the abstract DAG by scanning cell dependencies, which is correct for
    /// any pattern but costs `O(cells x degree)`.
    fn coarsen(&self, tile: GridDims) -> Arc<dyn DagPattern> {
        Arc::new(coarsen_by_scan(self, tile))
    }

    /// Number of vertices actually present (`contains` == true). Rectangular
    /// patterns override with `dims().area()`.
    fn vertex_count(&self) -> u64 {
        self.dims().iter().filter(|&p| self.contains(p)).count() as u64
    }
}

/// Generic coarsening: maps every cell-level dependency to the tile level
/// and deduplicates. Produces an explicit [`CustomPattern`].
pub(crate) fn coarsen_by_scan(
    pattern: &(impl DagPattern + ?Sized),
    tile: GridDims,
) -> crate::patterns::CustomPattern {
    let grid = pattern.dims();
    let tiles = grid.tiled_by(tile);
    let tile_of = |p: GridPos| GridPos::new(p.row / tile.rows, p.col / tile.cols);

    let mut present = vec![false; tiles.area() as usize];
    let mut preds: Vec<Vec<GridPos>> = vec![Vec::new(); tiles.area() as usize];
    let mut data: Vec<Vec<GridPos>> = vec![Vec::new(); tiles.area() as usize];

    let mut buf = Vec::new();
    for cell in grid.iter() {
        if !pattern.contains(cell) {
            continue;
        }
        let t = tile_of(cell);
        let ti = tiles.linear(t);
        present[ti] = true;
        buf.clear();
        pattern.predecessors(cell, &mut buf);
        for &dep in &buf {
            let dt = tile_of(dep);
            if dt != t && !preds[ti].contains(&dt) {
                preds[ti].push(dt);
            }
        }
        buf.clear();
        pattern.data_dependencies(cell, &mut buf);
        for &dep in &buf {
            let dt = tile_of(dep);
            if dt != t && !data[ti].contains(&dt) {
                data[ti].push(dt);
            }
        }
    }
    for v in preds.iter_mut().chain(data.iter_mut()) {
        v.sort_unstable();
    }
    crate::patterns::CustomPattern::from_parts(tiles, present, preds, data)
}

/// Tile region helper: cell extent of tile `tp` when `grid` is partitioned
/// into `tile`-sized blocks.
pub fn tile_region(grid: GridDims, tile: GridDims, tp: GridPos) -> TileRegion {
    TileRegion::of_tile(grid, tile, tp)
}
