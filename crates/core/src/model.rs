//! The DAG Data Driven Model (paper §IV): a cell-level pattern plus the two
//! partition sizes of the multilevel environment, with the data-mapping
//! function tying DAG vertices to matrix blocks.
//!
//! The builder mirrors the paper's Table I: `dag_size`,
//! `process_partition_size`, `thread_partition_size`, the pattern (library
//! or user-defined) and the `data_mapping_function`.

use crate::dag::TaskDag;
use crate::geom::{GridDims, GridPos, TileRegion};
use crate::pattern::{DagPattern, PatternKind};
use crate::patterns::{self, AntiWavefront2D, RestrictedPattern, TriangularGap};
use std::sync::Arc;

/// Maps an abstract-DAG vertex to the block of matrix cells it computes
/// (the paper's `data_mapping_function`).
pub type DataMappingFn = Arc<dyn Fn(GridPos) -> TileRegion + Send + Sync>;

/// A fully-initialized DAG Data Driven Model: everything the master and
/// slave schedulers need to partition, order and route data for one DP
/// problem.
#[derive(Clone)]
pub struct DagDataDrivenModel {
    cell_pattern: Arc<dyn DagPattern>,
    process_partition: GridDims,
    thread_partition: GridDims,
    mapping: DataMappingFn,
}

impl std::fmt::Debug for DagDataDrivenModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DagDataDrivenModel")
            .field("dag_size", &self.cell_pattern.dims())
            .field("kind", &self.cell_pattern.kind())
            .field("process_partition_size", &self.process_partition)
            .field("thread_partition_size", &self.thread_partition)
            .finish()
    }
}

impl DagDataDrivenModel {
    /// Start building a model around a cell-level pattern.
    pub fn builder(pattern: Arc<dyn DagPattern>) -> ModelBuilder {
        ModelBuilder {
            pattern,
            process_partition: None,
            thread_partition: None,
            mapping: None,
        }
    }

    /// Convenience: build from a library pattern kind and grid size with
    /// both partition sizes.
    pub fn from_library(
        kind: PatternKind,
        dag_size: GridDims,
        process_partition: GridDims,
        thread_partition: GridDims,
    ) -> Self {
        let pattern = patterns::builtin(kind, dag_size)
            .expect("library pattern kind required; build Custom patterns via builder()");
        Self::builder(pattern)
            .process_partition_size(process_partition)
            .thread_partition_size(thread_partition)
            .build()
    }

    /// The cell-level pattern (`dag_size` is its `dims()`).
    pub fn cell_pattern(&self) -> &Arc<dyn DagPattern> {
        &self.cell_pattern
    }

    /// The cell grid extent (paper's `dag_size`).
    pub fn dag_size(&self) -> GridDims {
        self.cell_pattern.dims()
    }

    /// Sub-task block size at process level.
    pub fn process_partition_size(&self) -> GridDims {
        self.process_partition
    }

    /// Sub-sub-task block size at thread level.
    pub fn thread_partition_size(&self) -> GridDims {
        self.thread_partition
    }

    /// Extent of the abstract (master-level) DAG grid — the paper's
    /// `rect_size`.
    pub fn rect_size(&self) -> GridDims {
        self.dag_size().tiled_by(self.process_partition)
    }

    /// The abstract master pattern over process-level tiles (Fig. 6c).
    pub fn master_pattern(&self) -> Arc<dyn DagPattern> {
        self.cell_pattern.coarsen(self.process_partition)
    }

    /// Materialized master DAG.
    pub fn master_dag(&self) -> TaskDag {
        TaskDag::from_pattern(self.master_pattern().as_ref())
    }

    /// Cell region computed by master tile `tile` (the data mapping).
    pub fn tile_region(&self, tile: GridPos) -> TileRegion {
        (self.mapping)(tile)
    }

    /// The slave-level pattern inside master tile `tile`: the cell pattern
    /// restricted to the tile's region, coarsened by
    /// `thread_partition_size`.
    ///
    /// Built-in patterns use analytic shapes (a tile of a wavefront is a
    /// wavefront; an off-diagonal tile of a triangular problem is an
    /// anti-wavefront); anything else goes through the generic
    /// [`RestrictedPattern`] scan.
    pub fn slave_pattern(&self, tile: GridPos) -> Arc<dyn DagPattern> {
        let region = self.tile_region(tile);
        let rdims = GridDims::new(region.rows(), region.cols());
        match self.cell_pattern.kind() {
            PatternKind::Wavefront2D | PatternKind::RowColumn2D1D | PatternKind::Full2D2D => {
                patterns::builtin(self.cell_pattern.kind(), rdims)
                    .expect("builtin kind")
                    .coarsen(self.thread_partition)
            }
            PatternKind::Linear1D => patterns::builtin(PatternKind::Linear1D, rdims)
                .expect("builtin kind")
                .coarsen(self.thread_partition),
            PatternKind::TriangularGap => {
                let square = self.process_partition.rows == self.process_partition.cols;
                if square && tile.row == tile.col && rdims.rows == rdims.cols {
                    // Diagonal tile: locally triangular.
                    Arc::new(TriangularGap::new(rdims.rows)).coarsen(self.thread_partition)
                } else if region.col_start >= region.row_end.saturating_sub(1) {
                    // Entirely above the diagonal: every cell valid, sweep
                    // from the bottom-left corner.
                    Arc::new(AntiWavefront2D::new(rdims)).coarsen(self.thread_partition)
                } else {
                    Arc::new(RestrictedPattern::new(self.cell_pattern.clone(), region))
                        .coarsen(self.thread_partition)
                }
            }
            PatternKind::Custom => {
                Arc::new(RestrictedPattern::new(self.cell_pattern.clone(), region))
                    .coarsen(self.thread_partition)
            }
        }
    }

    /// Materialized slave DAG for master tile `tile`.
    pub fn slave_dag(&self, tile: GridPos) -> TaskDag {
        TaskDag::from_pattern(self.slave_pattern(tile).as_ref())
    }

    /// Cell region (in *global* matrix coordinates) of sub-sub-task `sub`
    /// within master tile `tile`.
    pub fn sub_region(&self, tile: GridPos, sub: GridPos) -> TileRegion {
        let region = self.tile_region(tile);
        let rdims = GridDims::new(region.rows(), region.cols());
        let local = TileRegion::of_tile(rdims, self.thread_partition, sub);
        TileRegion::new(
            region.row_start + local.row_start,
            region.row_start + local.row_end,
            region.col_start + local.col_start,
            region.col_start + local.col_end,
        )
    }
}

/// Builder mirroring the paper's Table I knobs.
pub struct ModelBuilder {
    pattern: Arc<dyn DagPattern>,
    process_partition: Option<GridDims>,
    thread_partition: Option<GridDims>,
    mapping: Option<DataMappingFn>,
}

impl ModelBuilder {
    /// Size of sub-tasks divided at process level.
    pub fn process_partition_size(mut self, size: impl Into<GridDims>) -> Self {
        self.process_partition = Some(size.into());
        self
    }

    /// Size of sub-sub-tasks divided at thread level.
    pub fn thread_partition_size(mut self, size: impl Into<GridDims>) -> Self {
        self.thread_partition = Some(size.into());
        self
    }

    /// Override the data-mapping function (tile position -> cell region).
    /// The default maps tile `(R, C)` to the block
    /// `[R*pr, (R+1)*pr) x [C*pc, (C+1)*pc)` clipped to the grid, which is
    /// correct for every library pattern.
    pub fn data_mapping_function(
        mut self,
        f: impl Fn(GridPos) -> TileRegion + Send + Sync + 'static,
    ) -> Self {
        self.mapping = Some(Arc::new(f));
        self
    }

    /// Finalize the model; unset partitions default to the whole grid.
    pub fn build(self) -> DagDataDrivenModel {
        let dag_size = self.pattern.dims();
        let process_partition = self.process_partition.unwrap_or(dag_size);
        let thread_partition = self.thread_partition.unwrap_or(process_partition);
        assert!(
            process_partition.rows > 0 && process_partition.cols > 0,
            "process_partition_size must be nonzero"
        );
        assert!(
            thread_partition.rows > 0 && thread_partition.cols > 0,
            "thread_partition_size must be nonzero"
        );
        let mapping = self.mapping.unwrap_or_else(|| {
            Arc::new(move |tile: GridPos| TileRegion::of_tile(dag_size, process_partition, tile))
        });
        DagDataDrivenModel {
            cell_pattern: self.pattern,
            process_partition,
            thread_partition,
            mapping,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskDag;
    use crate::patterns::{TriangularGap, Wavefront2D};

    fn wavefront_model() -> DagDataDrivenModel {
        DagDataDrivenModel::from_library(
            PatternKind::Wavefront2D,
            GridDims::square(100),
            GridDims::square(20),
            GridDims::square(5),
        )
    }

    #[test]
    fn rect_size_is_tile_grid() {
        let m = wavefront_model();
        assert_eq!(m.rect_size(), GridDims::square(5));
        assert_eq!(m.master_dag().len(), 25);
    }

    #[test]
    fn tile_regions_partition_the_matrix() {
        let m = wavefront_model();
        let mut count = vec![0u8; m.dag_size().area() as usize];
        for tile in m.rect_size().iter() {
            for cell in m.tile_region(tile).iter() {
                count[m.dag_size().linear(cell)] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn sub_regions_partition_each_tile() {
        let m = wavefront_model();
        let tile = GridPos::new(2, 3);
        let region = m.tile_region(tile);
        let slave = m.slave_dag(tile);
        let mut covered = 0u64;
        for (_, v) in slave.iter() {
            let sub = m.sub_region(tile, v.pos);
            covered += sub.area();
            // Sub-regions stay inside the tile region.
            assert_eq!(sub.intersect(&region), sub);
        }
        assert_eq!(covered, region.area());
    }

    #[test]
    fn slave_dag_of_wavefront_is_wavefront() {
        let m = wavefront_model();
        let slave = m.slave_dag(GridPos::new(1, 1));
        assert_eq!(slave.dims(), GridDims::square(4));
        assert_eq!(slave.sources().len(), 1);
        slave.validate().unwrap();
    }

    #[test]
    fn triangular_slave_dags_match_generic_restriction() {
        let m = DagDataDrivenModel::builder(Arc::new(TriangularGap::new(24)))
            .process_partition_size(GridDims::square(8))
            .thread_partition_size(GridDims::square(4))
            .build();
        let master = m.master_dag();
        for (_, v) in master.iter() {
            let fast = m.slave_dag(v.pos);
            let generic = TaskDag::from_pattern(
                RestrictedPattern::new(m.cell_pattern().clone(), m.tile_region(v.pos))
                    .coarsen(m.thread_partition_size())
                    .as_ref(),
            );
            assert_eq!(fast.len(), generic.len(), "tile {}", v.pos);
            fast.validate().unwrap();
            // Same per-vertex predecessor sets.
            for (_, fv) in fast.iter() {
                let gid = generic.vertex_at(fv.pos).expect("same vertices");
                let mut fp: Vec<_> = fv.preds.iter().map(|p| fast.vertex(*p).pos).collect();
                let mut gp: Vec<_> = generic
                    .vertex(gid)
                    .preds
                    .iter()
                    .map(|p| generic.vertex(*p).pos)
                    .collect();
                fp.sort_unstable();
                gp.sort_unstable();
                assert_eq!(fp, gp, "tile {} sub {}", v.pos, fv.pos);
            }
        }
    }

    #[test]
    fn default_partitions_cover_whole_grid() {
        let m =
            DagDataDrivenModel::builder(Arc::new(Wavefront2D::new(GridDims::square(7)))).build();
        assert_eq!(m.rect_size(), GridDims::square(1));
        assert_eq!(m.tile_region(GridPos::new(0, 0)).area(), 49);
    }

    #[test]
    fn custom_data_mapping_is_used() {
        let m = DagDataDrivenModel::builder(Arc::new(Wavefront2D::new(GridDims::square(8))))
            .process_partition_size(GridDims::square(4))
            .thread_partition_size(GridDims::square(2))
            .data_mapping_function(|tile| {
                TileRegion::new(
                    tile.row * 4,
                    tile.row * 4 + 4,
                    tile.col * 4,
                    tile.col * 4 + 4,
                )
            })
            .build();
        assert_eq!(
            m.tile_region(GridPos::new(1, 1)),
            TileRegion::new(4, 8, 4, 8)
        );
    }

    #[test]
    fn ragged_grid_regions_clip() {
        let m = DagDataDrivenModel::from_library(
            PatternKind::Wavefront2D,
            GridDims::new(10, 10),
            GridDims::new(4, 4),
            GridDims::new(3, 3),
        );
        assert_eq!(m.rect_size(), GridDims::new(3, 3));
        let last = m.tile_region(GridPos::new(2, 2));
        assert_eq!(last, TileRegion::new(8, 10, 8, 10));
        let slave = m.slave_dag(GridPos::new(2, 2));
        assert_eq!(
            slave.len(),
            1,
            "2x2 region with 3x3 thread tiles is one sub-task"
        );
    }
}
