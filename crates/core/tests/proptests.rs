//! Property-based tests for the DAG Data Driven Model invariants.

use easyhps_core::patterns::{
    AntiWavefront2D, Banded2D, CustomPattern, Full2D2D, Linear1D, RestrictedPattern, RowColumn2D1D,
    RowLookback2D, TriangularGap, Wavefront2D,
};
use easyhps_core::{
    DagDataDrivenModel, DagParser, DagPattern, GridDims, GridPos, PatternKind, TaskDag, TileRegion,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy producing an arbitrary built-in pattern with modest dims,
/// plus whether its fast coarsening produces *exactly* the projected
/// edges (Banded2D documents a sound superset at band corners).
fn arb_pattern_ex() -> impl Strategy<Value = (Arc<dyn DagPattern>, bool)> {
    (1u32..14, 1u32..14, 0usize..8, 0u32..6).prop_map(|(rows, cols, kind, band)| {
        let dims = GridDims::new(rows, cols);
        let n = rows.max(cols);
        match kind {
            0 => (
                Arc::new(Wavefront2D::new(dims)) as Arc<dyn DagPattern>,
                true,
            ),
            1 => (
                Arc::new(RowColumn2D1D::new(dims)) as Arc<dyn DagPattern>,
                true,
            ),
            2 => (Arc::new(TriangularGap::new(n)) as Arc<dyn DagPattern>, true),
            3 => (Arc::new(Full2D2D::new(dims)) as Arc<dyn DagPattern>, true),
            4 => (Arc::new(Linear1D::new(cols)) as Arc<dyn DagPattern>, true),
            5 => (
                Arc::new(AntiWavefront2D::new(dims)) as Arc<dyn DagPattern>,
                true,
            ),
            6 => (
                Arc::new(RowLookback2D::new(dims)) as Arc<dyn DagPattern>,
                true,
            ),
            // The band must keep the last row/col reachable from (0,0).
            _ => (
                Arc::new(Banded2D::new(
                    GridDims::square(n),
                    band + rows.abs_diff(cols),
                )) as Arc<dyn DagPattern>,
                false,
            ),
        }
    })
}

/// Arbitrary pattern, shape only.
fn arb_pattern() -> impl Strategy<Value = Arc<dyn DagPattern>> {
    arb_pattern_ex().prop_map(|(p, _)| p)
}

proptest! {
    /// Every built-in pattern materializes to a valid DAG: acyclic, with
    /// data dependencies dominated by topological predecessors.
    #[test]
    fn builtin_patterns_validate(pattern in arb_pattern()) {
        let dag = TaskDag::from_pattern(pattern.as_ref());
        prop_assert!(dag.validate().is_ok());
        prop_assert_eq!(dag.len() as u64, pattern.vertex_count());
    }

    /// The parser drains every vertex exactly once in a topological order.
    #[test]
    fn parser_drains_in_topo_order(pattern in arb_pattern()) {
        let dag = TaskDag::from_pattern(pattern.as_ref());
        let mut seen = vec![false; dag.len()];
        DagParser::drain_sequential(&dag, |v| {
            assert!(!seen[v.index()]);
            for p in &dag.vertex(v).preds {
                assert!(seen[p.index()]);
            }
            seen[v.index()] = true;
        });
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Coarsening preserves acyclicity and covers every cell exactly once.
    #[test]
    fn coarsening_is_sound(
        pattern in arb_pattern(),
        tr in 1u32..5,
        tc in 1u32..5,
    ) {
        let tile = GridDims::new(tr, tc);
        let coarse = pattern.coarsen(tile);
        let cdag = TaskDag::from_pattern(coarse.as_ref());
        prop_assert!(cdag.validate().is_ok());

        // Every present cell belongs to exactly one present tile, and every
        // present tile contains at least one present cell.
        let grid = pattern.dims();
        for cell in grid.iter() {
            if !pattern.contains(cell) { continue; }
            let tp = GridPos::new(cell.row / tr, cell.col / tc);
            prop_assert!(coarse.contains(tp), "cell {} in absent tile {}", cell, tp);
        }
        for (_, v) in cdag.iter() {
            let region = TileRegion::of_tile(grid, tile, v.pos);
            prop_assert!(
                region.iter().any(|c| pattern.contains(c)),
                "tile {} contains no present cell", v.pos
            );
        }
    }

    /// Coarse edges are exactly the projections of fine edges: if tile A
    /// precedes tile B, some cell of A is a predecessor of some cell of B.
    /// (Banded2D is excluded: its fast coarsening documents a sound
    /// superset of the projected edges at band corners.)
    #[test]
    fn coarse_edges_project_fine_edges(
        (pattern, exact) in arb_pattern_ex(),
        t in 1u32..4,
    ) {
        prop_assume!(exact);
        let tile = GridDims::square(t);
        let coarse = pattern.coarsen(tile);
        let grid = pattern.dims();
        let cdag = TaskDag::from_pattern(coarse.as_ref());
        let mut buf = Vec::new();
        for (_, v) in cdag.iter() {
            for p in &v.preds {
                let pred_pos = cdag.vertex(*p).pos;
                let region = TileRegion::of_tile(grid, tile, v.pos);
                let found = region.iter().filter(|c| pattern.contains(*c)).any(|c| {
                    buf.clear();
                    pattern.predecessors(c, &mut buf);
                    buf.iter().any(|d| d.row / t == pred_pos.row && d.col / t == pred_pos.col)
                });
                prop_assert!(found, "coarse edge {} -> {} has no fine witness", pred_pos, v.pos);
            }
        }
    }

    /// Multilevel partition: master tiles' regions partition the grid, and
    /// each tile's sub-regions partition the tile.
    #[test]
    fn multilevel_partition_is_exact(
        n in 4u32..40,
        pp in 2u32..10,
        tp in 1u32..5,
        triangular in proptest::bool::ANY,
    ) {
        let pattern: Arc<dyn DagPattern> = if triangular {
            Arc::new(TriangularGap::new(n))
        } else {
            Arc::new(Wavefront2D::new(GridDims::square(n)))
        };
        let model = DagDataDrivenModel::builder(pattern)
            .process_partition_size(GridDims::square(pp))
            .thread_partition_size(GridDims::square(tp))
            .build();

        let mut cover = vec![0u8; (n as usize) * (n as usize)];
        let master = model.master_dag();
        for (_, v) in master.iter() {
            let slave = model.slave_dag(v.pos);
            slave.validate().unwrap();
            for (_, sv) in slave.iter() {
                for cell in model.sub_region(v.pos, sv.pos).iter() {
                    cover[model.dag_size().linear(cell)] += 1;
                }
            }
        }
        // Present cells covered exactly once...
        let expected: u64 = if triangular { (n as u64) * (n as u64 + 1) / 2 } else { (n as u64) * (n as u64) };
        let mut covered = 0u64;
        for (idx, &c) in cover.iter().enumerate() {
            let pos = model.dag_size().from_linear(idx);
            if model.cell_pattern().contains(pos) {
                // Cells of present tiles are covered exactly once (absent
                // cells inside diagonal tiles are covered zero or one time
                // depending on sub-tile shape, so only check present ones).
                prop_assert!(c >= 1, "present cell {} uncovered", pos);
                covered += 1;
            }
        }
        prop_assert_eq!(covered, expected);
    }

    /// Random custom DAGs: edges sampled forward over a shuffled order are
    /// always acyclic and drain fully.
    #[test]
    fn random_custom_dags_drain(
        rows in 1u32..6,
        cols in 1u32..6,
        edge_seed in proptest::collection::vec((0u32..36, 0u32..36), 0..40),
    ) {
        let dims = GridDims::new(rows, cols);
        let n = dims.area() as u32;
        let mut b = CustomPattern::builder(dims);
        for (a, c) in edge_seed {
            let (a, c) = (a % n, c % n);
            // Orient edges by linear index to guarantee acyclicity.
            if a == c { continue; }
            let (from, to) = if a < c { (a, c) } else { (c, a) };
            b = b
                .dependency(dims.from_linear(to as usize), dims.from_linear(from as usize))
                .unwrap();
        }
        let p = b.finish().unwrap();
        let dag = TaskDag::from_pattern(&p);
        let mut count = 0;
        DagParser::drain_sequential(&dag, |_| count += 1);
        prop_assert_eq!(count, dag.len());
    }

    /// Restricting a pattern to a region keeps it a valid DAG and keeps all
    /// local coordinates in range.
    #[test]
    fn restriction_is_sound(
        pattern in arb_pattern(),
        r0 in 0u32..8,
        c0 in 0u32..8,
        h in 1u32..8,
        w in 1u32..8,
    ) {
        let dims = pattern.dims();
        let region = TileRegion::new(
            r0.min(dims.rows.saturating_sub(1)),
            (r0 + h).min(dims.rows).max(r0.min(dims.rows.saturating_sub(1)) + 1).min(dims.rows),
            c0.min(dims.cols.saturating_sub(1)),
            (c0 + w).min(dims.cols).max(c0.min(dims.cols.saturating_sub(1)) + 1).min(dims.cols),
        );
        prop_assume!(!region.is_empty());
        let restricted = RestrictedPattern::new(pattern, region);
        let dag = TaskDag::from_pattern(&restricted);
        prop_assert!(dag.validate().is_ok());
        for (_, v) in dag.iter() {
            prop_assert!(v.pos.row < region.rows() && v.pos.col < region.cols());
        }
    }

    /// fail() then re-complete never loses or duplicates tasks.
    #[test]
    fn fail_requeue_preserves_conservation(
        n in 2u32..10,
        fail_mask in proptest::collection::vec(proptest::bool::ANY, 100),
    ) {
        let dag = TaskDag::from_pattern(&TriangularGap::new(n));
        let mut parser = DagParser::new(&dag);
        let mut completions = vec![0u32; dag.len()];
        let mut step = 0usize;
        while let Some(v) = parser.pop_computable() {
            if fail_mask[step % fail_mask.len()] && completions[v.index()] == 0 && step.is_multiple_of(3) {
                parser.fail(&dag, v).unwrap();
            } else {
                parser.complete(&dag, v, None).unwrap();
                completions[v.index()] += 1;
            }
            step += 1;
        }
        prop_assert!(parser.is_done());
        prop_assert!(completions.iter().all(|&c| c == 1));
    }
}

#[test]
fn library_lookup_covers_all_builtin_kinds() {
    use easyhps_core::patterns::builtin;
    for kind in [
        PatternKind::Wavefront2D,
        PatternKind::RowColumn2D1D,
        PatternKind::TriangularGap,
        PatternKind::Full2D2D,
        PatternKind::Linear1D,
    ] {
        let p = builtin(kind, GridDims::square(6)).expect("library kind");
        assert_eq!(p.kind(), kind);
        TaskDag::from_pattern(p.as_ref()).validate().unwrap();
    }
    assert!(builtin(PatternKind::Custom, GridDims::square(4)).is_none());
}
