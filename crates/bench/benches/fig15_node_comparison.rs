//! Fig. 15 — the node-grouping trade-off: the same total core budget on
//! fewer vs. more nodes.
//!
//! The paper's headline observation (20 cores: 4 nodes beat 5; 40 cores:
//! 5 nodes beat 4) is asserted here at bench scale before measuring.

use criterion::{criterion_group, criterion_main, Criterion};
use easyhps_bench::{bench_nussinov, bench_swgg, cost, FIG15_CORE_COUNTS};
use easyhps_sim::{node_comparison_series, render_table, simulate, Experiment};
use std::hint::black_box;

fn fig15(c: &mut Criterion) {
    for (name, workload) in [("swgg", bench_swgg()), ("nussinov", bench_nussinov())] {
        let series = node_comparison_series(&workload, cost(), &FIG15_CORE_COUNTS);
        println!(
            "{}",
            render_table(
                &format!("Fig 15 (bench scale, {name}): elapsed (s) at equal core counts"),
                "cores",
                &series
            )
        );
        // The crossover: at 20 total cores fewer nodes win; at 40, more.
        let at = |nodes: f64, cores: f64| {
            series
                .iter()
                .find(|s| s.label.starts_with(&format!("{nodes}")))
                .and_then(|s| s.y_at(cores))
        };
        // At bench scale the gap can shrink to a tie; the strict check runs
        // at paper scale in the `figures` binary. Allow 2% slack here.
        if let (Some(a4), Some(a5)) = (at(4.0, 20.0), at(5.0, 20.0)) {
            assert!(
                a4 < a5 * 1.02,
                "{name}: at 20 cores, 4 nodes must beat 5 ({a4} vs {a5})"
            );
        }
        if let (Some(b4), Some(b5)) = (at(4.0, 40.0), at(5.0, 40.0)) {
            assert!(
                b5 < b4 * 1.02,
                "{name}: at 40 cores, 5 nodes must beat 4 ({b5} vs {b4})"
            );
        }
    }

    let workload = bench_swgg();
    let mut g = c.benchmark_group("fig15_node_comparison");
    g.sample_size(10);
    for (nodes, cores) in [(4u32, 20u32), (5, 20), (4, 40), (5, 40)] {
        let e = Experiment::new(nodes, cores);
        let cfg = e.config(cost());
        g.bench_function(e.label(), |b| {
            b.iter(|| black_box(simulate(&workload, &cfg).makespan_ns))
        });
    }
    g.finish();
}

criterion_group!(benches, fig15);
criterion_main!(benches);
