//! Fig. 16 — elapsed time and speedup with the best node grouping per
//! total core count.

use criterion::{criterion_group, criterion_main, Criterion};
use easyhps_bench::{bench_nussinov, bench_swgg, cost};
use easyhps_sim::{render_table, sequential_ns, simulate, speedup_series, Experiment};
use std::hint::black_box;

fn fig16(c: &mut Criterion) {
    for (name, workload) in [("swgg", bench_swgg()), ("nussinov", bench_nussinov())] {
        let (elapsed, speedup) = speedup_series(&workload, cost(), 53);
        println!(
            "# {name} sequential baseline: {:.3}s",
            sequential_ns(&workload, &cost()) as f64 / 1e9
        );
        println!(
            "{}",
            render_table(
                &format!("Fig 16 (bench scale, {name}): best-grouping elapsed and speedup"),
                "cores",
                &[elapsed, speedup.clone()]
            )
        );
        // Speedup must grow substantially toward 50 cores.
        let s50 = speedup.y_at(50.0).expect("50-core point");
        let s10 = speedup.y_at(10.0).expect("10-core point");
        assert!(
            s50 > s10 * 2.0,
            "{name}: speedup should keep growing ({s10} -> {s50})"
        );
    }

    let workload = bench_swgg();
    let mut g = c.benchmark_group("fig16_speedup");
    g.sample_size(10);
    for cores in [13u32, 33, 53] {
        let e = Experiment::new(5, cores);
        let cfg = e.config(cost());
        g.bench_function(format!("best_grouping_{cores}_cores"), |b| {
            b.iter(|| black_box(simulate(&workload, &cfg).makespan_ns))
        });
    }
    g.finish();
}

criterion_group!(benches, fig16);
criterion_main!(benches);
