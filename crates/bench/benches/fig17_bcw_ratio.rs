//! Fig. 17 — BCW / EasyHPS runtime ratio: the dynamic worker pool against
//! the static block-cyclic wavefront baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use easyhps_bench::{bench_nussinov, bench_swgg, cost};
use easyhps_sim::{bcw_baseline, bcw_ratio_series, render_table, simulate, Experiment};
use std::hint::black_box;

fn fig17(c: &mut Criterion) {
    for (name, workload) in [("swgg", bench_swgg()), ("nussinov", bench_nussinov())] {
        let series = bcw_ratio_series(&workload, cost());
        println!(
            "{}",
            render_table(
                &format!("Fig 17 (bench scale, {name}): BCW/EasyHPS runtime ratio"),
                "cores",
                &series
            )
        );
        // The paper's conclusion: almost all points above the 1.00 line.
        let all: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        let above = all.iter().filter(|&&r| r >= 1.0).count();
        assert!(
            above * 10 >= all.len() * 9,
            "{name}: expected >=90% of ratios above 1.0, got {above}/{}",
            all.len()
        );
    }

    let workload = bench_nussinov();
    let e = Experiment::from_ct(4, 6);
    let dyn_cfg = e.config(cost());
    let mut bcw_cfg = e.config(cost());
    let (pm, tm) = bcw_baseline();
    bcw_cfg.process_mode = pm;
    bcw_cfg.thread_mode = tm;

    let mut g = c.benchmark_group("fig17_bcw_ratio");
    g.sample_size(10);
    g.bench_function("dynamic_4_nodes_ct6", |b| {
        b.iter(|| black_box(simulate(&workload, &dyn_cfg).makespan_ns))
    });
    g.bench_function("bcw_4_nodes_ct6", |b| {
        b.iter(|| black_box(simulate(&workload, &bcw_cfg).makespan_ns))
    });
    g.finish();
}

criterion_group!(benches, fig17);
criterion_main!(benches);
