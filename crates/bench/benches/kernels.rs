//! Kernel microbenchmarks: DP tile kernels, DAG materialization and
//! parsing throughput, wire codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use easyhps_core::patterns::{RowColumn2D1D, TriangularGap, Wavefront2D};
use easyhps_core::{DagParser, GridDims, TaskDag, TileRegion};
use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{
    DpMatrix, DpProblem, EditDistance, Lcs, NeedlemanWunsch, Nussinov, SmithWatermanGeneralGap,
};
use std::hint::black_box;

/// The true pre-PR1 per-cell edit-distance baseline: one `get`/`set` pair
/// per dependency and cell, no slice buffers. PR 1's "before" measured
/// the slice kernel against itself (slice-vs-slice noise, 0.99x); this is
/// what the original tile kernel actually did.
fn edit_percell(a: &[u8], b: &[u8], m: &mut DpMatrix<i32>, region: TileRegion) {
    for i in region.row_start..region.row_end {
        for j in region.col_start..region.col_end {
            let v = if i == 0 {
                j as i32
            } else if j == 0 {
                i as i32
            } else {
                let sub = (a[i as usize - 1] != b[j as usize - 1]) as i32;
                (m.get(i - 1, j) + 1)
                    .min(m.get(i, j - 1) + 1)
                    .min(m.get(i - 1, j - 1) + sub)
            };
            m.set(i, j, v);
        }
    }
}

fn tile_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("tile_kernels");
    let a = random_sequence(Alphabet::Dna, 512, 1);
    let b = random_sequence(Alphabet::Dna, 512, 2);
    let region = TileRegion::new(1, 65, 1, 65);

    let edit = EditDistance::new(a.clone(), b.clone());
    let mut m = DpMatrix::<i32>::new(edit.dims());
    g.throughput(Throughput::Elements(region.area()));
    // Three registers of the same tile: per-cell (pre-PR1), scalar slice
    // sweep (PR 1), bit-parallel Myers (current dispatch).
    g.bench_function("edit_distance_64x64_tile_percell", |bch| {
        bch.iter(|| {
            edit_percell(&a, &b, &mut m, region);
            black_box(m.get(64, 64))
        })
    });
    g.bench_function("edit_distance_64x64_tile_scalar_slice", |bch| {
        bch.iter(|| {
            edit.compute_region_scalar(&mut m, region);
            black_box(m.get(64, 64))
        })
    });
    g.bench_function("edit_distance_64x64_tile", |bch| {
        bch.iter(|| {
            edit.compute_region(&mut m, region);
            black_box(m.get(64, 64))
        })
    });

    let nw = NeedlemanWunsch::dna(a.clone(), b.clone());
    let mut m = DpMatrix::<i32>::new(nw.dims());
    g.throughput(Throughput::Elements(region.area()));
    g.bench_function("nw_64x64_tile_scalar_slice", |bch| {
        bch.iter(|| {
            nw.compute_region_scalar(&mut m, region);
            black_box(m.get(64, 64))
        })
    });
    g.bench_function("nw_64x64_tile", |bch| {
        bch.iter(|| {
            nw.compute_region(&mut m, region);
            black_box(m.get(64, 64))
        })
    });

    let lcs = Lcs::new(a.clone(), b.clone());
    let mut m = DpMatrix::<i32>::new(lcs.dims());
    g.throughput(Throughput::Elements(region.area()));
    g.bench_function("lcs_64x64_tile_scalar_slice", |bch| {
        bch.iter(|| {
            lcs.compute_region_scalar(&mut m, region);
            black_box(m.get(64, 64))
        })
    });
    g.bench_function("lcs_64x64_tile", |bch| {
        bch.iter(|| {
            lcs.compute_region(&mut m, region);
            black_box(m.get(64, 64))
        })
    });

    let swgg = SmithWatermanGeneralGap::dna(a, b);
    let mut m = DpMatrix::<i32>::new(swgg.dims());
    g.throughput(Throughput::Elements(swgg.region_work(region)));
    g.bench_function("swgg_64x64_tile", |bch| {
        bch.iter(|| {
            swgg.compute_region(&mut m, region);
            black_box(m.get(64, 64))
        })
    });

    let rna = random_sequence(Alphabet::Rna, 256, 3);
    let nus = Nussinov::new(rna);
    let full = TileRegion::new(0, 256, 0, 256);
    let mut m = DpMatrix::<i32>::new(nus.dims());
    g.throughput(Throughput::Elements(256 * 256 / 2));
    g.bench_function("nussinov_256_full", |bch| {
        bch.iter(|| {
            nus.compute_region(&mut m, full);
            black_box(m.get(0, 255))
        })
    });

    // Where the cache-oblivious recursion pays: a triangle whose scan
    // buffers stop fitting in L2.
    let rna = random_sequence(Alphabet::Rna, 1024, 4);
    let nus = Nussinov::new(rna);
    let full = TileRegion::new(0, 1024, 0, 1024);
    let mut m = DpMatrix::<i32>::new(nus.dims());
    g.sample_size(10);
    g.throughput(Throughput::Elements(1024 * 1024 / 2));
    g.bench_function("nussinov_1024_full_iterative", |bch| {
        bch.iter(|| {
            nus.compute_region_iterative(&mut m, full);
            black_box(m.get(0, 1023))
        })
    });
    g.bench_function("nussinov_1024_full", |bch| {
        bch.iter(|| {
            nus.compute_region(&mut m, full);
            black_box(m.get(0, 1023))
        })
    });
    g.finish();
}

fn dag_operations(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_operations");

    g.bench_function("materialize_wavefront_100x100", |b| {
        b.iter(|| TaskDag::from_pattern(black_box(&Wavefront2D::new(GridDims::square(100)))))
    });
    g.bench_function("materialize_triangular_100", |b| {
        b.iter(|| TaskDag::from_pattern(black_box(&TriangularGap::new(100))))
    });
    g.bench_function("materialize_rowcol_50x50", |b| {
        b.iter(|| TaskDag::from_pattern(black_box(&RowColumn2D1D::new(GridDims::square(50)))))
    });

    let dag = TaskDag::from_pattern(&Wavefront2D::new(GridDims::square(100)));
    g.throughput(Throughput::Elements(dag.len() as u64));
    g.bench_function("parse_drain_wavefront_100x100", |b| {
        b.iter(|| {
            let mut n = 0u64;
            DagParser::drain_sequential(&dag, |_| n += 1);
            black_box(n)
        })
    });

    let tri = TaskDag::from_pattern(&TriangularGap::new(100));
    g.throughput(Throughput::Elements(tri.len() as u64));
    g.bench_function("parse_drain_triangular_100", |b| {
        b.iter(|| {
            let mut n = 0u64;
            DagParser::drain_sequential(&tri, |_| n += 1);
            black_box(n)
        })
    });
    g.finish();
}

fn wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let m = {
        let mut m = DpMatrix::<i32>::new(GridDims::square(200));
        for p in m.dims().iter() {
            m.set(p.row, p.col, (p.row ^ p.col) as i32);
        }
        m
    };
    let region = TileRegion::new(0, 200, 0, 200);
    g.throughput(Throughput::Bytes(region.area() * 4));
    g.bench_function("encode_200x200_strip", |b| {
        b.iter(|| black_box(m.encode_region(region).len()))
    });
    let bytes = m.encode_region(region);
    let mut dst = DpMatrix::<i32>::new(GridDims::square(200));
    g.bench_function("decode_200x200_strip", |b| {
        b.iter(|| {
            dst.decode_region(region, &bytes);
            black_box(dst.get(100, 100))
        })
    });
    g.finish();
}

criterion_group!(benches, tile_kernels, dag_operations, wire_codec);
criterion_main!(benches);
