//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! partition-size sensitivity, jitter sensitivity of static scheduling,
//! and the cost of the data-communication level (strip volume).

use criterion::{criterion_group, criterion_main, Criterion};
use easyhps_bench::cost;
use easyhps_core::ScheduleMode;
use easyhps_sim::{render_table, simulate, Series, SimConfig, SimWorkload};
use std::hint::black_box;

/// Partition-size sweep: too-coarse tiles starve nodes, too-fine tiles
/// drown the master in scheduling overhead — the classic U-curve.
fn partition_sensitivity(c: &mut Criterion) {
    let mut series = Series::new("elapsed (s)");
    for pps in [50u32, 100, 200, 400, 1000] {
        let w = SimWorkload::swgg(2_000, pps, 10);
        let r = simulate(&w, &SimConfig::uniform(4, 8));
        series.push(pps as f64, r.seconds());
    }
    println!(
        "{}",
        render_table(
            "Ablation: SWGG(2000) elapsed vs process_partition_size (4 nodes x 8 threads)",
            "pps",
            &[series.clone()]
        )
    );
    // The middle of the sweep should beat both extremes.
    let best = series.points.iter().map(|p| p.1).fold(f64::MAX, f64::min);
    let coarse = series.y_at(1000.0).unwrap();
    assert!(best < coarse, "a finer partition must beat one-giant-tile");

    let mut g = c.benchmark_group("ablation_partition_size");
    g.sample_size(10);
    for pps in [100u32, 400] {
        let w = SimWorkload::swgg(2_000, pps, 10);
        g.bench_function(format!("pps_{pps}"), |b| {
            b.iter(|| black_box(simulate(&w, &SimConfig::uniform(4, 8)).makespan_ns))
        });
    }
    g.finish();
}

/// Jitter sensitivity: as execution noise grows, the tuned static schedule
/// degrades relative to the dynamic pool.
fn jitter_sensitivity(_c: &mut Criterion) {
    let mut dynamic = Series::new("dynamic (s)");
    let mut bcw = Series::new("static bcw1 (s)");
    for jitter in [0u32, 10, 20, 40] {
        let w = SimWorkload::nussinov(2_000, 100, 10);
        let mut cfg = SimConfig::uniform(4, 6);
        cfg.cost = cost();
        cfg.cost.jitter_pct = jitter;
        dynamic.push(jitter as f64, simulate(&w, &cfg).seconds());
        cfg.process_mode = ScheduleMode::BlockCyclic { block: 1 };
        cfg.thread_mode = ScheduleMode::BlockCyclic { block: 1 };
        bcw.push(jitter as f64, simulate(&w, &cfg).seconds());
    }
    println!(
        "{}",
        render_table(
            "Ablation: dynamic vs tuned-static elapsed under execution jitter",
            "jitter%",
            &[dynamic.clone(), bcw.clone()]
        )
    );
    // At zero jitter the tuned static schedule matches the pool; with heavy
    // jitter it must not be better.
    let (d40, b40) = (dynamic.y_at(40.0).unwrap(), bcw.y_at(40.0).unwrap());
    assert!(
        b40 >= d40 * 0.98,
        "static should not beat dynamic under noise"
    );
}

/// Strip-volume ablation: the 2D/1D data-communication level ships far
/// more bytes than 2D/0D at the same matrix size.
fn strip_volume(_c: &mut Criterion) {
    let wave = SimWorkload::wavefront(2_000, 100, 10);
    let swgg = SimWorkload::swgg(2_000, 100, 10);
    let cfg = SimConfig::uniform(3, 4);
    let rw = simulate(&wave, &cfg);
    let rs = simulate(&swgg, &cfg);
    println!(
        "# Ablation: bytes moved, 2D/0D wavefront {} MB vs 2D/1D SWGG {} MB (same 2001^2 matrix)\n",
        rw.bytes_moved / 1_000_000,
        rs.bytes_moved / 1_000_000
    );
    assert!(
        rs.bytes_moved > 5 * rw.bytes_moved,
        "row/column prefixes must dominate boundary strips"
    );
}

/// Fault-tolerance overhead: makespan inflation as a function of when a
/// node crashes and how aggressive the detection timeout is.
fn fault_tolerance_overhead(c: &mut Criterion) {
    let w = SimWorkload::swgg(2_000, 100, 10);
    let healthy = simulate(&w, &SimConfig::uniform(4, 6));

    let mut by_crash_time = Series::new("makespan inflation (x)");
    for frac in [10u64, 30, 50, 70, 90] {
        let mut cfg = SimConfig::uniform(4, 6).fail_node(2, healthy.makespan_ns * frac / 100);
        cfg.task_timeout_ns = healthy.makespan_ns / 20;
        let r = simulate(&w, &cfg);
        by_crash_time.push(
            frac as f64,
            r.makespan_ns as f64 / healthy.makespan_ns as f64,
        );
    }
    println!(
        "{}",
        render_table(
            "Ablation: makespan inflation vs crash time (% of healthy makespan; 1 of 4 nodes lost)",
            "crash%",
            &[by_crash_time.clone()]
        )
    );
    for (_, inflation) in &by_crash_time.points {
        // Greedy LIFO scheduling is not optimal, so a crash that forces a
        // reshuffle of the tail can occasionally *luckily* beat the healthy
        // schedule by a couple of percent; anything beyond that, or a
        // doubling, would be a fault-tolerance bug.
        assert!(*inflation >= 0.95, "implausible speedup from losing a node");
        assert!(
            *inflation < 2.0,
            "losing 1 of 4 nodes must not double the makespan"
        );
    }

    let mut by_timeout = Series::new("makespan (s)");
    for timeout_ms in [5u64, 20, 80, 320] {
        let mut cfg = SimConfig::uniform(4, 6).fail_node(2, healthy.makespan_ns / 3);
        cfg.task_timeout_ns = timeout_ms * 1_000_000;
        by_timeout.push(timeout_ms as f64, simulate(&w, &cfg).seconds());
    }
    println!(
        "{}",
        render_table(
            "Ablation: recovery time vs fault-tolerance timeout",
            "timeout_ms",
            &[by_timeout,]
        )
    );

    let mut g = c.benchmark_group("ablation_fault_tolerance");
    g.sample_size(10);
    let mut cfg = SimConfig::uniform(4, 6).fail_node(2, healthy.makespan_ns / 3);
    cfg.task_timeout_ns = healthy.makespan_ns / 20;
    g.bench_function("with_node_crash", |b| {
        b.iter(|| black_box(simulate(&w, &cfg).makespan_ns))
    });
    g.finish();
}

/// Node-memory ablation on the *real* runtime: dense node matrices (the
/// paper's layout) vs sparse chunked allocation (the paper's future-work
/// fix), measuring peak bytes and wall time.
fn memory_modes(c: &mut Criterion) {
    use easyhps_dp::sequence::{random_sequence, Alphabet};
    use easyhps_dp::Nussinov;
    use easyhps_runtime::{EasyHps, MemoryMode};

    let rna = random_sequence(Alphabet::Rna, 400, 9);
    let run = |mode: MemoryMode| {
        EasyHps::new(Nussinov::new(rna.clone()))
            .process_partition((80, 80))
            .thread_partition((20, 20))
            .slaves(3)
            .threads_per_slave(2)
            .memory_mode(mode)
            .run()
            .unwrap()
    };
    let dense = run(MemoryMode::Dense);
    let sparse = run(MemoryMode::Sparse);
    let peak = |out: &easyhps_runtime::RunOutput<i32>| {
        out.report
            .slaves
            .iter()
            .flatten()
            .map(|s| s.peak_node_bytes)
            .max()
            .unwrap_or(0)
    };
    println!(
        "# Ablation: node-matrix memory, nussinov(400) on 3 slaves: dense {} KB vs sparse {} KB peak per node\n",
        peak(&dense) / 1024,
        peak(&sparse) / 1024
    );
    assert!(peak(&sparse) < peak(&dense));

    let mut g = c.benchmark_group("ablation_memory_mode");
    g.sample_size(10);
    for (name, mode) in [("dense", MemoryMode::Dense), ("sparse", MemoryMode::Sparse)] {
        let rna = rna.clone();
        g.bench_function(name, |b| {
            b.iter(|| {
                let out = EasyHps::new(Nussinov::new(rna.clone()))
                    .process_partition((80, 80))
                    .thread_partition((20, 20))
                    .slaves(3)
                    .threads_per_slave(2)
                    .memory_mode(mode)
                    .run()
                    .unwrap();
                black_box(out.report.master.completed)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    partition_sensitivity,
    jitter_sensitivity,
    strip_volume,
    fault_tolerance_overhead,
    memory_modes
);
criterion_main!(benches);
