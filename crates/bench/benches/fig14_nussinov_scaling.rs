//! Fig. 14 — Nussinov elapsed time vs. cores on 2-5 nodes.
//!
//! Reduced-scale series printed here; full scale via the `figures` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use easyhps_bench::{bench_nussinov, cost};
use easyhps_sim::{render_table, scaling_series, simulate, Experiment};
use std::hint::black_box;

fn fig14(c: &mut Criterion) {
    let workload = bench_nussinov();
    let series = scaling_series(&workload, cost());
    println!(
        "{}",
        render_table(
            "Fig 14 (bench scale): Nussinov elapsed (s) vs cores",
            "cores",
            &series
        )
    );

    let mut g = c.benchmark_group("fig14_nussinov_scaling");
    g.sample_size(10);
    for nodes in [2u32, 5] {
        for ct in [1u32, 11] {
            let e = Experiment::from_ct(nodes, ct);
            let cfg = e.config(cost());
            g.bench_function(e.label(), |b| {
                b.iter(|| black_box(simulate(&workload, &cfg).makespan_ns))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);
