//! End-to-end benchmarks of the real threaded runtime (virtual cluster of
//! OS threads): scheduling overhead and scaling of the actual system, as
//! opposed to the virtual-time simulation used for the paper figures.

use criterion::{criterion_group, criterion_main, Criterion};
use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{EditDistance, Nussinov, SmithWatermanGeneralGap};
use easyhps_runtime::{EasyHps, ScheduleMode};
use std::hint::black_box;

fn end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_end_to_end");
    g.sample_size(10);

    g.bench_function("edit_distance_200_2slaves_2threads", |b| {
        b.iter(|| {
            let a = random_sequence(Alphabet::Dna, 200, 1);
            let s = random_sequence(Alphabet::Dna, 200, 2);
            let out = EasyHps::new(EditDistance::new(a, s))
                .process_partition((50, 50))
                .thread_partition((10, 10))
                .slaves(2)
                .threads_per_slave(2)
                .run()
                .unwrap();
            black_box(out.matrix.get(200, 200))
        })
    });

    g.bench_function("swgg_128_2slaves_2threads", |b| {
        b.iter(|| {
            let a = random_sequence(Alphabet::Dna, 128, 3);
            let s = random_sequence(Alphabet::Dna, 128, 4);
            let out = EasyHps::new(SmithWatermanGeneralGap::dna(a, s))
                .process_partition((32, 32))
                .thread_partition((8, 8))
                .slaves(2)
                .threads_per_slave(2)
                .run()
                .unwrap();
            black_box(out.report.master.completed)
        })
    });

    g.bench_function("nussinov_192_3slaves_2threads", |b| {
        b.iter(|| {
            let rna = random_sequence(Alphabet::Rna, 192, 5);
            let out = EasyHps::new(Nussinov::new(rna))
                .process_partition((48, 48))
                .thread_partition((12, 12))
                .slaves(3)
                .threads_per_slave(2)
                .run()
                .unwrap();
            black_box(out.matrix.get(0, 191))
        })
    });
    g.finish();
}

fn scheduling_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_scheduling_modes");
    g.sample_size(10);
    for (name, pm) in [
        ("dynamic", ScheduleMode::Dynamic),
        ("block_cyclic", ScheduleMode::BlockCyclic { block: 1 }),
        ("column_wavefront", ScheduleMode::ColumnWavefront),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let rna = random_sequence(Alphabet::Rna, 128, 6);
                let out = EasyHps::new(Nussinov::new(rna))
                    .process_partition((32, 32))
                    .thread_partition((8, 8))
                    .slaves(2)
                    .threads_per_slave(2)
                    .process_mode(pm)
                    .thread_mode(pm)
                    .run()
                    .unwrap();
                black_box(out.report.master.completed)
            })
        });
    }
    g.finish();
}

/// Single-level (EasyPDP) vs multilevel (EasyHPS) on one machine: the
/// multilevel architecture pays master/slave messaging for no benefit when
/// there is only shared memory — quantify that overhead.
fn single_vs_multilevel(c: &mut Criterion) {
    use easyhps_runtime::EasyPdp;
    let mut g = c.benchmark_group("runtime_single_vs_multilevel");
    g.sample_size(10);
    g.bench_function("easypdp_single_level", |b| {
        b.iter(|| {
            let rna = random_sequence(Alphabet::Rna, 160, 7);
            let out = EasyPdp::new(Nussinov::new(rna))
                .partition((10, 10))
                .threads(4)
                .run()
                .unwrap();
            black_box(out.subtasks)
        })
    });
    g.bench_function("easyhps_multilevel", |b| {
        b.iter(|| {
            let rna = random_sequence(Alphabet::Rna, 160, 7);
            let out = EasyHps::new(Nussinov::new(rna))
                .process_partition((40, 40))
                .thread_partition((10, 10))
                .slaves(2)
                .threads_per_slave(2)
                .run()
                .unwrap();
            black_box(out.report.master.completed)
        })
    });
    g.finish();
}

criterion_group!(benches, end_to_end, scheduling_modes, single_vs_multilevel);
criterion_main!(benches);
