//! Shared helpers for the EasyHPS benchmark harness.
//!
//! Two scales are used throughout:
//!
//! * **paper scale** — the evaluation parameters of §VI (`seq_len = 10000`,
//!   `process_partition_size = 200`, `thread_partition_size = 10`), used by
//!   the `figures` binary to regenerate each figure's full data series;
//! * **bench scale** — a 5x reduced instance with the same tile geometry
//!   (`seq_len = 2000`, `pps = 100`, `tps = 10`), small enough for
//!   Criterion's repeated sampling while preserving the DAG shapes.

use easyhps_sim::{CostModel, SimWorkload};

/// The paper's SWGG evaluation instance.
pub fn paper_swgg() -> SimWorkload {
    SimWorkload::swgg(10_000, 200, 10)
}

/// The paper's Nussinov evaluation instance.
pub fn paper_nussinov() -> SimWorkload {
    SimWorkload::nussinov(10_000, 200, 10)
}

/// Reduced SWGG instance for Criterion sampling.
pub fn bench_swgg() -> SimWorkload {
    SimWorkload::swgg(2_000, 100, 10)
}

/// Reduced Nussinov instance for Criterion sampling.
pub fn bench_nussinov() -> SimWorkload {
    SimWorkload::nussinov(2_000, 100, 10)
}

/// The calibration used for every figure.
pub fn cost() -> CostModel {
    CostModel::tianhe1a()
}

/// The total-core counts shared by several node deployments, used for the
/// Fig. 15 comparison (the paper highlights 20 and 40).
pub const FIG15_CORE_COUNTS: [u32; 6] = [14, 20, 27, 33, 40, 46];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_share_tile_geometry() {
        // Same 10x10 sub-tiles per tile and 20-21 tile rows per side ratio.
        assert_eq!(
            paper_swgg().model.thread_partition_size(),
            bench_swgg().model.thread_partition_size()
        );
        assert_eq!(paper_nussinov().model.rect_size().rows, 50);
        assert_eq!(bench_nussinov().model.rect_size().rows, 20);
    }
}
