//! `bench_pr6` — hardware-kernel benchmark report (PR 6). Emits a stable
//! flat JSON report (`BENCH_PR6.json`) with per-kernel before/after pairs
//! and end-to-end autotuning deltas:
//!
//! * edit distance 64x64 tile: true per-cell pre-PR1 baseline vs the
//!   bit-parallel Myers kernel (PR 1's "before" measured the slice kernel
//!   against itself — slice-vs-slice noise — so this report re-anchors the
//!   baseline and also records the delta against PR 1's committed median);
//! * NW / LCS 64x64 tiles: scalar slice sweep vs SIMD anti-diagonal;
//! * SWGG 64x64 tile and Nussinov-256 full triangle vs the committed
//!   PR 1 medians (same shape, new scan kernels);
//! * Nussinov-1024: iterative vs cache-oblivious recursive tiling;
//! * end-to-end: hand-set default partitions vs `.autotune(..)`.
//!
//! ```text
//! bench_pr6 [--out PATH] [--date YYYY-MM-DD] [--iters N]
//! bench_pr6 --check BENCH_PR6.json   # CI gate: fail on >10% kernel regression
//! ```
//!
//! In `--check` mode only the live kernels are re-measured (end-to-end runs
//! are too scheduler-noisy for a gate); the measured *minimum* is compared
//! against the committed *median* with a 10 % tolerance, since container
//! jitter only ever adds time.

use easyhps_core::TileRegion;
use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{
    DpMatrix, DpProblem, EditDistance, Lcs, NeedlemanWunsch, Nussinov, SmithWatermanGeneralGap,
};
use easyhps_obs::json;
use easyhps_runtime::EasyHps;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// PR 1's committed medians (BENCH_PR1.json) for kernels whose shape is
/// unchanged: the "before" side of the cross-PR comparisons.
const PR1_EDIT_TILE_NS: f64 = 15497.5;
const PR1_SWGG_TILE_NS: f64 = 181488.6;
const PR1_NUSSINOV_256_NS: f64 = 1_397_281.3;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// `(min, median)` ns per call of `op`, over `samples` timed batches. The
/// batch size is auto-calibrated so one batch lasts roughly 2 ms, which
/// keeps microsecond-scale kernels clear of timer granularity.
fn sample_ns(samples: usize, mut op: impl FnMut()) -> (f64, f64) {
    let t0 = Instant::now();
    op();
    let probe = t0.elapsed().as_nanos().max(1);
    let per_batch = (2_000_000 / probe).clamp(1, 1 << 20) as u64;
    // Warm-up batch, discarded.
    for _ in 0..per_batch {
        op();
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..per_batch {
            op();
        }
        times.push(t0.elapsed().as_nanos() as f64 / per_batch as f64);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    (min, median(&mut times))
}

/// Per-cell edit distance exactly as the pre-PR1 tile kernel computed it:
/// one bounds-checked `get`/`set` per dependency and cell.
fn edit_percell(a: &[u8], b: &[u8], m: &mut DpMatrix<i32>, region: TileRegion) {
    for i in region.row_start..region.row_end {
        for j in region.col_start..region.col_end {
            let v = if i == 0 {
                j as i32
            } else if j == 0 {
                i as i32
            } else {
                let sub = (a[i as usize - 1] != b[j as usize - 1]) as i32;
                (m.get(i - 1, j) + 1)
                    .min(m.get(i, j - 1) + 1)
                    .min(m.get(i - 1, j - 1) + sub)
            };
            m.set(i, j, v);
        }
    }
}

struct Pair {
    name: &'static str,
    /// Where the "before" number comes from, for the report.
    baseline: &'static str,
    before_min_ns: f64,
    before_median_ns: f64,
    after_min_ns: f64,
    after_median_ns: f64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.before_median_ns / self.after_median_ns
    }
}

/// Measure every kernel pair. `samples` trades runtime for stability.
fn measure_kernels(samples: usize) -> Vec<Pair> {
    let a = random_sequence(Alphabet::Dna, 512, 1);
    let b = random_sequence(Alphabet::Dna, 512, 2);
    let region = TileRegion::new(1, 65, 1, 65);
    let mut pairs = Vec::new();

    let edit = EditDistance::new(a.clone(), b.clone());
    let mut m = DpMatrix::<i32>::new(edit.dims());
    let (pc_min, pc_med) = sample_ns(samples, || {
        edit_percell(&a, &b, &mut m, region);
        black_box(m.get(64, 64));
    });
    let (my_min, my_med) = sample_ns(samples, || {
        edit.compute_region(&mut m, region);
        black_box(m.get(64, 64));
    });
    pairs.push(Pair {
        name: "tile_kernels/edit_distance_64x64_tile",
        baseline: "per-cell get/set kernel (true pre-PR1 baseline)",
        before_min_ns: pc_min,
        before_median_ns: pc_med,
        after_min_ns: my_min,
        after_median_ns: my_med,
    });
    let (sl_min, sl_med) = sample_ns(samples, || {
        edit.compute_region_scalar(&mut m, region);
        black_box(m.get(64, 64));
    });
    pairs.push(Pair {
        name: "tile_kernels/edit_distance_64x64_tile_vs_slice",
        baseline: "PR 1 scalar slice sweep, re-measured",
        before_min_ns: sl_min,
        before_median_ns: sl_med,
        after_min_ns: my_min,
        after_median_ns: my_med,
    });

    let nw = NeedlemanWunsch::dna(a.clone(), b.clone());
    let mut m = DpMatrix::<i32>::new(nw.dims());
    let (before_min, before_med) = sample_ns(samples, || {
        nw.compute_region_scalar(&mut m, region);
        black_box(m.get(64, 64));
    });
    let (after_min, after_med) = sample_ns(samples, || {
        nw.compute_region(&mut m, region);
        black_box(m.get(64, 64));
    });
    pairs.push(Pair {
        name: "tile_kernels/nw_64x64_tile",
        baseline: "scalar slice sweep, re-measured",
        before_min_ns: before_min,
        before_median_ns: before_med,
        after_min_ns: after_min,
        after_median_ns: after_med,
    });

    let lcs = Lcs::new(a.clone(), b.clone());
    let mut m = DpMatrix::<i32>::new(lcs.dims());
    let (before_min, before_med) = sample_ns(samples, || {
        lcs.compute_region_scalar(&mut m, region);
        black_box(m.get(64, 64));
    });
    let (after_min, after_med) = sample_ns(samples, || {
        lcs.compute_region(&mut m, region);
        black_box(m.get(64, 64));
    });
    pairs.push(Pair {
        name: "tile_kernels/lcs_64x64_tile",
        baseline: "scalar slice sweep, re-measured",
        before_min_ns: before_min,
        before_median_ns: before_med,
        after_min_ns: after_min,
        after_median_ns: after_med,
    });

    let swgg = SmithWatermanGeneralGap::dna(a, b);
    let mut m = DpMatrix::<i32>::new(swgg.dims());
    let (after_min, after_med) = sample_ns(samples, || {
        swgg.compute_region(&mut m, region);
        black_box(m.get(64, 64));
    });
    pairs.push(Pair {
        name: "tile_kernels/swgg_64x64_tile",
        baseline: "BENCH_PR1.json committed median",
        before_min_ns: PR1_SWGG_TILE_NS,
        before_median_ns: PR1_SWGG_TILE_NS,
        after_min_ns: after_min,
        after_median_ns: after_med,
    });

    let rna = random_sequence(Alphabet::Rna, 256, 3);
    let nus = Nussinov::new(rna);
    let full = TileRegion::new(0, 256, 0, 256);
    let mut m = DpMatrix::<i32>::new(nus.dims());
    let (after_min, after_med) = sample_ns(samples, || {
        nus.compute_region(&mut m, full);
        black_box(m.get(0, 255));
    });
    pairs.push(Pair {
        name: "tile_kernels/nussinov_256_full",
        baseline: "BENCH_PR1.json committed median",
        before_min_ns: PR1_NUSSINOV_256_NS,
        before_median_ns: PR1_NUSSINOV_256_NS,
        after_min_ns: after_min,
        after_median_ns: after_med,
    });

    let rna = random_sequence(Alphabet::Rna, 1024, 4);
    let nus = Nussinov::new(rna);
    let full = TileRegion::new(0, 1024, 0, 1024);
    let mut m = DpMatrix::<i32>::new(nus.dims());
    let big_samples = samples.div_ceil(3).max(5);
    let (before_min, before_med) = sample_ns(big_samples, || {
        nus.compute_region_iterative(&mut m, full);
        black_box(m.get(0, 1023));
    });
    let (after_min, after_med) = sample_ns(big_samples, || {
        nus.compute_region(&mut m, full);
        black_box(m.get(0, 1023));
    });
    pairs.push(Pair {
        name: "tile_kernels/nussinov_1024_full",
        baseline: "iterative row sweep (no recursive tiling)",
        before_min_ns: before_min,
        before_median_ns: before_med,
        after_min_ns: after_min,
        after_median_ns: after_med,
    });

    pairs
}

/// One end-to-end run; `autotune_table = Some(path)` leaves partitions to
/// the tuner, `None` uses the hand-set defaults. Returns elapsed ns.
fn e2e_run<P: DpProblem + Clone + Send + Sync + 'static>(
    problem: &P,
    autotune_table: Option<&std::path::Path>,
) -> f64 {
    let mut hps = EasyHps::new(problem.clone()).slaves(2).threads_per_slave(2);
    if let Some(path) = autotune_table {
        hps = hps.autotune(path);
    }
    let t0 = Instant::now();
    let out = hps.run().unwrap();
    let elapsed = t0.elapsed().as_nanos() as f64;
    black_box(out.report.master.completed);
    elapsed
}

/// Interleaved default-vs-autotuned medians for one problem, warm-ups
/// discarded. The tuning table is warmed before sampling so the measured
/// autotuned runs exercise the load-and-apply path, not the calibration.
fn e2e_pair<P: DpProblem + Clone + Send + Sync + 'static>(
    name: &'static str,
    problem: P,
    iters: usize,
    table: &std::path::Path,
) -> Pair {
    e2e_run(&problem, None);
    e2e_run(&problem, Some(table)); // tunes + persists on first use
    let (mut before, mut after) = (Vec::new(), Vec::new());
    for _ in 0..iters {
        before.push(e2e_run(&problem, None));
        after.push(e2e_run(&problem, Some(table)));
    }
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    Pair {
        name,
        baseline: "hand-set default partitions",
        before_min_ns: min(&before),
        before_median_ns: median(&mut before),
        after_min_ns: min(&after),
        after_median_ns: median(&mut after),
    }
}

fn render_report(date: &str, iters: usize, pairs: &[Pair]) -> String {
    let mut benches = String::new();
    for (i, p) in pairs.iter().enumerate() {
        if i > 0 {
            benches.push_str(",\n");
        }
        benches.push_str(&format!(
            "    \"{}\": {{ \"baseline\": \"{}\", \"before_min_ns\": {:.1}, \"before_median_ns\": {:.1}, \"after_min_ns\": {:.1}, \"after_median_ns\": {:.1}, \"speedup\": {:.2} }}",
            p.name, p.baseline, p.before_min_ns, p.before_median_ns, p.after_min_ns,
            p.after_median_ns, p.speedup()
        ));
    }
    let edit = pairs
        .iter()
        .find(|p| p.name == "tile_kernels/edit_distance_64x64_tile")
        .expect("edit pair present");
    format!(
        r#"{{
  "pr": 6,
  "title": "hardware-fast kernels: bit-parallel Myers, SIMD anti-diagonals, cache-oblivious Nussinov, obs-driven autotuner",
  "date": "{date}",
  "harness": "min/median of {iters} auto-batched samples per kernel (warm-up discarded); end-to-end pairs interleaved default-vs-autotuned",
  "benches": {{
{benches}
  }},
  "cross_pr": {{
    "edit_tile_pr1_median_ns": {PR1_EDIT_TILE_NS},
    "edit_tile_speedup_vs_pr1": {:.2}
  }}
}}
"#,
        PR1_EDIT_TILE_NS / edit.after_median_ns
    )
}

/// CI gate: re-measure the live kernels and fail if any after-kernel's
/// measured minimum exceeds the committed median by more than 10 %.
fn check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path}: bad JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(benches) = doc.get("benches") else {
        eprintln!("error: {path}: missing \"benches\"");
        return ExitCode::FAILURE;
    };
    eprintln!("re-measuring kernels for the regression gate...");
    let pairs = measure_kernels(15);
    let mut failed = false;
    for p in &pairs {
        let committed = benches
            .get(p.name)
            .and_then(|b| b.get("after_median_ns"))
            .and_then(|v| v.as_f64());
        let Some(committed) = committed else {
            eprintln!("error: {path}: no committed median for {}", p.name);
            failed = true;
            continue;
        };
        let limit = committed * 1.10;
        let status = if p.after_min_ns > limit {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "  {:>9}  {}  measured min {:.0} ns vs committed median {:.0} ns (limit {:.0})",
            status, p.name, p.after_min_ns, committed, limit
        );
    }
    if failed {
        eprintln!("bench-smoke gate FAILED: kernel regression >10% against {path}");
        ExitCode::FAILURE
    } else {
        eprintln!("bench-smoke gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut date = String::from("unknown");
    let mut iters = 25usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            eprintln!(
                "usage: bench_pr6 [--out PATH] [--date YYYY-MM-DD] [--iters N] [--check PATH]"
            );
            return ExitCode::FAILURE;
        };
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--date" => date = value,
            "--check" => return check(&value),
            "--iters" => match value.parse() {
                Ok(n) => iters = n,
                Err(_) => {
                    eprintln!("error: --iters: bad number '{value}'");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("measuring tile kernels ({iters} samples each)...");
    let mut pairs = measure_kernels(iters);

    eprintln!("measuring end-to-end autotuning deltas...");
    let table = std::env::temp_dir().join(format!("bench-pr6-tune-{}.txt", std::process::id()));
    std::fs::remove_file(&table).ok();
    let (a, b) = (
        random_sequence(Alphabet::Dna, 200, 7),
        random_sequence(Alphabet::Dna, 200, 8),
    );
    pairs.push(e2e_pair(
        "runtime_end_to_end/edit_distance_200_2slaves_2threads_autotuned",
        EditDistance::new(a, b),
        iters.min(15),
        &table,
    ));
    let (a, b) = (
        random_sequence(Alphabet::Dna, 256, 9),
        random_sequence(Alphabet::Dna, 256, 10),
    );
    pairs.push(e2e_pair(
        "runtime_end_to_end/swgg_256_2slaves_2threads_autotuned",
        SmithWatermanGeneralGap::dna(a, b),
        iters.min(15),
        &table,
    ));
    std::fs::remove_file(&table).ok();

    let report = render_report(&date, iters, &pairs);
    print!("{report}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
