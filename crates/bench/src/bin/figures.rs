//! Regenerate every table and figure of the EasyHPS paper's evaluation
//! (§VI) at the paper's own parameters.
//!
//! ```text
//! figures [fig13|fig14|fig15|fig16|fig17|table1|all] [--csv]
//! ```
//!
//! All simulations are deterministic; running twice prints byte-identical
//! output. Expect a few minutes for `all` (it executes several hundred
//! full cluster simulations of 2500-tile DAGs).

use easyhps_bench::{cost, paper_nussinov, paper_swgg, FIG15_CORE_COUNTS};
use easyhps_sim::{
    bcw_ratio_series, node_comparison_series, render_csv, render_table, scaling_series,
    sequential_ns, speedup_series, Series,
};

fn emit(title: &str, x_label: &str, series: &[Series], csv: bool) {
    if csv {
        print!("{}", render_csv(x_label, series));
    } else {
        print!("{}", render_table(title, x_label, series));
    }
    println!();
}

fn fig13(csv: bool) {
    let s = scaling_series(&paper_swgg(), cost());
    emit(
        "Fig 13: SWGG elapsed time (s) vs cores, per node count (seq_len=10000, pps=200, tps=10)",
        "cores",
        &s,
        csv,
    );
}

fn fig14(csv: bool) {
    let s = scaling_series(&paper_nussinov(), cost());
    emit(
        "Fig 14: Nussinov elapsed time (s) vs cores, per node count (len=10000, pps=200, tps=10)",
        "cores",
        &s,
        csv,
    );
}

fn fig15(csv: bool) {
    let s = node_comparison_series(&paper_swgg(), cost(), &FIG15_CORE_COUNTS);
    emit(
        "Fig 15a: SWGG elapsed time (s) at equal core counts across node counts",
        "cores",
        &s,
        csv,
    );
    let s = node_comparison_series(&paper_nussinov(), cost(), &FIG15_CORE_COUNTS);
    emit(
        "Fig 15b: Nussinov elapsed time (s) at equal core counts across node counts",
        "cores",
        &s,
        csv,
    );
}

fn fig16(csv: bool) {
    let c = cost();
    let swgg = paper_swgg();
    let (elapsed, speedup) = speedup_series(&swgg, c, 53);
    println!(
        "# sequential baselines: SWGG {:.2}s, Nussinov {:.2}s",
        sequential_ns(&swgg, &c) as f64 / 1e9,
        sequential_ns(&paper_nussinov(), &c) as f64 / 1e9
    );
    emit(
        "Fig 16a/b: SWGG best-grouping elapsed and speedup",
        "cores",
        &[elapsed, speedup],
        csv,
    );
    let (elapsed, speedup) = speedup_series(&paper_nussinov(), c, 53);
    emit(
        "Fig 16c/d: Nussinov best-grouping elapsed and speedup",
        "cores",
        &[elapsed, speedup],
        csv,
    );
}

fn fig17(csv: bool) {
    let s = bcw_ratio_series(&paper_swgg(), cost());
    emit(
        "Fig 17 (SWGG): BCW / EasyHPS runtime ratio (>1 means EasyHPS wins)",
        "cores",
        &s,
        csv,
    );
    let s = bcw_ratio_series(&paper_nussinov(), cost());
    emit(
        "Fig 17 (Nussinov): BCW / EasyHPS runtime ratio (>1 means EasyHPS wins)",
        "cores",
        &s,
        csv,
    );
}

fn table1() {
    // Table I is the user-facing data-structure surface of the DAG Data
    // Driven Model; its reproduction is the API itself. Print the mapping.
    println!("# Table I: DAG Data Driven Model user API -> this implementation");
    for (paper, ours) in [
        (
            "pre_cnt / pos_cnt",
            "easyhps_core::TaskVertex::{preds, succs} lengths",
        ),
        (
            "data_pre_cnt / data_prefix_id",
            "easyhps_core::TaskVertex::data_deps",
        ),
        ("posfix_id", "easyhps_core::TaskVertex::succs"),
        (
            "process (task function)",
            "easyhps_dp::DpProblem::compute_region",
        ),
        ("dag_pattern_element", "easyhps_core::TaskDag vertex table"),
        ("dag_size", "easyhps_core::DagDataDrivenModel::dag_size"),
        (
            "partition_size (process/thread)",
            "DagDataDrivenModel::{process,thread}_partition_size",
        ),
        ("rect_size", "easyhps_core::DagDataDrivenModel::rect_size"),
        ("dag_pos", "easyhps_core::GridPos of each vertex"),
        (
            "dag_pattern_type",
            "easyhps_core::PatternKind + patterns library",
        ),
        (
            "data_mapping_function",
            "easyhps_core::ModelBuilder::data_mapping_function",
        ),
    ] {
        println!("{paper:>34}  ->  {ours}");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--csv")
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");

    let t0 = std::time::Instant::now();
    if all || which.contains(&"table1") {
        table1();
    }
    if all || which.contains(&"fig13") {
        fig13(csv);
    }
    if all || which.contains(&"fig14") {
        fig14(csv);
    }
    if all || which.contains(&"fig15") {
        fig15(csv);
    }
    if all || which.contains(&"fig16") {
        fig16(csv);
    }
    if all || which.contains(&"fig17") {
        fig17(csv);
    }
    eprintln!(
        "(regenerated in {:.1?}; all series deterministic)",
        t0.elapsed()
    );
}
