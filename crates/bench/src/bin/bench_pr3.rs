//! `bench_pr3` — instrumentation-overhead benchmark for the easyhps-obs
//! subsystem (PR 3). Emits a stable flat JSON report (`BENCH_PR3.json`):
//!
//! * metric primitive costs (counter inc, histogram observe, ns/op);
//! * SWGG end-to-end medians with observability off / metrics on /
//!   metrics + tracing on, and the metrics-on overhead percentage —
//!   the subsystem's budget is < 2 % with metrics on and tracing off.
//!
//! ```text
//! bench_pr3 [--out PATH] [--date YYYY-MM-DD] [--iters N]
//! ```

use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::SmithWatermanGeneralGap;
use easyhps_obs::{Histogram, Registry};
use easyhps_runtime::EasyHps;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Median of a mutable sample set, in ns.
fn median_ns(samples: &mut [u128]) -> f64 {
    samples.sort_unstable();
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2] as f64
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) as f64 / 2.0
    }
}

/// ns/op of `op` over `per_sample` iterations, median of `samples` runs.
fn ns_per_op(samples: usize, per_sample: u64, mut op: impl FnMut()) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..per_sample {
            op();
        }
        times.push(t0.elapsed().as_nanos());
    }
    median_ns(&mut times) / per_sample as f64
}

#[derive(Clone, Copy)]
enum Obs {
    Off,
    Metrics,
    MetricsAndTrace,
}

/// One SWGG end-to-end run (256x256, 64 tiles, 2 slaves x 2 threads) with
/// the requested observability level; returns elapsed ns.
fn swgg_run(mode: Obs, seqs: &(Vec<u8>, Vec<u8>), trace_path: &std::path::Path) -> u128 {
    let mut hps = EasyHps::new(SmithWatermanGeneralGap::dna(seqs.0.clone(), seqs.1.clone()))
        .process_partition((32, 32))
        .thread_partition((8, 8))
        .slaves(2)
        .threads_per_slave(2);
    match mode {
        Obs::Off => {}
        Obs::Metrics => hps = hps.metrics(true),
        Obs::MetricsAndTrace => hps = hps.metrics(true).trace_out(trace_path),
    }
    let t0 = Instant::now();
    let out = hps.run().unwrap();
    let elapsed = t0.elapsed().as_nanos();
    black_box(out.report.master.completed);
    elapsed
}

/// `(min, median)` per observability level, sampled interleaved
/// (off, metrics, traced, off, ...) so slow machine-state drift lands on
/// every mode equally instead of biasing whichever batch ran last. The
/// minimum is the noise-robust statistic the overhead figures use: every
/// source of container jitter only ever adds time.
fn swgg_samples_ns(iters: usize, trace_path: &std::path::Path) -> [(f64, f64); 3] {
    const MODES: [Obs; 3] = [Obs::Off, Obs::Metrics, Obs::MetricsAndTrace];
    let seqs = (
        random_sequence(Alphabet::Dna, 256, 3),
        random_sequence(Alphabet::Dna, 256, 4),
    );
    for mode in MODES {
        swgg_run(mode, &seqs, trace_path); // warm-up, discarded
    }
    let mut times: [Vec<u128>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..iters {
        for (i, mode) in MODES.into_iter().enumerate() {
            times[i].push(swgg_run(mode, &seqs, trace_path));
        }
    }
    times.map(|mut t| {
        let min = *t.iter().min().unwrap() as f64;
        (min, median_ns(&mut t))
    })
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut date = String::from("unknown");
    let mut iters = 31usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            eprintln!("usage: bench_pr3 [--out PATH] [--date YYYY-MM-DD] [--iters N]");
            return ExitCode::FAILURE;
        };
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--date" => date = value,
            "--iters" => match value.parse() {
                Ok(n) => iters = n,
                Err(_) => {
                    eprintln!("error: --iters: bad number '{value}'");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    // --- Metric primitives.
    let registry = Registry::new();
    let counter = registry.counter("bench_counter");
    let counter_inc_ns = ns_per_op(9, 20_000_000, || counter.inc());
    black_box(counter.get());

    let hist = Histogram::default();
    let mut v = 1u64;
    let hist_observe_ns = ns_per_op(9, 20_000_000, || {
        hist.observe(v);
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
    });
    black_box(hist.count());

    // --- End-to-end overhead.
    let trace_path = std::env::temp_dir().join(format!("bench-pr3-{}.json", std::process::id()));
    eprintln!("running SWGG e2e, {iters} interleaved samples per observability level...");
    let [(off_min, off_med), (metrics_min, metrics_med), (traced_min, traced_med)] =
        swgg_samples_ns(iters, &trace_path);
    std::fs::remove_file(&trace_path).ok();

    let overhead_metrics_pct = (metrics_min / off_min - 1.0) * 100.0;
    let overhead_traced_pct = (traced_min / off_min - 1.0) * 100.0;

    let report = format!(
        r#"{{
  "pr": 3,
  "title": "easyhps-obs: metrics registry + structured tracing, instrumentation overhead",
  "date": "{date}",
  "harness": "interleaved min/median of {iters} end-to-end runs per observability level (warm-ups discarded), overhead from minima; primitives median-of-9 x 20M ops",
  "benches": {{
    "obs_primitives/counter_inc_ns": {counter_inc_ns:.2},
    "obs_primitives/histogram_observe_ns": {hist_observe_ns:.2},
    "runtime_end_to_end/swgg_256_2slaves_2threads_obs_off_min_ns": {off_min:.0},
    "runtime_end_to_end/swgg_256_2slaves_2threads_obs_off_median_ns": {off_med:.0},
    "runtime_end_to_end/swgg_256_2slaves_2threads_metrics_min_ns": {metrics_min:.0},
    "runtime_end_to_end/swgg_256_2slaves_2threads_metrics_median_ns": {metrics_med:.0},
    "runtime_end_to_end/swgg_256_2slaves_2threads_metrics_trace_min_ns": {traced_min:.0},
    "runtime_end_to_end/swgg_256_2slaves_2threads_metrics_trace_median_ns": {traced_med:.0},
    "overhead/metrics_on_tracing_off_pct": {overhead_metrics_pct:.2},
    "overhead/metrics_and_tracing_pct": {overhead_traced_pct:.2}
  }},
  "budget": {{ "metrics_on_tracing_off_pct_max": 2.0 }}
}}
"#
    );
    print!("{report}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
