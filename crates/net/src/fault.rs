//! Deterministic fault injection for the transport layer.
//!
//! A [`FaultPlan`] describes everything that can go wrong with one
//! endpoint's *outgoing* traffic: uniform and per-tag message drops,
//! duplicate deliveries, delayed (and therefore reordered) deliveries,
//! single-bit payload corruption, and endpoint death after a send budget. All randomness is drawn from a
//! seeded generator in a fixed per-send order, so the same plan replayed
//! against the same send sequence produces the same fault schedule —
//! byte for byte. The schedule-stress harness (`easyhps-stress`) derives
//! whole per-rank plan sets from a single `u64` seed on top of this.

use crate::message::{Envelope, Tag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduled hard link cut: at send number `at` the endpoint's socket
/// link to the destination of that send is shut down at the kernel level
/// and held down for `down_for`, after which the reconnect path (when the
/// transport has one configured) is free to heal it. Purely send-count
/// driven — no RNG draws — so adding a sever to a plan never perturbs the
/// schedule of the probabilistic clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSever {
    /// Fire when the endpoint's send counter reaches this value.
    pub at: u64,
    /// How long the link is held down before redial attempts may succeed.
    pub down_for: std::time::Duration,
}

/// Faults to inject at one endpoint. All randomness is seeded, so fault
/// schedules reproduce exactly.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that an outgoing message is silently
    /// dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that an outgoing message is delivered
    /// twice (the duplicate follows the original immediately).
    pub dup_prob: f64,
    /// Probability in `[0, 1]` that an outgoing message is held back and
    /// released only after [`FaultPlan::delay_sends`] further sends —
    /// which reorders it past the messages sent in between.
    pub delay_prob: f64,
    /// How many subsequent send calls a delayed message is held for
    /// (`1` swaps it with the next message). Ignored when
    /// [`FaultPlan::delay_prob`] is zero.
    pub delay_sends: u32,
    /// Extra per-tag drop probabilities, applied before the uniform
    /// `drop_prob` — e.g. starve a slave's heartbeats specifically while
    /// leaving its data traffic alone.
    pub tag_drops: Vec<(Tag, f64)>,
    /// Probability in `[0, 1]` that an outgoing message is delivered with
    /// exactly one bit flipped (a corrupting link). The flipped bit index
    /// is drawn uniformly over the payload; empty payloads pass through
    /// unchanged.
    pub bitflip_prob: f64,
    /// RNG seed for all fault decisions.
    pub seed: u64,
    /// After this many send *attempts*, the endpoint dies (simulated node
    /// crash): every later operation returns
    /// [`crate::NetError::Dead`].
    pub die_after_sends: Option<u64>,
    /// Hard-close the socket link under one send, then let the reconnect
    /// path heal it. A no-op on channel links (in-process transport).
    pub link_sever: Option<LinkSever>,
}

impl FaultPlan {
    /// A plan that kills the endpoint after `n` send attempts and drops
    /// nothing before that.
    pub fn die_after(n: u64) -> Self {
        Self {
            die_after_sends: Some(n),
            ..Self::default()
        }
    }

    /// A plan that drops each message with probability `p`.
    pub fn lossy(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self {
            drop_prob: p,
            seed,
            ..Self::default()
        }
    }

    /// Add duplicate deliveries with probability `p`.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.dup_prob = p;
        self
    }

    /// Add delayed deliveries: each message is held with probability `p`
    /// and released after `sends` further send calls.
    pub fn with_delays(mut self, p: f64, sends: u32) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        assert!(sends >= 1, "a delay must span at least one send");
        self.delay_prob = p;
        self.delay_sends = sends;
        self
    }

    /// Drop messages carrying `tag` with probability `p` (on top of the
    /// uniform `drop_prob`).
    pub fn with_tag_drop(mut self, tag: Tag, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.tag_drops.push((tag, p));
        self
    }

    /// Kill the endpoint after `n` send attempts.
    pub fn with_death_after(mut self, n: u64) -> Self {
        self.die_after_sends = Some(n);
        self
    }

    /// Sever the socket link under the `at`-th send and hold it down for
    /// `down_for` before reconnection may heal it.
    pub fn with_link_sever(mut self, at: u64, down_for: std::time::Duration) -> Self {
        self.link_sever = Some(LinkSever { at, down_for });
        self
    }

    /// Flip one uniformly-drawn bit of each message with probability `p`
    /// (a corrupting link).
    pub fn with_bitflips(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.bitflip_prob = p;
        self
    }

    /// Whether the plan can affect traffic at all (used to skip the RNG
    /// on fault-free endpoints).
    fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.delay_prob > 0.0
            || self.bitflip_prob > 0.0
            || !self.tag_drops.is_empty()
    }
}

/// What the fault layer decided to do with one outgoing message.
#[derive(Debug, PartialEq)]
pub(crate) enum SendVerdict {
    /// Deliver normally.
    Deliver,
    /// Silently drop (success reported to the sender).
    Drop,
    /// Deliver twice, back to back.
    Duplicate,
    /// Hold until the send counter reaches the given value.
    Delay(u64),
    /// Deliver with the given payload bit flipped (a corrupting link).
    Corrupt {
        /// Bit index into the payload (`byte = bit / 8`, LSB-first
        /// within the byte).
        bit: u64,
    },
}

/// Mutable fault state carried by an endpoint.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: Option<FaultPlan>,
    rng: StdRng,
    sends: u64,
    /// Delayed messages awaiting release: `(release_at_send_count, env)`,
    /// in hold order.
    held: Vec<(u64, Envelope)>,
}

impl FaultState {
    pub(crate) fn new(plan: Option<FaultPlan>) -> Self {
        let seed = plan.as_ref().map(|p| p.seed).unwrap_or(0);
        Self {
            plan,
            rng: StdRng::seed_from_u64(seed),
            sends: 0,
            held: Vec::new(),
        }
    }

    pub(crate) fn note_send(&mut self) {
        self.sends += 1;
    }

    /// Whether this send is the one the plan severs the link under.
    /// Fires exactly once (at equality, not `>=`), and draws nothing from
    /// the RNG, so old seeds replay byte-for-byte.
    pub(crate) fn should_sever_now(&self) -> Option<std::time::Duration> {
        match &self.plan {
            Some(FaultPlan {
                link_sever: Some(s),
                ..
            }) if self.sends == s.at => Some(s.down_for),
            _ => None,
        }
    }

    pub(crate) fn should_die_now(&self) -> bool {
        match &self.plan {
            Some(FaultPlan {
                die_after_sends: Some(n),
                ..
            }) => self.sends >= *n,
            _ => false,
        }
    }

    /// Decide the fate of one outgoing message of `payload_len` bytes.
    /// Draws happen in a fixed order (per-tag drop, uniform drop,
    /// duplicate, delay, bit-flip) so a plan's schedule is a pure
    /// function of its seed and the send sequence. The bit-flip draws
    /// come *last* and only when `bitflip_prob > 0`, so plans without
    /// bit-flips replay byte-for-byte against schedules recorded before
    /// the clause existed.
    pub(crate) fn decide(&mut self, tag: Tag, payload_len: usize) -> SendVerdict {
        let Some(plan) = &self.plan else {
            return SendVerdict::Deliver;
        };
        if !plan.is_active() {
            return SendVerdict::Deliver;
        }
        if let Some((_, p)) = plan.tag_drops.iter().find(|(t, _)| *t == tag) {
            if *p > 0.0 && self.rng.random_bool(*p) {
                return SendVerdict::Drop;
            }
        }
        if plan.drop_prob > 0.0 && self.rng.random_bool(plan.drop_prob) {
            return SendVerdict::Drop;
        }
        if plan.dup_prob > 0.0 && self.rng.random_bool(plan.dup_prob) {
            return SendVerdict::Duplicate;
        }
        if plan.delay_prob > 0.0 && self.rng.random_bool(plan.delay_prob) {
            return SendVerdict::Delay(self.sends + plan.delay_sends.max(1) as u64);
        }
        if plan.bitflip_prob > 0.0 && self.rng.random_bool(plan.bitflip_prob) && payload_len > 0 {
            return SendVerdict::Corrupt {
                bit: self.rng.random_range(0..payload_len as u64 * 8),
            };
        }
        SendVerdict::Deliver
    }

    /// Park a delayed message until the send counter reaches
    /// `release_at`.
    pub(crate) fn hold(&mut self, release_at: u64, env: Envelope) {
        self.held.push((release_at, env));
    }

    /// Take every held message whose release point has been reached, in
    /// hold order. A message held past the endpoint's final send is never
    /// released — indistinguishable from a drop, which is the point.
    pub(crate) fn take_due(&mut self) -> Vec<Envelope> {
        if self.held.is_empty() {
            return Vec::new();
        }
        let sends = self.sends;
        let mut due = Vec::new();
        self.held.retain(|(at, env)| {
            if *at <= sends {
                due.push(env.clone());
                false
            } else {
                true
            }
        });
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetError, Network, Rank, Tag};
    use bytes::Bytes;

    #[test]
    fn die_after_sends_kills_endpoint() {
        let plans = vec![Some(FaultPlan::die_after(2)), None];
        let mut eps = Network::with_faults(2, &plans);
        let _e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(Rank(1), Tag(0), Bytes::new()).unwrap();
        e0.send(Rank(1), Tag(0), Bytes::new()).unwrap();
        assert_eq!(
            e0.send(Rank(1), Tag(0), Bytes::new()).unwrap_err(),
            NetError::Dead
        );
        assert_eq!(e0.recv().unwrap_err(), NetError::Dead);
    }

    #[test]
    fn lossy_drops_are_deterministic_and_counted() {
        let run = || {
            let plans = vec![Some(FaultPlan::lossy(0.5, 42)), None];
            let mut eps = Network::with_faults(2, &plans);
            let mut e1 = eps.pop().unwrap();
            let mut e0 = eps.pop().unwrap();
            for _ in 0..100 {
                e0.send(Rank(1), Tag(0), Bytes::new()).unwrap();
            }
            let mut received = 0;
            while e1.try_recv().unwrap().is_some() {
                received += 1;
            }
            (received, e0.stats().dropped_msgs, e0.stats().sent_msgs)
        };
        let (r1, d1, s1) = run();
        let (r2, d2, s2) = run();
        assert_eq!(
            (r1, d1, s1),
            (r2, d2, s2),
            "fault schedule must be deterministic"
        );
        assert_eq!(r1 as u64 + d1, 100);
        assert_eq!(s1, r1 as u64);
        assert!(d1 > 20 && d1 < 80, "drop rate wildly off: {d1}");
    }

    /// Drain everything currently queued at `ep` as payload first-bytes.
    fn drain_bytes(ep: &mut crate::Endpoint) -> Vec<u8> {
        let mut got = Vec::new();
        while let Some(env) = ep.try_recv().unwrap() {
            got.push(env.payload[0]);
        }
        got
    }

    #[test]
    fn duplicates_are_deterministic_and_counted() {
        let run = || {
            let plan = FaultPlan {
                seed: 9,
                ..FaultPlan::default()
            }
            .with_duplicates(0.4);
            let mut eps = Network::with_faults(2, &[Some(plan), None]);
            let mut e1 = eps.pop().unwrap();
            let mut e0 = eps.pop().unwrap();
            for i in 0..50u8 {
                e0.send(Rank(1), Tag(0), Bytes::from(vec![i])).unwrap();
            }
            (drain_bytes(&mut e1), e0.stats())
        };
        let (got1, stats1) = run();
        let (got2, stats2) = run();
        assert_eq!(got1, got2, "same seed must give the same byte stream");
        assert_eq!(stats1, stats2);
        assert!(got1.len() > 50, "some messages must be duplicated");
        assert_eq!(stats1.sent_msgs, 50, "one logical send per message");
        assert_eq!(
            stats1.sent_msgs + stats1.duplicated_msgs,
            got1.len() as u64,
            "extra copies accounted as duplicates"
        );
        for i in 0..50u8 {
            assert!(
                got1.iter().filter(|b| **b == i).count() >= 1,
                "message {i} lost"
            );
        }
        // Duplicates are adjacent: second copy right after the first.
        let mut dups = 0;
        for w in got1.windows(2) {
            if w[0] == w[1] {
                dups += 1;
            }
        }
        assert!(dups > 0, "adjacent duplicate expected in {got1:?}");
    }

    #[test]
    fn delays_reorder_deterministically() {
        let run = || {
            let plan = FaultPlan {
                seed: 31,
                ..FaultPlan::default()
            }
            .with_delays(0.4, 2);
            let mut eps = Network::with_faults(2, &[Some(plan), None]);
            let mut e1 = eps.pop().unwrap();
            let mut e0 = eps.pop().unwrap();
            for i in 0..40u8 {
                e0.send(Rank(1), Tag(0), Bytes::from(vec![i])).unwrap();
            }
            drain_bytes(&mut e1)
        };
        let got1 = run();
        let got2 = run();
        assert_eq!(got1, got2, "same seed must give the same byte stream");
        let mut sorted = got1.clone();
        sorted.sort_unstable();
        assert_ne!(got1, sorted, "delays must produce at least one inversion");
        // Releases are driven by later sends, so at worst the tail of the
        // stream is still held; everything released arrives exactly once.
        let mut uniq = got1.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), got1.len(), "no duplicates from delays");
        assert!(got1.len() >= 35, "only a short tail may be left holding");
    }

    #[test]
    fn tag_drops_starve_only_that_tag() {
        let heartbeat = Tag(6);
        let plan = FaultPlan {
            seed: 4,
            ..FaultPlan::default()
        }
        .with_tag_drop(heartbeat, 1.0);
        let mut eps = Network::with_faults(2, &[Some(plan), None]);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        for i in 0..10u8 {
            e0.send(Rank(1), heartbeat, Bytes::from(vec![i])).unwrap();
            e0.send(Rank(1), Tag(1), Bytes::from(vec![i])).unwrap();
        }
        let mut data = 0;
        while let Some(env) = e1.try_recv().unwrap() {
            assert_eq!(env.tag, Tag(1), "starved tag must never arrive");
            data += 1;
        }
        assert_eq!(data, 10, "other tags are untouched");
        assert_eq!(e0.stats().dropped_msgs, 10);
    }

    #[test]
    fn combined_chaos_is_deterministic() {
        let run = || {
            let plan = FaultPlan {
                drop_prob: 0.15,
                seed: 77,
                ..FaultPlan::default()
            }
            .with_duplicates(0.2)
            .with_delays(0.2, 1);
            let mut eps = Network::with_faults(2, &[Some(plan), None]);
            let mut e1 = eps.pop().unwrap();
            let mut e0 = eps.pop().unwrap();
            for i in 0..60u8 {
                e0.send(Rank(1), Tag(0), Bytes::from(vec![i])).unwrap();
            }
            (
                drain_bytes(&mut e1),
                e0.stats().dropped_msgs,
                e0.stats().sent_msgs,
            )
        };
        assert_eq!(run(), run(), "chaos schedule must replay byte-for-byte");
    }

    #[test]
    fn bitflips_are_deterministic_and_counted() {
        let run = || {
            let plan = FaultPlan {
                seed: 21,
                ..FaultPlan::default()
            }
            .with_bitflips(0.5);
            let mut eps = Network::with_faults(2, &[Some(plan), None]);
            let mut e1 = eps.pop().unwrap();
            let mut e0 = eps.pop().unwrap();
            for i in 0..50u8 {
                e0.send(Rank(1), Tag(0), Bytes::from(vec![i, 0xAA, 0x55]))
                    .unwrap();
            }
            let mut got = Vec::new();
            while let Some(env) = e1.try_recv().unwrap() {
                got.push(env.payload.to_vec());
            }
            (got, e0.stats().corrupted_msgs)
        };
        let (got1, corrupted1) = run();
        let (got2, corrupted2) = run();
        assert_eq!(got1, got2, "flip schedule must replay byte-for-byte");
        assert_eq!(corrupted1, corrupted2);
        assert_eq!(got1.len(), 50, "corruption delivers, never drops");
        assert!((10..=40).contains(&corrupted1), "flip rate wildly off");
        let mangled = got1
            .iter()
            .enumerate()
            .filter(|(i, p)| **p != [*i as u8, 0xAA, 0x55])
            .count() as u64;
        assert_eq!(mangled, corrupted1, "each flip mangles exactly one message");
        for (i, p) in got1.iter().enumerate() {
            let clean = [i as u8, 0xAA, 0x55];
            let diff: u32 = p
                .iter()
                .zip(clean.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert!(diff <= 1, "message {i} has {diff} flipped bits");
        }
    }

    #[test]
    fn empty_payloads_pass_through_a_corrupting_link() {
        let plan = FaultPlan {
            seed: 3,
            ..FaultPlan::default()
        }
        .with_bitflips(1.0);
        let mut eps = Network::with_faults(2, &[Some(plan), None]);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        for _ in 0..5 {
            e0.send(Rank(1), Tag(0), Bytes::new()).unwrap();
        }
        let mut n = 0;
        while e1.try_recv().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 5, "nothing to flip, nothing lost");
        assert_eq!(e0.stats().corrupted_msgs, 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn lossy_rejects_bad_probability() {
        FaultPlan::lossy(1.5, 0);
    }
}
