//! Deterministic fault injection for the transport layer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Faults to inject at one endpoint. All randomness is seeded, so fault
/// schedules reproduce exactly.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that an outgoing message is silently
    /// dropped.
    pub drop_prob: f64,
    /// RNG seed for drop decisions.
    pub seed: u64,
    /// After this many send *attempts*, the endpoint dies (simulated node
    /// crash): every later operation returns
    /// [`crate::NetError::Dead`].
    pub die_after_sends: Option<u64>,
}

impl FaultPlan {
    /// A plan that kills the endpoint after `n` send attempts and drops
    /// nothing before that.
    pub fn die_after(n: u64) -> Self {
        Self {
            drop_prob: 0.0,
            seed: 0,
            die_after_sends: Some(n),
        }
    }

    /// A plan that drops each message with probability `p`.
    pub fn lossy(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self {
            drop_prob: p,
            seed,
            die_after_sends: None,
        }
    }
}

/// Mutable fault state carried by an endpoint.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: Option<FaultPlan>,
    rng: StdRng,
    sends: u64,
}

impl FaultState {
    pub(crate) fn new(plan: Option<FaultPlan>) -> Self {
        let seed = plan.as_ref().map(|p| p.seed).unwrap_or(0);
        Self {
            plan,
            rng: StdRng::seed_from_u64(seed),
            sends: 0,
        }
    }

    pub(crate) fn note_send(&mut self) {
        self.sends += 1;
    }

    pub(crate) fn should_die_now(&self) -> bool {
        match &self.plan {
            Some(FaultPlan {
                die_after_sends: Some(n),
                ..
            }) => self.sends >= *n,
            _ => false,
        }
    }

    pub(crate) fn should_drop(&mut self) -> bool {
        match &self.plan {
            Some(p) if p.drop_prob > 0.0 => self.rng.random_bool(p.drop_prob),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetError, Network, Rank, Tag};
    use bytes::Bytes;

    #[test]
    fn die_after_sends_kills_endpoint() {
        let plans = vec![Some(FaultPlan::die_after(2)), None];
        let mut eps = Network::with_faults(2, &plans);
        let _e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(Rank(1), Tag(0), Bytes::new()).unwrap();
        e0.send(Rank(1), Tag(0), Bytes::new()).unwrap();
        assert_eq!(
            e0.send(Rank(1), Tag(0), Bytes::new()).unwrap_err(),
            NetError::Dead
        );
        assert_eq!(e0.recv().unwrap_err(), NetError::Dead);
    }

    #[test]
    fn lossy_drops_are_deterministic_and_counted() {
        let run = || {
            let plans = vec![Some(FaultPlan::lossy(0.5, 42)), None];
            let mut eps = Network::with_faults(2, &plans);
            let mut e1 = eps.pop().unwrap();
            let mut e0 = eps.pop().unwrap();
            for _ in 0..100 {
                e0.send(Rank(1), Tag(0), Bytes::new()).unwrap();
            }
            let mut received = 0;
            while e1.try_recv().unwrap().is_some() {
                received += 1;
            }
            (received, e0.stats().dropped_msgs, e0.stats().sent_msgs)
        };
        let (r1, d1, s1) = run();
        let (r2, d2, s2) = run();
        assert_eq!(
            (r1, d1, s1),
            (r2, d2, s2),
            "fault schedule must be deterministic"
        );
        assert_eq!(r1 as u64 + d1, 100);
        assert_eq!(s1, r1 as u64);
        assert!(d1 > 20 && d1 < 80, "drop rate wildly off: {d1}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn lossy_rejects_bad_probability() {
        FaultPlan::lossy(1.5, 0);
    }
}
