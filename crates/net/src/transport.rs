//! Message transport: the virtual-MPI layer.
//!
//! [`Network::new`] creates `n` fully-connected endpoints. Each endpoint
//! belongs to one OS thread (the "process" of that rank) and provides
//! ordered, reliable point-to-point messaging — the same semantics the
//! paper gets from MPICH. The default backend wires every rank pair over
//! crossbeam channels in one process; the socket backend
//! ([`crate::socket`]) replaces individual links with TCP or Unix-domain
//! connections while the endpoint API, fault injection and statistics
//! stay identical. Fault injection (message drops, rank death) hooks in
//! at this layer — in [`Endpoint::send`], *before* the link is chosen —
//! so the runtime's fault tolerance can be exercised deterministically
//! over either backend.

use crate::fault::{FaultPlan, FaultState, SendVerdict};
use crate::message::{Envelope, Rank, Tag};
use crate::socket::SocketTx;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// How often a blocked receive re-checks [`KillHandle`] liveness. A
/// parked `recv` must observe `kill()` within roughly this bound instead
/// of sleeping on the channel forever.
const ALIVE_SLICE: Duration = Duration::from_millis(10);

/// Transport errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The peer's endpoint (or every sender into ours) has been dropped,
    /// or the socket carrying this link was closed or errored.
    Disconnected,
    /// `recv_timeout` elapsed with no message.
    Timeout,
    /// This endpoint has been killed by fault injection; it can no longer
    /// send or receive.
    Dead,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Dead => write!(f, "endpoint killed by fault injection"),
        }
    }
}

impl std::error::Error for NetError {}

/// Counters of one endpoint's traffic.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct NetStats {
    /// Logical messages successfully handed to the transport. A
    /// fault-injected duplicate still counts once here (see
    /// [`NetStats::duplicated_msgs`]).
    pub sent_msgs: u64,
    /// Bytes (wire size) of logical sends.
    pub sent_bytes: u64,
    /// Messages received.
    pub recv_msgs: u64,
    /// Bytes received.
    pub recv_bytes: u64,
    /// Messages silently dropped by fault injection.
    pub dropped_msgs: u64,
    /// Messages delivered with a bit flipped by fault injection.
    pub corrupted_msgs: u64,
    /// Extra copies injected by [`SendVerdict::Duplicate`]: the receiver
    /// sees `sent_msgs + duplicated_msgs` deliveries.
    pub duplicated_msgs: u64,
    /// Scripted link severs that actually fired (the send counter reached
    /// the clause's threshold on a socket link). A plan whose sever never
    /// triggers — the run finished first — leaves this at zero.
    pub severed_links: u64,
}

/// Handle that can kill an endpoint from another thread (simulates a node
/// crash mid-run).
#[derive(Clone, Debug)]
pub struct KillHandle {
    flag: Arc<AtomicBool>,
}

impl KillHandle {
    /// Kill the endpoint: all subsequent operations fail with
    /// [`NetError::Dead`]. A receive already parked on the channel
    /// observes the kill within one liveness slice (~10ms).
    pub fn kill(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the endpoint has been killed.
    pub fn is_dead(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One outbound route from an endpoint to a peer rank. Cloning shares
/// the underlying connection: a socket link stays open until *every*
/// clone has been dropped, which is what lets a persistent fleet keep
/// its connections alive while per-job [`Endpoint::fork`]s come and go.
#[derive(Clone)]
pub(crate) enum TxLink {
    /// In-process crossbeam channel into the peer's receiver.
    Channel(Sender<Envelope>),
    /// Socket connection (TCP or Unix-domain) to a peer process.
    Socket(SocketTx),
    /// No route — e.g. slave→slave in the star socket topology, where
    /// all traffic goes through the master.
    Unrouted,
}

impl TxLink {
    fn deliver(&self, env: Envelope) -> Result<(), NetError> {
        match self {
            TxLink::Channel(s) => s.send(env).map_err(|_| NetError::Disconnected),
            TxLink::Socket(tx) => tx.send(&env),
            TxLink::Unrouted => Err(NetError::Disconnected),
        }
    }
}

/// One rank's connection to the virtual cluster.
///
/// The route table sits behind a lock shared with every
/// [`Endpoint::fork`] (and, on an elastic master, the fleet acceptor) so
/// membership changes — a mid-run joiner growing the cluster, a released
/// rank's route being replaced — are visible to all holders at once.
/// Uncontended read-lock acquisition is a few nanoseconds; the send path
/// does not notice it.
pub struct Endpoint {
    rank: Rank,
    links: Arc<RwLock<Vec<TxLink>>>,
    receiver: Receiver<Envelope>,
    /// Messages received but not matched by a selective receive.
    deferred: VecDeque<Envelope>,
    dead: Arc<AtomicBool>,
    fault: FaultState,
    stats: NetStats,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("n_ranks", &self.n_ranks())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Factory for fully-connected in-process endpoint sets.
pub struct Network;

impl Network {
    /// `n` endpoints with no fault injection.
    #[allow(clippy::new_ret_no_self)] // factory: a network IS its endpoints
    pub fn new(n: usize) -> Vec<Endpoint> {
        Self::with_faults(n, &[])
    }

    /// `n` endpoints; `plans[i]` (if provided) configures fault injection
    /// for rank `i`.
    pub fn with_faults(n: usize, plans: &[Option<FaultPlan>]) -> Vec<Endpoint> {
        assert!(n > 0, "network needs at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(i, receiver)| {
                Endpoint::from_parts(
                    Rank(i as u32),
                    senders.iter().cloned().map(TxLink::Channel).collect(),
                    receiver,
                    plans.get(i).cloned().flatten(),
                )
            })
            .collect()
    }
}

impl Endpoint {
    /// Assemble an endpoint from explicit links — the shared constructor
    /// for the channel and socket backends.
    pub(crate) fn from_parts(
        rank: Rank,
        links: Vec<TxLink>,
        receiver: Receiver<Envelope>,
        plan: Option<FaultPlan>,
    ) -> Self {
        Endpoint {
            rank,
            links: Arc::new(RwLock::new(links)),
            receiver,
            deferred: VecDeque::new(),
            dead: Arc::new(AtomicBool::new(false)),
            fault: FaultState::new(plan),
            stats: NetStats::default(),
        }
    }

    /// The shared route table, for components that mutate membership at
    /// runtime (the fleet acceptor installs links for mid-run joiners).
    pub(crate) fn shared_links(&self) -> Arc<RwLock<Vec<TxLink>>> {
        self.links.clone()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the network.
    pub fn n_ranks(&self) -> usize {
        self.links.read().unwrap().len()
    }

    /// Traffic counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// A handle that can kill this endpoint from elsewhere.
    pub fn kill_handle(&self) -> KillHandle {
        KillHandle {
            flag: self.dead.clone(),
        }
    }

    /// A fresh endpoint sharing this one's links and inbound channel —
    /// the per-job view of a persistent fleet connection. The fork gets
    /// its own deferred queue, fault state (from `plan`), liveness flag
    /// and statistics; the underlying routes (channels or sockets) are
    /// *shared* (same route table, not a copy), so dropping the fork does
    /// not close any connection while the parent lives and membership
    /// changes made through either are seen by both. Only one of
    /// parent/fork may receive at a time: they drain the same inbound
    /// queue.
    pub fn fork(&self, plan: Option<FaultPlan>) -> Endpoint {
        Endpoint {
            rank: self.rank,
            links: self.links.clone(),
            receiver: self.receiver.clone(),
            deferred: VecDeque::new(),
            dead: Arc::new(AtomicBool::new(false)),
            fault: FaultState::new(plan),
            stats: NetStats::default(),
        }
    }

    fn check_alive(&mut self) -> Result<(), NetError> {
        if self.dead.load(Ordering::Acquire) {
            return Err(NetError::Dead);
        }
        if self.fault.should_die_now() {
            self.dead.store(true, Ordering::Release);
            return Err(NetError::Dead);
        }
        Ok(())
    }

    /// Send `payload` to `dst` with `tag`. Fault injection may silently
    /// drop, duplicate, or delay the message (drops are reported in
    /// [`NetStats::dropped_msgs`], success returned — the point is that
    /// the *receiver* never sees it, or sees it twice / out of order).
    pub fn send(&mut self, dst: Rank, tag: Tag, payload: Bytes) -> Result<(), NetError> {
        self.check_alive()?;
        let env = Envelope {
            src: self.rank,
            dst,
            tag,
            payload,
        };
        self.fault.note_send();
        // A scripted link sever fires on send count, before the verdict:
        // it models the cable being pulled, not a message being lost —
        // the frame below still goes out through the (now-queueing) link.
        if let Some(down_for) = self.fault.should_sever_now() {
            if let Some(TxLink::Socket(tx)) = self.links.read().unwrap().get(env.dst.index()) {
                tx.sever(down_for);
                self.stats.severed_links += 1;
            }
        }
        let res = match self.fault.decide(tag, env.payload.len()) {
            SendVerdict::Deliver => self.deliver(env, true),
            SendVerdict::Drop => {
                self.stats.dropped_msgs += 1;
                Ok(())
            }
            SendVerdict::Duplicate => {
                // One logical send; the extra copy is transport noise and
                // is accounted separately so stats conservation holds.
                let first = self.deliver(env.clone(), true);
                if first.is_ok() && self.deliver(env, false).is_ok() {
                    self.stats.duplicated_msgs += 1;
                }
                first
            }
            SendVerdict::Delay(release_at) => {
                self.fault.hold(release_at, env);
                Ok(())
            }
            SendVerdict::Corrupt { bit } => {
                let mut buf = env.payload.to_vec();
                buf[(bit / 8) as usize] ^= 1 << (bit % 8);
                self.stats.corrupted_msgs += 1;
                self.deliver(
                    Envelope {
                        payload: Bytes::from(buf),
                        ..env
                    },
                    true,
                )
            }
        };
        // Release previously held messages only after the current one so a
        // one-send delay really swaps adjacent messages. A held message
        // whose destination has meanwhile gone away is just lost — same
        // observable behaviour as a drop.
        for held in self.fault.take_due() {
            if self.deliver(held, true).is_err() {
                self.stats.dropped_msgs += 1;
            }
        }
        res
    }

    fn deliver(&mut self, env: Envelope, count: bool) -> Result<(), NetError> {
        let size = env.wire_size();
        let link = self
            .links
            .read()
            .unwrap()
            .get(env.dst.index())
            .ok_or(NetError::Disconnected)?
            .clone();
        link.deliver(env)?;
        if count {
            self.stats.sent_msgs += 1;
            self.stats.sent_bytes += size;
        }
        Ok(())
    }

    fn note_recv(&mut self, env: &Envelope) {
        self.stats.recv_msgs += 1;
        self.stats.recv_bytes += env.wire_size();
    }

    /// One bounded wait on the channel, re-checking liveness first so a
    /// `kill()` issued while we were parked is observed within a slice.
    fn recv_slice(&mut self, timeout: Duration) -> Result<Option<Envelope>, NetError> {
        self.check_alive()?;
        match self.receiver.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Blocking receive of the next message (deferred messages first).
    pub fn recv(&mut self) -> Result<Envelope, NetError> {
        self.check_alive()?;
        if let Some(env) = self.deferred.pop_front() {
            self.note_recv(&env);
            return Ok(env);
        }
        loop {
            if let Some(env) = self.recv_slice(ALIVE_SLICE)? {
                self.note_recv(&env);
                return Ok(env);
            }
        }
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Envelope, NetError> {
        self.check_alive()?;
        if let Some(env) = self.deferred.pop_front() {
            self.note_recv(&env);
            return Ok(env);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                self.check_alive()?;
                return Err(NetError::Timeout);
            }
            if let Some(env) = self.recv_slice(left.min(ALIVE_SLICE))? {
                self.note_recv(&env);
                return Ok(env);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Result<Option<Envelope>, NetError> {
        self.check_alive()?;
        if let Some(env) = self.deferred.pop_front() {
            self.note_recv(&env);
            return Ok(Some(env));
        }
        match self.receiver.try_recv() {
            Ok(env) => {
                self.note_recv(&env);
                Ok(Some(env))
            }
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Blocking selective receive: the next message with tag `tag`;
    /// non-matching messages are deferred (in arrival order) for later
    /// receives — MPI-style tag matching.
    pub fn recv_tag(&mut self, tag: Tag) -> Result<Envelope, NetError> {
        self.check_alive()?;
        if let Some(i) = self.deferred.iter().position(|e| e.tag == tag) {
            let env = self.deferred.remove(i).expect("position was valid");
            self.note_recv(&env);
            return Ok(env);
        }
        loop {
            if let Some(env) = self.recv_slice(ALIVE_SLICE)? {
                if env.tag == tag {
                    self.note_recv(&env);
                    return Ok(env);
                }
                self.deferred.push_back(env);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn ping_pong() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(Rank(1), Tag(1), b("ping")).unwrap();
        let env = e1.recv().unwrap();
        assert_eq!(env.src, Rank(0));
        assert_eq!(&env.payload[..], b"ping");
        e1.send(Rank(0), Tag(2), b("pong")).unwrap();
        let env = e0.recv().unwrap();
        assert_eq!(env.tag, Tag(2));
    }

    #[test]
    fn per_pair_ordering_preserved() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        for i in 0..100u32 {
            e0.send(Rank(1), Tag(i), Bytes::new()).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(e1.recv().unwrap().tag, Tag(i));
        }
    }

    #[test]
    fn selective_receive_defers_other_tags() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(Rank(1), Tag(1), b("a")).unwrap();
        e0.send(Rank(1), Tag(2), b("b")).unwrap();
        e0.send(Rank(1), Tag(1), b("c")).unwrap();
        let env = e1.recv_tag(Tag(2)).unwrap();
        assert_eq!(&env.payload[..], b"b");
        // Deferred tag-1 messages arrive in order afterwards.
        assert_eq!(&e1.recv().unwrap().payload[..], b"a");
        assert_eq!(&e1.recv().unwrap().payload[..], b"c");
    }

    #[test]
    fn try_recv_and_timeout() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        assert!(e1.try_recv().unwrap().is_none());
        assert_eq!(
            e1.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );
        e0.send(Rank(1), Tag(0), b("x")).unwrap();
        assert!(e1.recv_timeout(Duration::from_millis(100)).is_ok());
    }

    #[test]
    fn send_to_self_works() {
        let mut eps = Network::new(1);
        let mut e0 = eps.pop().unwrap();
        e0.send(Rank(0), Tag(9), b("loop")).unwrap();
        assert_eq!(e0.recv().unwrap().tag, Tag(9));
    }

    #[test]
    fn kill_handle_makes_endpoint_dead() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let k = e1.kill_handle();
        assert!(!k.is_dead());
        k.kill();
        assert!(k.is_dead());
        assert_eq!(e1.recv().unwrap_err(), NetError::Dead);
        assert_eq!(
            e1.send(Rank(0), Tag(0), Bytes::new()).unwrap_err(),
            NetError::Dead
        );
        // The other endpoint is unaffected.
        e0.send(Rank(0), Tag(0), Bytes::new()).unwrap();
    }

    /// Regression: a receive already *parked* on the channel must observe
    /// a kill issued from another thread instead of blocking forever.
    #[test]
    fn kill_interrupts_blocked_recv() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let _e0 = eps.pop().unwrap(); // keep peers alive: channel never closes
        let k = e1.kill_handle();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            k.kill();
        });
        let start = Instant::now();
        assert_eq!(e1.recv().unwrap_err(), NetError::Dead);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "blocked recv must notice the kill promptly"
        );
        killer.join().unwrap();
    }

    /// Same for the selective receive, which has its own blocking loop.
    #[test]
    fn kill_interrupts_blocked_recv_tag() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        // A non-matching message must not keep the selective receive alive.
        e0.send(Rank(1), Tag(1), b("other")).unwrap();
        let k = e1.kill_handle();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            k.kill();
        });
        let start = Instant::now();
        assert_eq!(e1.recv_tag(Tag(2)).unwrap_err(), NetError::Dead);
        assert!(start.elapsed() < Duration::from_secs(5));
        killer.join().unwrap();
    }

    /// A long `recv_timeout` must also notice a mid-wait kill — it should
    /// return `Dead` well before its own deadline.
    #[test]
    fn kill_interrupts_long_recv_timeout() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let _e0 = eps.pop().unwrap();
        let k = e1.kill_handle();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            k.kill();
        });
        let start = Instant::now();
        assert_eq!(
            e1.recv_timeout(Duration::from_secs(30)).unwrap_err(),
            NetError::Dead
        );
        assert!(start.elapsed() < Duration::from_secs(5));
        killer.join().unwrap();
    }

    #[test]
    fn stats_count_traffic() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        e0.send(Rank(1), Tag(0), b("12345")).unwrap();
        e1.recv().unwrap();
        assert_eq!(e0.stats().sent_msgs, 1);
        assert_eq!(e0.stats().sent_bytes, 21);
        assert_eq!(e1.stats().recv_msgs, 1);
        assert_eq!(e1.stats().recv_bytes, 21);
    }

    #[test]
    fn disconnected_when_peers_drop() {
        let mut eps = Network::new(2);
        let mut e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        drop(e0);
        // e1 still holds a sender to itself, so its channel is not closed;
        // but sending to rank 0 whose receiver is gone errors.
        assert_eq!(
            e1.send(Rank(0), Tag(0), Bytes::new()).unwrap_err(),
            NetError::Disconnected
        );
    }
}
