//! A small, explicit binary wire format.
//!
//! No serde format crate is available offline, so messages are encoded by
//! hand: little-endian fixed-width integers, length-prefixed byte strings.
//! The format is self-contained and versioned per message by its tag.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Error produced when decoding malformed bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What the decoder was reading when bytes ran short.
    pub context: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truncated or malformed wire data while reading {}",
            self.context
        )
    }
}

impl std::error::Error for WireError {}

/// Encoder appending typed values to a growable buffer.
#[derive(Default, Debug)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append an `i64` (little-endian).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_i64_le(v);
        self
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Finish, yielding the immutable encoded buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoder consuming typed values from a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn need(&self, n: usize, context: &'static str) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            Err(WireError { context })
        } else {
            Ok(())
        }
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.need(1, "u8")?;
        Ok(self.buf.get_u8())
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        self.need(4, "u32")?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        self.need(8, "u64")?;
        Ok(self.buf.get_u64_le())
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        self.need(8, "i64")?;
        Ok(self.buf.get_i64_le())
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32()? as usize;
        self.need(len, "bytes body")?;
        let out = self.buf[..len].to_vec();
        self.buf.advance(len);
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Error unless the reader is fully consumed (trailing garbage check).
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError {
                context: "end of message (trailing bytes)",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = WireWriter::new();
        w.put_u8(7)
            .put_u32(0xDEAD_BEEF)
            .put_u64(u64::MAX)
            .put_i64(-42)
            .put_bytes(b"hello");
        let bytes = w.finish();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = WireWriter::new();
        w.put_u32(5);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_u64().is_err());
        // Byte-string header promising more data than present:
        let mut r = WireReader::new(&bytes); // says "5 bytes follow", none do
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.put_u8(1).put_u8(2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
        r.get_u8().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn empty_byte_string() {
        let mut w = WireWriter::new();
        w.put_bytes(b"");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), Vec::<u8>::new());
        r.expect_end().unwrap();
    }
}
